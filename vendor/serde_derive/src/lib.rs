//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde` shim's [`Serialize`]/[`Deserialize`] traits
//! (value-tree based, JSON-oriented) for the shapes this workspace uses:
//!
//! * structs with named fields (honoring `#[serde(default)]` per field),
//! * enums with unit, newtype, and struct variants, serialized with serde's
//!   external tagging (`"Variant"` / `{"Variant": ...}`).
//!
//! The input is parsed directly from the `proc_macro` token stream — no
//! `syn`/`quote` — which is possible because the supported grammar is small.
//! Unsupported shapes (generics, tuple structs, multi-field tuple variants)
//! fail the build with a clear `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape).parse().expect("derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// parsing

/// Consumes leading attributes; returns whether any was `#[serde(default)]`.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if attr_is_serde_default(&g.stream()) {
                    has_default = true;
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, has_default)
}

fn attr_is_serde_default(attr: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)]
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream().into_iter().any(|t| match t {
                TokenTree::Ident(id) => id.to_string() == "default",
                _ => false,
            })
        }
        _ => false,
    }
}

/// Consumes an optional `pub` / `pub(...)` prefix.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive on `{name}`: generic types are not supported"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "derive on `{name}`: tuple structs are not supported"
            ));
        }
        other => {
            return Err(format!(
                "expected `{{ ... }}` body for `{name}`, found {other:?}"
            ))
        }
    };

    match kind.as_str() {
        "struct" => Ok(Shape::Struct {
            name,
            fields: parse_fields(body)?,
        }),
        "enum" => Ok(Shape::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, default) = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: scan to the next comma at angle-bracket depth 0.
        // Parenthesized/bracketed types are single groups, so only `<`/`>`
        // need depth tracking.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attributes(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let commas = count_top_level_commas(&inner);
                if commas > 0 {
                    return Err(format!(
                        "variant `{name}`: only newtype tuple variants are supported"
                    ));
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) — not used here — then
        // the separating comma.
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Counts commas at angle-bracket depth 0 (groups are atomic tokens).
fn count_top_level_commas(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut count = 0;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma (e.g. `V(T,)`) does not separate two fields.
    if count > 0 {
        if let Some(TokenTree::Punct(p)) = tokens.last() {
            if p.as_char() == ',' {
                count -= 1;
            }
        }
    }
    count
}

// ---------------------------------------------------------------------------
// code generation

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push(({:?}.to_string(), ::serde::Serialize::to_json_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "#[automatically_derived]
                impl ::serde::Serialize for {name} {{
                    fn to_json_value(&self) -> ::serde::Value {{
                        let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =
                            ::std::vec::Vec::new();
                        {pushes}
                        ::serde::Value::Object(fields)
                    }}
                }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(inner) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_json_value(inner))]),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "fields.push(({:?}.to_string(), ::serde::Serialize::to_json_value({})));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{
                                let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =
                                    ::std::vec::Vec::new();
                                {pushes}
                                ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(fields))])
                            }},\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]
                impl ::serde::Serialize for {name} {{
                    fn to_json_value(&self) -> ::serde::Value {{
                        match self {{
                            {arms}
                        }}
                    }}
                }}"
            )
        }
    }
}

fn gen_struct_body(type_name: &str, path: &str, fields: &[Field], source: &str) -> String {
    // Builds `Path { field: ..., ... }` reading from the object entries
    // bound to `source`.
    let mut inits = String::new();
    for f in fields {
        if f.default {
            inits.push_str(&format!(
                "{}: match ::serde::find_field({source}, {:?}) {{
                    Some(v) => ::serde::Deserialize::from_json_value(v)?,
                    None => ::std::default::Default::default(),
                }},\n",
                f.name, f.name
            ));
        } else {
            inits.push_str(&format!(
                "{}: match ::serde::find_field({source}, {:?}) {{
                    Some(v) => ::serde::Deserialize::from_json_value(v)?,
                    None => return Err(::serde::Error::missing_field({:?}, {:?})),
                }},\n",
                f.name, f.name, f.name, type_name
            ));
        }
    }
    format!("{path} {{ {inits} }}")
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let body = gen_struct_body(name, name, fields, "entries");
            format!(
                "#[automatically_derived]
                impl ::serde::Deserialize for {name} {{
                    fn from_json_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        let entries = value
                            .as_object()
                            .ok_or_else(|| ::serde::Error::expected(\"object\", {name:?}))?;
                        Ok({body})
                    }}
                }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_json_value(inner)?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let body =
                            gen_struct_body(name, &format!("{name}::{vn}"), fields, "entries");
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{
                                let entries = inner
                                    .as_object()
                                    .ok_or_else(|| ::serde::Error::expected(\"object\", {vn:?}))?;
                                return Ok({body});
                            }}\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]
                impl ::serde::Deserialize for {name} {{
                    fn from_json_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        match value {{
                            ::serde::Value::String(tag) => match tag.as_str() {{
                                {unit_arms}
                                other => Err(::serde::Error::unknown_variant(other, {name:?})),
                            }},
                            ::serde::Value::Object(entries) if entries.len() == 1 => {{
                                let (tag, inner) = &entries[0];
                                match tag.as_str() {{
                                    {tagged_arms}
                                    other => Err(::serde::Error::unknown_variant(other, {name:?})),
                                }}
                            }}
                            _ => Err(::serde::Error::expected(\"externally tagged variant\", {name:?})),
                        }}
                    }}
                }}"
            )
        }
    }
}
