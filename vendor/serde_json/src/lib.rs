//! Offline stand-in for the `serde_json` crate.
//!
//! JSON text parsing and printing over the vendored `serde` shim's
//! [`Value`] tree, plus the [`json!`] construction macro. Covers the API
//! surface the workspace uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`], and [`Value`] inspection.

pub use serde::{Error, Value};

/// Serializes any [`serde::Serialize`] type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_json_value(&value)
}

// ---------------------------------------------------------------------------
// printing

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(brackets.1);
}

/// Prints a float the way serde_json does: integral finite values keep a
/// trailing `.0`, non-finite values become `null`.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    if f == f.trunc() && f.abs() < 1e16 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::custom(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------------
// construction macro

/// Builds a [`Value`] from JSON-like syntax, in the spirit of
/// `serde_json::json!`. Supports object literals with string-literal keys,
/// array literals, `null`/`true`/`false`, and arbitrary `Serialize`
/// expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => { $crate::json_array!([] $($items)*) };
    ({ $($entries:tt)* }) => { $crate::json_object!([] $($entries)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`] — array accumulator.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array {
    // Done.
    ([ $($done:expr),* ]) => { $crate::Value::Array(vec![ $($done),* ]) };
    // Next item is `null` or a nested array/object literal.
    ([ $($done:expr),* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null ] $($($rest)*)?)
    };
    ([ $($done:expr),* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::json!([ $($inner)* ]) ] $($($rest)*)?)
    };
    ([ $($done:expr),* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::json!({ $($inner)* }) ] $($($rest)*)?)
    };
    // Next item is a general expression (consume tokens up to a top-level
    // comma via expr matching).
    ([ $($done:expr),* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::to_value(&$next) ] $($($rest)*)?)
    };
}

/// Implementation detail of [`json!`] — object accumulator.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    // Done.
    ([ $($done:expr),* ]) => { $crate::Value::Object(vec![ $($done),* ]) };
    // Value is `null` or a nested object/array literal.
    ([ $($done:expr),* ] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object!(
            [ $($done,)* ($key.to_string(), $crate::Value::Null) ] $($($rest)*)?
        )
    };
    ([ $($done:expr),* ] $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object!(
            [ $($done,)* ($key.to_string(), $crate::json!({ $($inner)* })) ] $($($rest)*)?
        )
    };
    ([ $($done:expr),* ] $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object!(
            [ $($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])) ] $($($rest)*)?
        )
    };
    // Value is a general expression.
    ([ $($done:expr),* ] $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_object!(
            [ $($done,)* ($key.to_string(), $crate::to_value(&$value)) ] $($($rest)*)?
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let text = r#"{"a":1,"b":[-2,3.5,"x\n",null,true],"c":{"d":false}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn floats_keep_trailing_zero() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn float_text_roundtrips_f32_exactly() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 123456.78] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({"a": 1, "b": [true]});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn json_macro_shapes() {
        let xs = vec![1u32, 2];
        let v = json!({
            "name": "run",
            "count": xs.len(),
            "items": xs,
            "nested": {"flag": true},
            "pair": [1.5, "two"],
            "none": null,
        });
        assert_eq!(v["name"], "run");
        assert_eq!(v["count"], 2);
        assert_eq!(v["items"][1], 2);
        assert_eq!(v["nested"]["flag"], true);
        assert_eq!(v["pair"][0], 1.5);
        assert!(v["none"].is_null());
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }
}
