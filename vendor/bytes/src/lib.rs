//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so the handful of external
//! crates it uses are vendored as API-compatible subsets. This one covers
//! exactly what `skiptrain-engine`'s transport needs: cheaply cloneable
//! immutable byte buffers ([`Bytes`]), a growable builder ([`BytesMut`]),
//! and big/little-endian u32 cursor reads and writes ([`Buf`] / [`BufMut`]).

use std::ops::Range;
use std::sync::Arc;

/// A cheaply cloneable, sliceable immutable byte buffer with an internal
/// read cursor (the [`Buf`] methods consume from the front).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Remaining (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the unread bytes into a new `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-range of the unread bytes, sharing the same backing storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Cursor-style reads from the front of a buffer.
pub trait Buf {
    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`, advancing the cursor.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32;
    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32;
    /// Unread bytes remaining.
    fn remaining(&self) -> usize;
}

impl Buf for Bytes {
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

/// A growable byte builder.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        self.buf.into()
    }

    /// The bytes written so far as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Appends to the back of a buffer.
pub trait BufMut {
    /// Writes one byte.
    fn put_u8(&mut self, v: u8);
    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Writes raw bytes.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEADBEEF);
        b.put_u32_le(7);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        let mut cursor = frozen.clone();
        assert_eq!(cursor.get_u32(), 0xDEADBEEF);
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.remaining(), 0);
        let tail = frozen.slice(4..8);
        assert_eq!(tail.to_vec(), 7u32.to_le_bytes().to_vec());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b: Bytes = vec![1u8, 2].into();
        let _ = b.get_u32();
    }
}
