//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! benchmark groups, `sample_size`/`measurement_time`/`throughput`
//! configuration, `bench_function` / `bench_with_input`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is timed
//! over `sample_size` samples after a calibration pass; mean and min
//! per-iteration times (plus throughput when configured) go to stdout.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Things usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        bencher.report(&label, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.clone().into_id());
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        bencher.report(&label, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Self {
            sample_size,
            measurement_time,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        }
    }

    /// Measures `routine`, called repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: find an iteration count that gives samples long enough
        // to time reliably but fits the measurement budget.
        let calibration = Instant::now();
        std::hint::black_box(routine());
        let once = calibration.elapsed().max(Duration::from_nanos(50));
        let budget_per_sample = self.measurement_time / (self.sample_size as u32).max(1);
        let iters =
            (budget_per_sample.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{label:<50} (no measurement)");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let median = median_of(&self.samples_ns);
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(n) => {
                format!(", {:.1} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
            }
            Throughput::Elements(n) => format!(", {:.2} Melem/s", n as f64 / median * 1e9 / 1e6),
        });
        println!(
            "{label:<50} median {:>12} mean {:>12} min {:>12} ({} samples x {} iters{})",
            format_ns(median),
            format_ns(mean),
            format_ns(min),
            self.samples_ns.len(),
            self.iters_per_sample,
            rate.unwrap_or_default(),
        );
    }
}

/// Median of a non-empty sample set (mean of the middle pair for even n).
fn median_of(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark suite function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more suites.
#[macro_export]
macro_rules! criterion_main {
    ($($suite:path),+ $(,)?) => {
        fn main() {
            $($suite();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        group.throughput(Throughput::Elements(64));
        let mut acc = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                acc = (0..64u64).sum();
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("id", 7), &7usize, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert_eq!(acc, 2016);
    }
}
