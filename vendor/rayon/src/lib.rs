//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice-oriented subset the workspace uses — `par_iter`,
//! `par_iter_mut`, `par_chunks_exact(_mut)`, `zip`, `map`, `enumerate`,
//! `for_each`, `collect` — with genuine data parallelism over
//! `std::thread::scope`. Iterators are *indexed*: every adaptor preserves
//! length and order, so `collect` returns results in input order and all
//! outcomes are independent of the worker count (the workspace's
//! determinism requirement).
//!
//! Scheduling is deliberately simple: a terminal operation splits its
//! iterator into one contiguous chunk per worker and joins them. Instead
//! of rayon's work-stealing, nesting is governed by a *thread budget*: a
//! terminal op that spawns W workers hands each worker `budget / W`
//! threads for its own nested parallel ops. An outer loop that saturates
//! the machine makes inner loops sequential (the common case), while e.g.
//! a 2-run campaign on a 16-core machine leaves each run 8 threads of
//! node-level parallelism.

use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    /// Thread budget for parallel ops started from this thread. `None` on
    /// root threads (resolved from the pool override or the machine);
    /// worker threads carry an explicit share of their parent's budget.
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Machine parallelism, resolved once: `available_parallelism` re-reads
/// cgroup quota files on every call (allocating each time), which would
/// charge every terminal op a constant allocator hit.
fn machine_parallelism() -> usize {
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MACHINE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn current_budget() -> usize {
    BUDGET.with(|b| b.get()).unwrap_or_else(|| {
        let configured = POOL_THREADS.with(|t| t.get());
        if configured > 0 {
            configured
        } else {
            machine_parallelism()
        }
    })
}

fn effective_workers(len: usize) -> usize {
    if len < 2 {
        1
    } else {
        current_budget().min(len)
    }
}

/// An indexed, splittable parallel iterator.
///
/// `split_at` must preserve order: the left part holds items `0..index`,
/// the right part the rest. `drive` consumes the iterator sequentially in
/// order.
pub trait ParallelIterator: Sized + Send {
    /// Item type.
    type Item: Send;

    /// Exact number of items.
    fn par_len(&self) -> usize;

    /// Splits into `(items 0..index, items index..len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Sequentially feeds every item, in order, to `f`.
    fn drive(self, f: &mut dyn FnMut(Self::Item));

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pairs items with another equal-length parallel iterator.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs items with their index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Runs `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let workers = effective_workers(self.par_len());
        if workers <= 1 {
            self.drive(&mut |item| f(item));
            return;
        }
        let share = (current_budget() / workers).max(1);
        let chunks = split_even(self, workers);
        std::thread::scope(|scope| {
            for chunk in chunks {
                let f = &f;
                scope.spawn(move || {
                    BUDGET.with(|b| b.set(Some(share)));
                    chunk.drive(&mut |item| f(item));
                });
            }
        });
    }

    /// Collects all items, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Splits `iter` into `parts` contiguous chunks of near-equal length.
fn split_even<I: ParallelIterator>(iter: I, parts: usize) -> Vec<I> {
    let len = iter.par_len();
    let mut out = Vec::with_capacity(parts);
    let mut rest = iter;
    let mut remaining_items = len;
    let mut remaining_parts = parts;
    while remaining_parts > 1 {
        let take = remaining_items.div_ceil(remaining_parts);
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
        remaining_items -= take;
        remaining_parts -= 1;
    }
    out.push(rest);
    out
}

/// Collection from a parallel iterator (order-preserving).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        let len = iter.par_len();
        let workers = effective_workers(len);
        if workers <= 1 {
            let mut out = Vec::with_capacity(len);
            iter.drive(&mut |item| out.push(item));
            return out;
        }
        let share = (current_budget() / workers).max(1);
        let chunks = split_even(iter, workers);
        let mut out = Vec::with_capacity(len);
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        BUDGET.with(|b| b.set(Some(share)));
                        let mut part = Vec::with_capacity(chunk.par_len());
                        chunk.drive(&mut |item| part.push(item));
                        part
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("parallel worker panicked"));
            }
        });
        out
    }
}

/// Shared-reference iterator over a slice.
pub struct ParIter<'a, T: Sync>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (ParIter(l), ParIter(r))
    }

    fn drive(self, f: &mut dyn FnMut(Self::Item)) {
        for item in self.0 {
            f(item);
        }
    }
}

/// Mutable-reference iterator over a slice.
pub struct ParIterMut<'a, T: Send>(&'a mut [T]);

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (ParIterMut(l), ParIterMut(r))
    }

    fn drive(self, f: &mut dyn FnMut(Self::Item)) {
        for item in self.0 {
            f(item);
        }
    }
}

/// Iterator over complete `chunk_size`-sized sub-slices (remainder ignored,
/// like `slice::chunks_exact`).
pub struct ParChunksExact<'a, T: Sync> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunksExact<'a, T> {
    type Item = &'a [T];

    fn par_len(&self) -> usize {
        self.slice.len() / self.chunk
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index * self.chunk);
        (
            ParChunksExact {
                slice: l,
                chunk: self.chunk,
            },
            ParChunksExact {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn drive(self, f: &mut dyn FnMut(Self::Item)) {
        for item in self.slice.chunks_exact(self.chunk) {
            f(item);
        }
    }
}

/// Mutable variant of [`ParChunksExact`].
pub struct ParChunksExactMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksExactMut<'a, T> {
    type Item = &'a mut [T];

    fn par_len(&self) -> usize {
        self.slice.len() / self.chunk
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index * self.chunk);
        (
            ParChunksExactMut {
                slice: l,
                chunk: self.chunk,
            },
            ParChunksExactMut {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn drive(self, f: &mut dyn FnMut(Self::Item)) {
        for item in self.slice.chunks_exact_mut(self.chunk) {
            f(item);
        }
    }
}

/// Map adaptor (see [`ParallelIterator::map`]).
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: Arc::clone(&self.f),
            },
            Map { base: r, f: self.f },
        )
    }

    fn drive(self, f: &mut dyn FnMut(Self::Item)) {
        let map_fn = self.f;
        self.base.drive(&mut |item| f(map_fn(item)));
    }
}

/// Zip adaptor (see [`ParallelIterator::zip`]).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn drive(self, f: &mut dyn FnMut(Self::Item)) {
        // Allocation-free lockstep pairing: drive side A and pull side B
        // one item at a time by repeatedly splitting off its head. Both
        // sides are indexed so split order matches drive order exactly;
        // a nested zip recurses without ever buffering a side. (The old
        // form collected side B into a per-call Vec, which made every
        // zipped terminal op allocate O(len) on the sequential path —
        // visible as per-round allocator churn in the engine's phase
        // loops.)
        let len = self.par_len();
        let (a, _) = self.a.split_at(len);
        let (b, _) = self.b.split_at(len);
        let mut rest = Some(b);
        a.drive(&mut |item| {
            let (head, tail) = rest.take().expect("zip length mismatch").split_at(1);
            rest = Some(tail);
            let mut paired = None;
            head.drive(&mut |other| paired = Some(other));
            f((item, paired.expect("zip head holds exactly one item")));
        });
    }
}

/// Enumerate adaptor (see [`ParallelIterator::enumerate`]).
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn drive(self, f: &mut dyn FnMut(Self::Item)) {
        let mut i = self.offset;
        self.base.drive(&mut |item| {
            f((i, item));
            i += 1;
        });
    }
}

/// `par_iter` entry point.
pub trait IntoParallelRefIterator<'a> {
    /// Shared-reference item type.
    type Iter: ParallelIterator;

    /// A parallel iterator over shared references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

/// `par_iter_mut` entry point.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutable-reference item type.
    type Iter: ParallelIterator;

    /// A parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParIterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut(self)
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = ParIterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut(self)
    }
}

/// `par_chunks_exact` entry point.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over complete `chunk_size` sub-slices.
    fn par_chunks_exact(&self, chunk_size: usize) -> ParChunksExact<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks_exact(&self, chunk_size: usize) -> ParChunksExact<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksExact {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// `par_chunks_exact_mut` entry point.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over complete mutable `chunk_size` sub-slices.
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksExactMut {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` (worker-count control only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A default builder (worker count from `available_parallelism`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the worker count used inside [`ThreadPool::install`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped worker-count configuration. Parallel operations executed inside
/// [`install`](ThreadPool::install) use at most the configured number of
/// workers.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count in force on the calling
    /// thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }
}

/// The common import surface.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut xs = vec![0u64; 4096];
        xs.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u64 + 1);
        assert!(xs.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn nested_zip_matches_sequential() {
        let a: Vec<i64> = (0..257).collect();
        let mut b: Vec<i64> = (0..257).map(|x| x * 10).collect();
        let c: Vec<i64> = (0..257).map(|x| x * 100).collect();
        let sums: Vec<i64> = b
            .par_iter_mut()
            .zip(a.par_iter())
            .zip(c.par_iter())
            .map(|((b, &a), &c)| {
                *b += 1;
                a + *b + c
            })
            .collect();
        let expect: Vec<i64> = (0..257).map(|x| x + (x * 10 + 1) + x * 100).collect();
        assert_eq!(sums, expect);
        assert_eq!(b[3], 31);
    }

    #[test]
    fn chunks_exact_ignores_remainder() {
        let xs: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = xs.par_chunks_exact(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21]);
        let mut ys = vec![1u32; 10];
        ys.par_chunks_exact_mut(4).for_each(|c| c.fill(7));
        assert_eq!(ys, vec![7, 7, 7, 7, 7, 7, 7, 7, 1, 1]);
    }

    #[test]
    fn nested_ops_split_the_thread_budget() {
        // An outer loop of 2 on a budget of 8 leaves each worker 4 threads
        // for nested parallelism; a further nested op drops to 1.
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let budgets: Vec<(usize, usize)> = pool.install(|| {
            let items = [0usize, 1];
            items
                .par_iter()
                .map(|_| {
                    let inner = super::current_budget();
                    let nested: Vec<usize> = [0usize, 1, 2, 3]
                        .par_iter()
                        .map(|_| super::current_budget())
                        .collect();
                    (inner, nested[0])
                })
                .collect()
        });
        assert_eq!(budgets, vec![(4, 1), (4, 1)]);
    }

    #[test]
    fn install_bounds_workers_without_changing_results() {
        let xs: Vec<usize> = (0..513).collect();
        let serial: Vec<usize> = {
            let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            pool.install(|| xs.par_iter().map(|&x| x * x).collect())
        };
        let wide: Vec<usize> = {
            let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
            pool.install(|| xs.par_iter().map(|&x| x * x).collect())
        };
        assert_eq!(serial, wide);
    }
}
