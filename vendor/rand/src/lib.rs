//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: a seedable small RNG
//! ([`rngs::SmallRng`], xoshiro256++), uniform sampling over ranges and the
//! unit interval ([`RngExt`]), and Fisher–Yates shuffling
//! ([`seq::SliceRandom`]). All randomness is explicitly seeded; there is no
//! thread-local or OS entropy source, which matches the workspace's
//! determinism requirements.

/// Core pseudo-random generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from explicit seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++), seeded via
    /// SplitMix64 expansion like upstream `rand`'s `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256++ requires a non-zero state; splitmix64 output of
            // any seed is astronomically unlikely to be all zero, but guard
            // anyway.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling: bias is at most 2^-64,
                // far below anything observable here.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sample range");
        lo + (hi - lo) * f32::unit(rng)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sample range");
        lo + (hi - lo) * f64::unit(rng)
    }
}

/// Types with a standard distribution for [`RngExt::random`]: floats draw
/// uniformly from `[0, 1)`, integers and `bool` from their full domain.
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

trait UnitFloat: Sized {
    fn unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UnitFloat for f32 {
    #[inline]
    fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UnitFloat for f64 {
    #[inline]
    fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f32::unit(rng)
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        f64::unit(rng)
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws from a type's standard distribution (floats: uniform `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::unit(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related sampling.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.random::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_in_range_with_plausible_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity order (astronomically unlikely)"
        );
    }
}
