//! Offline stand-in for the `serde` crate.
//!
//! The real serde is format-agnostic; the only format this workspace uses
//! is JSON, so the shim collapses the serializer/deserializer machinery
//! into one JSON-shaped value tree ([`Value`]) plus two traits:
//!
//! * [`Serialize`] — convert into a [`Value`],
//! * [`Deserialize`] — reconstruct from a [`Value`].
//!
//! `#[derive(Serialize, Deserialize)]` comes from the vendored
//! `serde_derive` proc-macro and follows serde's conventions: structs map
//! to objects, enums use external tagging, `#[serde(default)]` fills
//! missing fields. The `serde_json` shim layers text parsing/printing on
//! top of [`Value`].

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Integers keep their signedness (`Int`/`UInt`) so `u64` round-trips
/// exactly; floats are stored as `f64`. Object entries preserve insertion
/// order, matching how serde_json streams struct fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    String(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer contents, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Signed integer contents, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Boolean contents, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| find_field(entries, key))
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing keys and non-objects index to `Null`, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Out-of-range indices and non-arrays index to `Null`, like serde_json.
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                let other = *other as i128;
                match self {
                    Value::Int(i) => *i as i128 == other,
                    Value::UInt(u) => other >= 0 && *u as i128 == other,
                    _ => false,
                }
            }
        }
    )*};
}

impl_value_eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(f) if f == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Ordered object-field lookup (used by derived `Deserialize` impls).
pub fn find_field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!(
            "missing field `{field}` while deserializing `{ty}`"
        ))
    }

    /// The input had the wrong shape.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing `{ty}`"))
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{tag}` for `{ty}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_json_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// primitive impls

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!(
                    "integer {u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value
            .as_f64()
            .ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("boolean", "bool"))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(Deserialize::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", "tuple"))?;
        if items.len() != 2 {
            return Err(Error::expected("2-element array", "tuple"));
        }
        Ok((
            A::from_json_value(&items[0])?,
            B::from_json_value(&items[1])?,
        ))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", "tuple"))?;
        if items.len() != 3 {
            return Err(Error::expected("3-element array", "tuple"));
        }
        Ok((
            A::from_json_value(&items[0])?,
            B::from_json_value(&items[1])?,
            C::from_json_value(&items[2])?,
        ))
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_json_value(&42u64.to_json_value()).unwrap(), 42);
        assert_eq!(i32::from_json_value(&(-7i32).to_json_value()).unwrap(), -7);
        assert_eq!(
            f32::from_json_value(&0.25f32.to_json_value()).unwrap(),
            0.25
        );
        assert_eq!(
            Option::<f64>::from_json_value(&None::<f64>.to_json_value()).unwrap(),
            None
        );
        let pair = (3usize, 0.5f32);
        assert_eq!(
            <(usize, f32)>::from_json_value(&pair.to_json_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = Value::Object(vec![
            ("n".into(), Value::UInt(10)),
            ("xs".into(), Value::Array(vec![Value::Int(-1)])),
        ]);
        assert_eq!(v["n"], 10);
        assert_eq!(v["xs"][0], -1);
        assert!(v["missing"].is_null());
    }
}
