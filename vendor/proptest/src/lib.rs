//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with `arg in range` strategies over numeric ranges,
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and
//! [`prop_assert!`] / [`prop_assert_eq!`]. Cases are sampled from a
//! deterministic per-test seed (derived from the test name), so failures
//! reproduce exactly; there is no shrinking.

use rand::rngs::SmallRng;
use rand::{RngExt, SampleUniform, SeedableRng};

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of sampled values for one test case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5EED)))
    }
}

/// Something values can be sampled from (numeric ranges here).
pub trait Strategy {
    /// Sampled value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.0.random_range(self.start..self.end)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing a `Vec` of `element`-sampled values with a
    /// length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` strategy over an element strategy and a length range.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Property-test harness macro (see crate docs for the supported grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(#[test] fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut prop_rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(err) = outcome {
                        panic!(
                            "property `{}` failed on case {case} with ({}): {err}",
                            stringify!($name),
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` that fails the current property case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Skips the current case when its sampled inputs do not satisfy a
/// precondition (real proptest resamples; this shim just moves on).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// The common import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(n in 3usize..17, x in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn eq_assertion_works(a in 0u32..100) {
            prop_assert_eq!(a + 1, 1 + a);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let ra = (0u64..4)
            .map(|_| (0usize..100).sample(&mut a))
            .collect::<Vec<_>>();
        let rb = (0u64..4)
            .map(|_| (0usize..100).sample(&mut b))
            .collect::<Vec<_>>();
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_report_args() {
        // Re-enter the macro machinery manually for a failing property.
        fn failing_inner() {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[test]
                fn failing(v in 0u32..8) {
                    prop_assert!(v > 100, "v was {}", v);
                }
            }
            failing();
        }
        failing_inner();
    }
}
