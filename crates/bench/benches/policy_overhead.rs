//! Policy decision overhead: per-round action computation for all four
//! algorithms at paper scale (256 nodes). This must be negligible next to
//! training — the benches verify the control plane stays out of the way.

use criterion::{criterion_group, criterion_main, Criterion};
use skiptrain_core::policy::{
    ConstrainedPolicy, DPsgdPolicy, GreedyPolicy, RoundPolicy, SkipTrainPolicy,
};
use skiptrain_core::Schedule;
use skiptrain_engine::RoundAction;
use std::hint::black_box;
use std::time::Duration;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_decide_256");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    let n = 256usize;
    let schedule = Schedule::new(4, 4);
    let budgets: Vec<u32> = (0..n).map(|i| 200 + (i as u32 % 300)).collect();

    let mut actions = vec![RoundAction::SyncOnly; n];

    let mut dpsgd = DPsgdPolicy;
    group.bench_function("d_psgd", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            dpsgd.decide(t, black_box(&mut actions));
        })
    });

    let mut skiptrain = SkipTrainPolicy::new(schedule);
    group.bench_function("skiptrain", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            skiptrain.decide(t, black_box(&mut actions));
        })
    });

    let mut constrained = ConstrainedPolicy::new(schedule, budgets.clone(), 1000, 42);
    group.bench_function("skiptrain_constrained", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            constrained.decide(t, black_box(&mut actions));
        })
    });

    let mut greedy = GreedyPolicy::new(budgets);
    group.bench_function("greedy", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            greedy.decide(t, black_box(&mut actions));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
