//! Gossip aggregation throughput: the weighted-sum kernel at the paper's
//! model sizes and neighborhood degrees, plus a full 64-node mixing phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skiptrain_linalg::ops::weighted_sum_into;
use std::hint::black_box;
use std::time::Duration;

fn bench_weighted_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_sum");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    // CIFAR-10 model size from Table 1
    let params = 89_834usize;
    for degree in [6usize, 8, 10] {
        let neighbors: Vec<Vec<f32>> = (0..=degree)
            .map(|k| vec![k as f32 * 0.01 + 0.1; params])
            .collect();
        let weights = vec![1.0 / (degree + 1) as f32; degree + 1];
        let mut out = vec![0.0f32; params];
        group.throughput(criterion::Throughput::Elements(
            ((degree + 1) * params) as u64,
        ));
        group.bench_with_input(BenchmarkId::new("cifar_model", degree), &degree, |b, _| {
            b.iter(|| {
                let inputs: Vec<&[f32]> = neighbors.iter().map(|v| v.as_slice()).collect();
                weighted_sum_into(black_box(&mut out), &inputs, &weights);
            })
        });
    }
    group.finish();
}

fn bench_full_mixing_phase(c: &mut Criterion) {
    use skiptrain_topology::regular::random_regular;
    use skiptrain_topology::MixingMatrix;
    let mut group = c.benchmark_group("mixing_phase");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[16usize, 64] {
        let params = 10_000usize;
        let graph = random_regular(n, 6, 1);
        let mixing = MixingMatrix::metropolis_hastings(&graph);
        let half: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32; params]).collect();
        let mut next: Vec<Vec<f32>> = half.clone();
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, _| {
            b.iter(|| {
                for (i, out) in next.iter_mut().enumerate() {
                    let row = mixing.row(i);
                    let inputs: Vec<&[f32]> = row
                        .iter()
                        .map(|&(j, _)| half[j as usize].as_slice())
                        .collect();
                    let weights: Vec<f32> = row.iter().map(|&(_, w)| w).collect();
                    weighted_sum_into(out, &inputs, &weights);
                }
                black_box(&next);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weighted_sum, bench_full_mixing_phase);
criterion_main!(benches);
