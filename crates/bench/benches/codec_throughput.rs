//! Codec throughput: encode + decode cost per codec at the paper's
//! CIFAR-10 model size, plus the in-memory transform shortcut.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skiptrain_engine::transport::{decode_message, encode_message, ModelCodec};
use std::hint::black_box;
use std::time::Duration;

fn bench_codecs(c: &mut Criterion) {
    let params: Vec<f32> = (0..89_834).map(|i| (i as f32 * 0.1).sin()).collect();
    let codecs = [
        ModelCodec::DenseF32,
        ModelCodec::QuantizedU8,
        ModelCodec::QuantizedU16,
        ModelCodec::TopK { k: 89_834 / 10 },
    ];

    let mut group = c.benchmark_group("model_codec");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for codec in codecs {
        group.throughput(criterion::Throughput::Bytes(
            codec.message_bytes(params.len()),
        ));
        group.bench_function(BenchmarkId::new("encode", codec.name()), |b| {
            b.iter(|| black_box(encode_message(codec, 1, 2, &params)))
        });
        let frame = encode_message(codec, 1, 2, &params);
        group.bench_function(BenchmarkId::new("decode", codec.name()), |b| {
            b.iter(|| black_box(decode_message(frame.clone()).unwrap()))
        });
        group.bench_function(BenchmarkId::new("transform", codec.name()), |b| {
            b.iter(|| black_box(codec.transform(&params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
