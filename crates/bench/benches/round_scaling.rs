//! Whole-round execution cost and rayon thread scaling — the simulator-side
//! performance story (the paper ran 256 processes on 8 Xeon machines; this
//! engine runs them as data-parallel tasks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skiptrain_core::presets::{cifar_config, Scale};
use skiptrain_data::synth::{MixtureSpec, MixtureTask};
use skiptrain_engine::{RoundAction, Simulation, SimulationConfig};
use skiptrain_nn::zoo::ModelKind;
use skiptrain_topology::regular::random_regular;
use skiptrain_topology::MixingMatrix;
use std::hint::black_box;
use std::time::Duration;

fn build_sim(n: usize, seed: u64) -> Simulation {
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 10,
            feature_dim: 32,
            modes_per_class: 2,
            separation: 1.0,
            noise: 0.9,
        },
        seed,
    );
    let datasets = (0..n).map(|i| task.sample(60, i as u64)).collect();
    let models = (0..n)
        .map(|i| {
            ModelKind::Mlp {
                dims: vec![32, 24, 10],
            }
            .build(seed + i as u64)
        })
        .collect();
    let graph = random_regular(n, 6, seed);
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    Simulation::new(
        models,
        datasets,
        graph,
        mixing,
        SimulationConfig::minimal(seed, 16, 5, 0.5),
    )
}

fn bench_round_by_nodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for &n in &[16usize, 64, 256] {
        let mut sim = build_sim(n, 1);
        let actions = vec![RoundAction::Train; n];
        group.bench_with_input(BenchmarkId::new("train_round", n), &n, |b, _| {
            b.iter(|| {
                sim.run_round(black_box(&actions));
            })
        });
        let sync = vec![RoundAction::SyncOnly; n];
        group.bench_with_input(BenchmarkId::new("sync_round", n), &n, |b, _| {
            b.iter(|| {
                sim.run_round(black_box(&sync));
            })
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let n = 64usize;
    for &threads in &[1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let mut sim = build_sim(n, 2);
        let actions = vec![RoundAction::Train; n];
        group.bench_with_input(
            BenchmarkId::new("train_round_64", threads),
            &threads,
            |b, _| b.iter(|| pool.install(|| sim.run_round(black_box(&actions)))),
        );
    }
    group.finish();
}

fn bench_full_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let mut cfg = cifar_config(Scale::Quick, 5);
    cfg.nodes = 16;
    cfg.rounds = 8;
    cfg.eval_every = 8;
    cfg.eval_max_samples = 100;
    group.bench_function("quick_16n_8r", |b| b.iter(|| black_box(cfg.run())));
    group.finish();
}

criterion_group!(
    benches,
    bench_round_by_nodes,
    bench_thread_scaling,
    bench_full_experiment
);
criterion_main!(benches);
