//! Campaign execution throughput: runs/sec for a 3×3 quick-scale
//! (Γ_train, Γ_sync) sweep, serial vs parallel — the wall-clock win of
//! running grid cells through the `Campaign` executor instead of a serial
//! loop, plus the cost of bundle materialization amortized by the
//! `(DataSpec, nodes, seed)` cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skiptrain_core::presets::{cifar_config, Scale};
use skiptrain_core::sweep::grid_campaign;
use skiptrain_core::{Campaign, DataSpec, ExperimentConfig, TopologySpec};
use std::hint::black_box;
use std::time::Duration;

fn sweep_base(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 8;
    cfg.eval_every = usize::MAX;
    cfg.eval_max_samples = 100;
    cfg.data = DataSpec::CifarLike {
        feature_dim: 12,
        samples_per_node: 40,
        test_samples: 300,
        shards_per_node: 2,
        separation: 1.2,
        noise: 0.8,
        modes_per_class: 2,
    };
    cfg.hidden_dim = 12;
    cfg.local_steps = 3;
    cfg.topology = TopologySpec::Regular { degree: 4 };
    cfg
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let gammas = [1usize, 2, 3];
    let runs = gammas.len() * gammas.len();
    group.throughput(Throughput::Elements(runs as u64));

    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("grid_3x3", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let campaign = grid_campaign(&sweep_base(1), &gammas).threads(threads);
                    black_box(campaign.run().expect("valid sweep"))
                })
            },
        );
    }
    group.finish();
}

fn bench_bundle_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_data_cache");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    // Same bundle shared by all 9 runs vs 9 distinct bundles: isolates the
    // cost the (DataSpec, nodes, seed) cache removes.
    group.bench_function("shared_bundle_9_runs", |b| {
        b.iter(|| {
            let campaign = grid_campaign(&sweep_base(2), &[1, 2, 3]).threads(1);
            black_box(campaign.run().expect("valid"))
        })
    });
    group.bench_function("distinct_bundles_9_runs", |b| {
        b.iter(|| {
            let configs: Vec<ExperimentConfig> = (0..9)
                .map(|i| {
                    let mut cfg = sweep_base(3);
                    cfg.seed = 1000 + i as u64; // distinct seed -> distinct bundle
                    cfg
                })
                .collect();
            black_box(
                Campaign::from_configs(configs)
                    .threads(1)
                    .run()
                    .expect("valid"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_throughput, bench_bundle_cache);
criterion_main!(benches);
