//! Local training-step latency: one SGD step (forward + backward + update)
//! for the model family at the paper's batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skiptrain_linalg::Matrix;
use skiptrain_nn::sgd::SgdConfig;
use skiptrain_nn::zoo::mlp;
use skiptrain_nn::{Sequential, Sgd, SoftmaxCrossEntropy};
use std::hint::black_box;
use std::time::Duration;

fn one_step(
    model: &mut Sequential,
    opt: &mut Sgd,
    loss: &SoftmaxCrossEntropy,
    x: &Matrix,
    y: &[u32],
    grad: &mut Matrix,
) -> f32 {
    model.zero_grads();
    let value = {
        let logits = model.forward(x, true);
        loss.loss_and_grad(logits, y, grad)
    };
    model.backward(grad);
    opt.step(model);
    value
}

fn bench_mlp_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgd_step_mlp");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (label, dims) in [
        ("small_10k", vec![32usize, 128, 10]),
        ("medium_90k", vec![128, 512, 128, 10]),
    ] {
        let mut model = mlp(&dims, 1);
        let loss = SoftmaxCrossEntropy::new(10);
        let mut opt = Sgd::new(SgdConfig::plain(0.1));
        let batch = 32usize;
        let x = Matrix::from_fn(batch, dims[0], |r, c| ((r * 31 + c) as f32).sin());
        let y: Vec<u32> = (0..batch).map(|i| (i % 10) as u32).collect();
        let mut grad = Matrix::zeros(0, 0);
        group.throughput(criterion::Throughput::Elements(model.param_count() as u64));
        group.bench_function(BenchmarkId::new("batch32", label), |b| {
            b.iter(|| black_box(one_step(&mut model, &mut opt, &loss, &x, &y, &mut grad)))
        });
    }
    group.finish();
}

fn bench_cnn_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgd_step_cnn");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    // the exact FEMNIST LEAF CNN of Table 1 (1 690 046 params), batch 16
    let mut model = skiptrain_nn::zoo::femnist_cnn(1);
    let loss = SoftmaxCrossEntropy::new(62);
    let mut opt = Sgd::new(SgdConfig::plain(0.1));
    let batch = 16usize;
    let x = Matrix::from_fn(batch, 28 * 28, |r, c| ((r * 13 + c) as f32).cos() * 0.3);
    let y: Vec<u32> = (0..batch).map(|i| (i % 62) as u32).collect();
    let mut grad = Matrix::zeros(0, 0);
    group.bench_function("femnist_cnn_batch16", |b| {
        b.iter(|| black_box(one_step(&mut model, &mut opt, &loss, &x, &y, &mut grad)))
    });
    group.finish();
}

criterion_group!(benches, bench_mlp_step, bench_cnn_step);
criterion_main!(benches);
