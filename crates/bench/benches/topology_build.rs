//! Topology substrate costs: d-regular generation, Metropolis–Hastings
//! weight construction, and spectral-gap estimation at paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skiptrain_topology::regular::random_regular;
use skiptrain_topology::spectral::second_eigenvalue;
use skiptrain_topology::MixingMatrix;
use std::hint::black_box;
use std::time::Duration;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for degree in [6usize, 10] {
        group.bench_with_input(
            BenchmarkId::new("random_regular_256", degree),
            &degree,
            |b, &d| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(random_regular(256, d, seed))
                })
            },
        );
    }
    group.finish();
}

fn bench_weights_and_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixing_matrix");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let graph = random_regular(256, 6, 7);
    group.bench_function("metropolis_hastings_256", |b| {
        b.iter(|| black_box(MixingMatrix::metropolis_hastings(&graph)))
    });
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    group.bench_function("spectral_gap_256", |b| {
        b.iter(|| black_box(second_eigenvalue(&mixing, 200, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_weights_and_spectral);
criterion_main!(benches);
