//! Transport costs: serialize/decode of model frames at the paper's model
//! sizes, and drop-decision throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skiptrain_engine::transport::{decode_model, encode_model, TransportKind};
use std::hint::black_box;
use std::time::Duration;

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (label, params) in [("cifar_90k", 89_834usize), ("femnist_1m7", 1_690_046)] {
        let model: Vec<f32> = (0..params).map(|i| (i as f32).sin()).collect();
        group.throughput(criterion::Throughput::Bytes((params * 4) as u64));
        group.bench_function(BenchmarkId::new("encode", label), |b| {
            b.iter(|| black_box(encode_model(1, 2, &model)))
        });
        let frame = encode_model(1, 2, &model);
        group.bench_function(BenchmarkId::new("decode", label), |b| {
            b.iter(|| black_box(decode_model(frame.clone()).unwrap()))
        });
    }
    group.finish();
}

fn bench_drop_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("drop_decisions");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let transport = TransportKind::Serialized {
        drop_prob: 0.1,
        corrupt_prob: 0.0,
    };
    group.throughput(criterion::Throughput::Elements(256 * 6));
    group.bench_function("round_256n_6deg", |b| {
        let mut round = 0usize;
        b.iter(|| {
            round += 1;
            let mut delivered = 0usize;
            for src in 0..256usize {
                for k in 0..6usize {
                    let dst = (src + k + 1) % 256;
                    if transport.delivered(42, round, src, dst) {
                        delivered += 1;
                    }
                }
            }
            black_box(delivered)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode_decode, bench_drop_decisions);
criterion_main!(benches);
