//! Regression gate for the error-feedback replica leak under time-varying
//! topologies.
//!
//! The pre-cap `ErrorFeedbackState` allocated one model-sized replica per
//! distinct directed link and never evicted, so a schedule cycling
//! through many graphs grew memory without bound. These tests drive 200
//! scheduled rounds of the acceptance scenario (edge-dropout over a dense
//! base graph, top-k compression with error feedback) through the
//! counting global allocator and pin that
//!
//! * live replica count stays under the configured `nodes × cap` bound
//!   while an uncapped twin provably exceeds it, and
//! * the steady-state allocation proxy is flat: a late window of rounds
//!   allocates no more than an earlier one (evicted buffers are recycled,
//!   so churn is allocation-free; what remains is the constant per-round
//!   graph + mixing generation).

use skiptrain_bench::perf::{allocated_bytes, CountingAllocator};
use skiptrain_data::synth::{MixtureSpec, MixtureTask};
use skiptrain_engine::{CompressionPolicy, ModelCodec, RoundAction, Simulation, SimulationConfig};
use skiptrain_nn::zoo::ModelKind;
use skiptrain_topology::{Graph, MixingMatrix, ScheduledTopology, TopologySchedule};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const NODES: usize = 24;
const ROUNDS: usize = 200;

fn build_sim(cap: usize) -> (Simulation, ScheduledTopology) {
    let base = Graph::complete(NODES);
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 10,
            feature_dim: 32,
            modes_per_class: 2,
            separation: 1.0,
            noise: 0.9,
        },
        7,
    );
    let datasets = (0..NODES).map(|i| task.sample(40, i as u64)).collect();
    let models = (0..NODES)
        .map(|i| {
            ModelKind::Mlp {
                dims: vec![32, 24, 10],
            }
            .build(7 + i as u64)
        })
        .collect();
    let mixing = MixingMatrix::metropolis_hastings(&base);
    let mut config = SimulationConfig::minimal(7, 16, 2, 0.5);
    config.compression = CompressionPolicy::Uniform(ModelCodec::TopK { k: 64 });
    config.feedback_beta = Some(1.0);
    config.feedback_replica_cap = Some(cap);
    let sim = Simulation::new(models, datasets, base.clone(), mixing, config);
    let sched = ScheduledTopology::new(base, TopologySchedule::EdgeDropout { p: 0.7, seed: 11 });
    (sim, sched)
}

fn run_rounds(sim: &mut Simulation, sched: &mut ScheduledTopology, rounds: usize) {
    let actions = vec![RoundAction::SyncOnly; NODES];
    for _ in 0..rounds {
        let mixing = sched.mixing_for_round(sim.round());
        sim.try_run_round_with_mixing(&actions, mixing)
            .expect("scheduled graph matches the fleet");
    }
}

#[test]
fn replica_memory_and_allocation_proxy_stay_bounded_across_200_scheduled_rounds() {
    let cap = 4;
    let (mut sim, mut sched) = build_sim(cap);

    // Warm into steady state: by round 100 the schedule has touched far
    // more distinct links than the cap retains.
    run_rounds(&mut sim, &mut sched, 100);
    let fb = sim.feedback().expect("feedback enabled");
    assert!(
        fb.total_evictions() > 0,
        "cycling a dense graph past a tight cap must evict"
    );

    let before_mid = allocated_bytes();
    run_rounds(&mut sim, &mut sched, 50);
    let window_a = allocated_bytes() - before_mid;
    let before_late = allocated_bytes();
    run_rounds(&mut sim, &mut sched, ROUNDS - 150);
    let window_b = allocated_bytes() - before_late;

    let fb = sim.feedback().expect("feedback enabled");
    assert!(
        fb.active_links() <= NODES * cap,
        "replica count {} exceeds the configured bound {}",
        fb.active_links(),
        NODES * cap
    );
    // Steady state is flat: the late window may not out-allocate the
    // earlier one beyond slack (both only pay the constant per-round
    // graph + MH generation; replica churn recycles buffers).
    assert!(
        window_b <= window_a + window_a / 4,
        "allocation proxy grew across scheduled rounds: {window_a} B then {window_b} B"
    );
    for i in 0..NODES {
        assert!(
            sim.node_params(i).iter().all(|v| v.is_finite()),
            "node {i} non-finite after 200 scheduled rounds"
        );
    }
}

#[test]
fn uncapped_twin_proves_the_cap_binds() {
    // The same 200-round schedule with an effectively unbounded cap
    // accumulates far more live replicas than the capped bound — the
    // memory the old grow-forever state would have kept.
    let (mut sim, mut sched) = build_sim(usize::MAX);
    run_rounds(&mut sim, &mut sched, ROUNDS);
    let fb = sim.feedback().expect("feedback enabled");
    assert_eq!(fb.total_evictions(), 0);
    assert!(
        fb.active_links() > NODES * 4,
        "uncapped run should exceed the capped bound: {} links",
        fb.active_links()
    );
    // a complete base graph eventually touches every directed link
    assert_eq!(fb.active_links(), NODES * (NODES - 1));
}
