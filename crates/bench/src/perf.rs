//! Machine-readable perf-gate reporting.
//!
//! The `perf_report` binary runs the round-loop / SGD / codec scenarios at
//! pinned configurations and emits `BENCH_round_loop.json`, giving CI and
//! future PRs a measured performance trajectory instead of asserted
//! claims. This module holds the pieces that are unit-testable outside
//! the binary: the measurement loop, the report schema builder, the
//! schema validator the CI smoke step relies on, and the
//! allocation-counting global allocator behind the `bytes_allocated_proxy`
//! column.
//!
//! # Report schema
//!
//! The report is one JSON object mapping scenario name →
//!
//! ```json
//! {
//!   "rounds_per_sec": 123.4,          // iterations per second (finite, > 0)
//!   "ns_per_step": 8100.0,            // nanoseconds per iteration (finite, > 0)
//!   "bytes_allocated_proxy": 4096,    // heap bytes allocated per iteration
//!   "config": { ... },                // pinned scenario configuration
//!   "git_rev": "abc1234"              // toolchain-independent provenance
//! }
//! ```
//!
//! [`validate_report`] enforces exactly this shape so the perf gate cannot
//! silently rot: missing fields, non-finite or non-positive rates, or a
//! missing config/revision all fail validation (and the binary exits
//! non-zero).

use serde_json::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed global allocator that counts every heap byte
/// requested (allocations and growth; frees are not subtracted, so the
/// counter is a monotone *allocation pressure* proxy, not live memory).
///
/// Install it in a binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// and read deltas via [`allocated_bytes`].
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged, so `System`'s contract
        // (non-zero size, valid alignment) is exactly our caller's contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from our caller, who per the
        // `GlobalAlloc` contract obtained `ptr` from `alloc` above — which
        // is `System.alloc` — with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            ALLOCATED_BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
        }
        // SAFETY: arguments are forwarded unchanged; `ptr` was produced by
        // `System.alloc`/`System.realloc` with `layout` per the caller's
        // `GlobalAlloc` obligations.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total heap bytes requested so far through [`CountingAllocator`]
/// (zero when the counting allocator is not installed).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// One measured scenario, ready to be placed into the report.
#[derive(Debug, Clone)]
pub struct ScenarioMeasurement {
    /// Scenario key in the report object.
    pub name: String,
    /// Iterations per second (a "round" is whatever one iteration does:
    /// a simulation round, an SGD step, a codec round trip).
    pub rounds_per_sec: f64,
    /// Nanoseconds per iteration.
    pub ns_per_step: f64,
    /// Heap bytes allocated per iteration (allocation-pressure proxy).
    pub bytes_allocated_proxy: u64,
    /// The pinned configuration this scenario ran at.
    pub config: Value,
}

/// Runs `f` `iters` times after `warmup` unmeasured runs, recording wall
/// time and the allocation delta across the measured window.
pub fn measure(
    name: &str,
    config: Value,
    warmup: usize,
    iters: usize,
    mut f: impl FnMut(),
) -> ScenarioMeasurement {
    assert!(iters > 0, "measure: need at least one iteration");
    for _ in 0..warmup {
        f();
    }
    let alloc_before = allocated_bytes();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let alloc_delta = allocated_bytes().saturating_sub(alloc_before);
    let ns_per_step = (elapsed.as_nanos() as f64 / iters as f64).max(1.0);
    ScenarioMeasurement {
        name: name.to_string(),
        rounds_per_sec: 1e9 / ns_per_step,
        ns_per_step,
        bytes_allocated_proxy: alloc_delta / iters as u64,
        config,
    }
}

/// Assembles the report object: scenario name → measurement entry.
pub fn build_report(git_rev: &str, scenarios: &[ScenarioMeasurement]) -> Value {
    Value::Object(
        scenarios
            .iter()
            .map(|s| {
                let entry = vec![
                    ("rounds_per_sec".to_string(), Value::Float(s.rounds_per_sec)),
                    ("ns_per_step".to_string(), Value::Float(s.ns_per_step)),
                    (
                        "bytes_allocated_proxy".to_string(),
                        Value::UInt(s.bytes_allocated_proxy),
                    ),
                    ("config".to_string(), s.config.clone()),
                    ("git_rev".to_string(), Value::String(git_rev.to_string())),
                ];
                (s.name.clone(), Value::Object(entry))
            })
            .collect(),
    )
}

/// Validates a perf report against the schema documented at module level:
/// a non-empty object whose entries carry finite, positive
/// `rounds_per_sec`/`ns_per_step`, an unsigned `bytes_allocated_proxy`, an
/// object-valued `config`, and a non-empty `git_rev` string.
pub fn validate_report(report: &Value) -> Result<(), String> {
    let entries = report
        .as_object()
        .ok_or_else(|| "report must be a JSON object".to_string())?;
    if entries.is_empty() {
        return Err("report contains no scenarios".to_string());
    }
    for (name, entry) in entries {
        let fields = entry
            .as_object()
            .ok_or_else(|| format!("scenario '{name}' is not an object"))?;
        let get = |key: &str| -> Result<&Value, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("scenario '{name}' is missing field '{key}'"))
        };
        for key in ["rounds_per_sec", "ns_per_step"] {
            let v = get(key)?
                .as_f64()
                .ok_or_else(|| format!("scenario '{name}': '{key}' is not numeric"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!(
                    "scenario '{name}': '{key}' must be finite and positive, got {v}"
                ));
            }
        }
        get("bytes_allocated_proxy")?
            .as_u64()
            .ok_or_else(|| format!("scenario '{name}': 'bytes_allocated_proxy' is not a u64"))?;
        get("config")?
            .as_object()
            .ok_or_else(|| format!("scenario '{name}': 'config' is not an object"))?;
        let rev = get("git_rev")?
            .as_str()
            .ok_or_else(|| format!("scenario '{name}': 'git_rev' is not a string"))?;
        if rev.is_empty() {
            return Err(format!("scenario '{name}': 'git_rev' is empty"));
        }
    }
    Ok(())
}

/// Scenario keys every emitted `BENCH_round_loop.json` must contain.
/// These are the pinned hot paths the perf gate tracks across PRs — a
/// report missing one of them (e.g. a scenario silently deleted from the
/// binary) fails validation in CI. `topk_feedback` pins the error-feedback
/// compression hot path added with the CHOCO-SGD subsystem;
/// `dynamic_topology_round` pins the scheduled-round loop (per-round graph
/// generation + MH mixing + capped error-feedback replicas), whose
/// allocation proxy is the regression gate for the replica leak — it must
/// stay bounded while the schedule cycles links forever; `battery_round`
/// pins the closed-loop battery round (harvest recharge, policy decision,
/// participation masking, settle), whose allocation proxy gates that the
/// battery bookkeeping stays allocation-free at steady state and O(n)
/// per round. The codec round-trip scenarios run through the reusable
/// encode/decode scratch buffers, and their allocation proxies gate that
/// the wire path stays allocation-free at steady state; `event_round`
/// pins the discrete-event scheduler (priority queue, seeded
/// straggler/latency/churn draws, late-edge classification) at one
/// realistic deadline round per iteration, also allocation-free at
/// steady state; `adaptive_link_round` pins the per-link compression
/// policy layer (per-round charge snapshot, DEAL tier resolution into
/// the per-node codec rows, heterogeneous-codec share, per-edge byte
/// charging) on a 64-node diurnal battery fleet over cached
/// edge-dropout mixings, whose allocation proxy gates that adaptive
/// codec resolution stays allocation-free at steady state.
pub const REQUIRED_SCENARIOS: &[&str] = &[
    "sgd_step_mlp_medium_90k",
    "round_loop_train_64",
    "round_loop_sync_256",
    "codec_dense_roundtrip",
    "codec_quantized_u16_roundtrip",
    "topk_feedback",
    "dynamic_topology_round",
    "battery_round",
    "event_round",
    "corrupt_frame_round",
    "adaptive_link_round",
];

/// Checks that `report` contains every key in `required` (shape is
/// checked separately by [`validate_report`]).
pub fn validate_required_scenarios(report: &Value, required: &[&str]) -> Result<(), String> {
    let entries = report
        .as_object()
        .ok_or_else(|| "report must be a JSON object".to_string())?;
    for key in required {
        if !entries.iter().any(|(k, _)| k == key) {
            return Err(format!("report is missing required scenario '{key}'"));
        }
    }
    Ok(())
}

/// Builds a JSON object from `(key, value)` pairs (insertion order kept).
pub fn json_object(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement(name: &str) -> ScenarioMeasurement {
        ScenarioMeasurement {
            name: name.to_string(),
            rounds_per_sec: 120.5,
            ns_per_step: 8.3e6,
            bytes_allocated_proxy: 4096,
            config: json_object(vec![("nodes", Value::UInt(64))]),
        }
    }

    #[test]
    fn built_report_round_trips_and_validates() {
        let report = build_report("abc1234", &[sample_measurement("round_loop")]);
        validate_report(&report).expect("fresh report must validate");
        // survive a serialize/parse round trip (what CI actually checks)
        let text = serde_json::to_string_pretty(&report).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        validate_report(&parsed).expect("parsed report must validate");
    }

    #[test]
    fn empty_report_is_rejected() {
        let report = build_report("abc1234", &[]);
        assert!(validate_report(&report).is_err());
    }

    #[test]
    fn missing_field_is_rejected() {
        let report = Value::Object(vec![(
            "scenario".to_string(),
            json_object(vec![("rounds_per_sec", Value::Float(1.0))]),
        )]);
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("ns_per_step"), "unexpected error: {err}");
    }

    #[test]
    fn non_finite_and_non_positive_rates_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
            let mut m = sample_measurement("s");
            m.rounds_per_sec = bad;
            let report = build_report("rev", &[m]);
            assert!(
                validate_report(&report).is_err(),
                "rounds_per_sec {bad} must be rejected"
            );
        }
    }

    #[test]
    fn empty_git_rev_is_rejected() {
        let report = build_report("", &[sample_measurement("s")]);
        assert!(validate_report(&report).is_err());
    }

    #[test]
    fn required_scenarios_are_enforced() {
        let full: Vec<ScenarioMeasurement> = REQUIRED_SCENARIOS
            .iter()
            .map(|name| sample_measurement(name))
            .collect();
        let report = build_report("rev", &full);
        validate_required_scenarios(&report, REQUIRED_SCENARIOS)
            .expect("complete report must pass");
        // dropping any one required scenario fails with its name
        for (i, name) in REQUIRED_SCENARIOS.iter().enumerate() {
            let mut partial = full.clone();
            partial.remove(i);
            let report = build_report("rev", &partial);
            let err = validate_required_scenarios(&report, REQUIRED_SCENARIOS).unwrap_err();
            assert!(err.contains(name), "error '{err}' should name '{name}'");
        }
        assert!(
            REQUIRED_SCENARIOS.contains(&"topk_feedback"),
            "the error-feedback hot path must stay pinned"
        );
        assert!(
            REQUIRED_SCENARIOS.contains(&"dynamic_topology_round"),
            "the scheduled-round replica-leak gate must stay pinned"
        );
        assert!(
            REQUIRED_SCENARIOS.contains(&"event_round"),
            "the discrete-event scheduler gate must stay pinned"
        );
        assert!(
            REQUIRED_SCENARIOS.contains(&"codec_quantized_u16_roundtrip"),
            "the quantized wire-path allocation gate must stay pinned"
        );
    }

    #[test]
    fn measure_reports_positive_rates() {
        let mut acc = 0u64;
        let m = measure(
            "spin",
            json_object(vec![("iters", Value::UInt(64))]),
            1,
            5,
            || {
                for i in 0..64u64 {
                    acc = acc.wrapping_add(i * i);
                }
                std::hint::black_box(acc);
            },
        );
        assert!(m.rounds_per_sec.is_finite() && m.rounds_per_sec > 0.0);
        assert!(m.ns_per_step.is_finite() && m.ns_per_step > 0.0);
        let report = build_report("deadbee", &[m]);
        validate_report(&report).expect("measured scenario must validate");
    }
}
