//! Shared harness utilities for the per-figure/per-table regeneration
//! binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale quick|medium|paper   simulation scale (default: quick)
//! --seed N                     master seed (default: 42)
//! --nodes N                    override node count
//! --rounds N                   override round count
//! --json PATH                  also dump results as JSON
//! ```
//!
//! Binaries print the paper's reported numbers next to the measured ones so
//! the reproduction can be judged at a glance; EXPERIMENTS.md records one
//! full run.

// The only unsafe in the workspace lives in this crate (the counting
// allocator); force every unsafe operation into an explicit, SAFETY-
// commented block even inside `unsafe fn` bodies.
#![deny(unsafe_op_in_unsafe_fn)]

use skiptrain_core::presets::Scale;
use skiptrain_core::ExperimentConfig;
use std::path::PathBuf;

pub mod paper;
pub mod perf;

/// Parsed command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Simulation scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Node-count override.
    pub nodes: Option<usize>,
    /// Round-count override.
    pub rounds: Option<usize>,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 42,
            nodes: None,
            rounds: None,
            json: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| usage(&format!("missing value for {name}")))
            };
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale");
                    out.scale =
                        Scale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale '{v}'")));
                }
                "--seed" => {
                    out.seed = value("--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --seed"))
                }
                "--nodes" => {
                    out.nodes = Some(
                        value("--nodes")
                            .parse()
                            .unwrap_or_else(|_| usage("bad --nodes")),
                    )
                }
                "--rounds" => {
                    out.rounds = Some(
                        value("--rounds")
                            .parse()
                            .unwrap_or_else(|_| usage("bad --rounds")),
                    )
                }
                "--json" => out.json = Some(PathBuf::from(value("--json"))),
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        out
    }

    /// Applies overrides to an experiment config.
    pub fn apply(&self, cfg: &mut ExperimentConfig) {
        cfg.seed = self.seed;
        if let Some(n) = self.nodes {
            cfg.nodes = n;
        }
        if let Some(r) = self.rounds {
            cfg.rounds = r;
        }
    }

    /// Writes a JSON value to `--json` if given.
    pub fn maybe_write_json(&self, value: &serde_json::Value) {
        if let Some(path) = &self.json {
            let text = serde_json::to_string_pretty(value).expect("serializable result");
            std::fs::write(path, text).unwrap_or_else(|e| {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            });
            eprintln!("wrote {}", path.display());
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale quick|medium|paper] [--seed N] [--nodes N] [--rounds N] [--json PATH]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Reads a learning curve at a training-energy budget: the last evaluation
/// point whose cumulative training energy does not exceed `budget_wh`.
/// This is how the paper's Table 4 reads the (not energy-aware) D-PSGD
/// baseline at an energy level matched to the constrained algorithms.
pub fn accuracy_at_energy(
    result: &skiptrain_core::ExperimentResult,
    budget_wh: f64,
) -> Option<(usize, f32)> {
    result
        .test_curve
        .iter()
        .rfind(|p| p.training_energy_wh <= budget_wh + 1e-9)
        .map(|p| (p.round, p.mean_accuracy))
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let args = HarnessArgs::parse_from(Vec::<String>::new());
        assert_eq!(args.seed, 42);
        assert_eq!(args.scale, Scale::Quick);
        assert!(args.nodes.is_none());
    }

    #[test]
    fn parse_all_flags() {
        let args = HarnessArgs::parse_from(
            [
                "--scale",
                "medium",
                "--seed",
                "7",
                "--nodes",
                "16",
                "--rounds",
                "99",
                "--json",
                "/tmp/x.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(args.scale, Scale::Medium);
        assert_eq!(args.seed, 7);
        assert_eq!(args.nodes, Some(16));
        assert_eq!(args.rounds, Some(99));
        assert!(args.json.is_some());
    }

    #[test]
    fn overrides_apply() {
        let mut cfg = skiptrain_core::presets::cifar_config(Scale::Quick, 1);
        let args = HarnessArgs {
            nodes: Some(12),
            rounds: Some(20),
            seed: 9,
            ..HarnessArgs::default()
        };
        args.apply(&mut cfg);
        assert_eq!(cfg.nodes, 12);
        assert_eq!(cfg.rounds, 20);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "rows not aligned:\n{t}"
        );
    }
}
