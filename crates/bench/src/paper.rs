//! The paper's published numbers, embedded for side-by-side comparison in
//! harness output. All values transcribed from arXiv:2407.01283.

/// One row of the paper's Table 3 (unconstrained performance).
pub struct Table3Row {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// Training energy (Wh) per topology degree 6/8/10.
    pub energy_wh: [f64; 3],
    /// Average test accuracy (%) per topology degree 6/8/10.
    pub accuracy_pct: [f64; 3],
}

/// The paper's Table 3.
pub const TABLE3: [Table3Row; 4] = [
    Table3Row {
        algorithm: "SkipTrain",
        dataset: "CIFAR-10",
        energy_wh: [755.02, 756.53, 1008.71],
        accuracy_pct: [65.09, 65.93, 66.96],
    },
    Table3Row {
        algorithm: "D-PSGD",
        dataset: "CIFAR-10",
        energy_wh: [1510.04, 1510.04, 1510.04],
        accuracy_pct: [57.55, 60.08, 62.20],
    },
    Table3Row {
        algorithm: "SkipTrain",
        dataset: "FEMNIST",
        energy_wh: [7457.19, 7457.19, 9942.92],
        accuracy_pct: [79.26, 79.32, 79.24],
    },
    Table3Row {
        algorithm: "D-PSGD",
        dataset: "FEMNIST",
        energy_wh: [14914.38, 14914.38, 14914.38],
        accuracy_pct: [78.6, 78.69, 78.73],
    },
];

/// One row of the paper's Table 4 (energy-constrained setting).
pub struct Table4Row {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// Energy budget (Wh) per topology degree 6/8/10.
    pub budget_wh: [f64; 3],
    /// Average test accuracy (%) per topology degree 6/8/10.
    pub accuracy_pct: [f64; 3],
}

/// The paper's Table 4.
pub const TABLE4: [Table4Row; 6] = [
    Table4Row {
        algorithm: "SkipTrain-constrained",
        dataset: "CIFAR-10",
        budget_wh: [462.7, 463.1, 490.55],
        accuracy_pct: [63.50, 63.52, 64.33],
    },
    Table4Row {
        algorithm: "Greedy",
        dataset: "CIFAR-10",
        budget_wh: [463.37, 463.7, 491.18],
        accuracy_pct: [54.39, 56.57, 57.86],
    },
    Table4Row {
        algorithm: "D-PSGD",
        dataset: "CIFAR-10",
        budget_wh: [468.11, 468.11, 498.31],
        accuracy_pct: [51.57, 53.98, 56.36],
    },
    Table4Row {
        algorithm: "SkipTrain-constrained",
        dataset: "FEMNIST",
        budget_wh: [2455.43, 2454.97, 2454.29],
        accuracy_pct: [78.27, 78.26, 78.23],
    },
    Table4Row {
        algorithm: "Greedy",
        dataset: "FEMNIST",
        budget_wh: [2460.41, 2460.41, 1460.41],
        accuracy_pct: [77.25, 77.45, 77.60],
    },
    Table4Row {
        algorithm: "D-PSGD",
        dataset: "FEMNIST",
        budget_wh: [2485.73, 2485.73, 2485.73],
        accuracy_pct: [77.05, 77.34, 77.54],
    },
];

/// The paper's Figure 3 validation-accuracy grids (%), indexed
/// `[Γ_sync − 1][Γ_train − 1]`, one grid per topology degree.
pub const FIG3_VAL_ACC_6REG: [[f64; 4]; 4] = [
    [59.7, 61.4, 63.1, 63.4],
    [60.6, 64.1, 65.0, 65.6],
    [58.9, 63.7, 65.7, 65.8],
    [57.0, 63.2, 65.6, 66.1],
];

/// 8-regular validation grid of Figure 3.
pub const FIG3_VAL_ACC_8REG: [[f64; 4]; 4] = [
    [60.3, 62.5, 64.2, 64.9],
    [61.5, 65.0, 66.3, 66.1],
    [59.0, 64.6, 66.3, 66.3],
    [56.6, 63.3, 65.9, 66.0],
];

/// 10-regular validation grid of Figure 3.
pub const FIG3_VAL_ACC_10REG: [[f64; 4]; 4] = [
    [61.3, 64.4, 65.4, 65.9],
    [62.7, 66.0, 66.3, 66.8],
    [59.4, 64.9, 66.5, 66.2],
    [56.8, 64.0, 65.6, 66.1],
];

/// The paper's Figure 3 energy grid (Wh), same indexing.
pub const FIG3_ENERGY_WH: [[f64; 4]; 4] = [
    [755.0, 1007.0, 1133.0, 1208.0],
    [504.0, 755.0, 906.0, 1009.0],
    [378.0, 604.0, 757.0, 864.0],
    [302.0, 504.0, 648.0, 755.0],
];

/// §1 headline claims.
pub const CLAIM_TRAINING_KWH: f64 = 1.51;
/// §1: communication + aggregation energy for the same run (Wh).
pub const CLAIM_COMM_WH: f64 = 7.0;
/// §1: training is "more than 200×" costlier than communication.
pub const CLAIM_MIN_RATIO: f64 = 200.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_energy_halves_under_skiptrain() {
        // SkipTrain's 6-regular energy is half of D-PSGD's (Γ = (4,4)).
        assert!((TABLE3[0].energy_wh[0] * 2.0 - TABLE3[1].energy_wh[0]).abs() < 1.0);
    }

    #[test]
    fn fig3_energy_is_monotone_in_gamma_train() {
        for row in &FIG3_ENERGY_WH {
            for gt in 0..3 {
                assert!(row[gt] < row[gt + 1]);
            }
        }
    }

    #[test]
    fn claims_are_consistent() {
        let ratio = CLAIM_TRAINING_KWH * 1000.0 / CLAIM_COMM_WH;
        assert!(
            ratio > CLAIM_MIN_RATIO,
            "claimed ratio {ratio} below {CLAIM_MIN_RATIO}"
        );
    }
}
