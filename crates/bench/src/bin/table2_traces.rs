//! Table 2: energy traces — per-round training energy and battery-budget
//! rounds for the four phones × two datasets, derived from device profiles
//! through the §2.3/§4.2 pipeline and compared against the published table.

use skiptrain_bench::{banner, render_table, HarnessArgs};
use skiptrain_energy::trace::{table2, TraceRow};

const PAPER: [(&str, f64, f64, usize, usize); 4] = [
    ("Xiaomi 12 Pro", 6.5, 22.0, 272, 413),
    ("Samsung Galaxy S22 Ultra", 6.0, 20.0, 324, 492),
    ("OnePlus Nord 2 5G", 2.6, 8.4, 681, 1034),
    ("Xiaomi Poco X3", 8.5, 28.0, 272, 413),
];

fn main() {
    let args = HarnessArgs::parse();
    banner("Table 2: derived energy traces (paper values in parentheses)");
    let rows: Vec<Vec<String>> = table2()
        .iter()
        .zip(&PAPER)
        .map(|(row, paper): (&TraceRow, _)| {
            vec![
                row.device.clone(),
                format!("{:.2} ({})", row.cifar_mwh, paper.1),
                format!("{:.2} ({})", row.femnist_mwh, paper.2),
                format!("{} ({})", row.cifar_rounds, paper.3),
                format!("{} ({})", row.femnist_rounds, paper.4),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "device",
                "CIFAR mWh/round",
                "FEMNIST mWh/round",
                "CIFAR rounds @10%",
                "FEMNIST rounds @50%",
            ],
            &rows
        )
    );
    println!(
        "pipeline: AI-Benchmark MobileNet-v2 latency scaled by |x|/|mobilenet|, ×3\n\
         (FedScale), ×E×|ξ| per round; energy = Burnout power × duration (Eq. 2);\n\
         budgets = ⌊battery × fraction / E_round⌋ (§4.2)."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "table2_traces",
        "rows": table2(),
    }));
}
