//! Internal tuning probe: explores the hyperparameter regime in which the
//! paper's qualitative result (SkipTrain ≥ D-PSGD at equal rounds under
//! label skew) manifests on the synthetic task. Not part of the figure
//! suite, but kept for transparency about how the preset regime was chosen.

use skiptrain_core::experiment::{AlgorithmSpec, DataSpec};
use skiptrain_core::presets::{cifar_config, Scale};
use skiptrain_core::Schedule;

fn env_f32(name: &str, default: f32) -> f32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut cfg = cifar_config(Scale::Quick, 42);
    cfg.rounds = env_usize("ROUNDS", 120);
    cfg.local_steps = env_usize("STEPS", 8);
    cfg.learning_rate = env_f32("LR", 0.25);
    cfg.nodes = env_usize("NODES", 24);
    cfg.hidden_dim = env_usize("HIDDEN", 24);
    cfg.eval_every = 8;
    if let DataSpec::CifarLike {
        feature_dim,
        samples_per_node,
        test_samples,
        ..
    } = cfg.data
    {
        cfg.data = DataSpec::CifarLike {
            feature_dim: env_usize("DIM", feature_dim),
            samples_per_node: env_usize("SPN", samples_per_node),
            test_samples,
            shards_per_node: env_usize("SHARDS", 2),
            separation: env_f32("SEP", 1.0),
            noise: env_f32("NOISE", 0.85),
            modes_per_class: env_usize("MODES", 3),
        };
    }
    eprintln!(
        "probe: rounds={} steps={} lr={} nodes={} hidden={}",
        cfg.rounds, cfg.local_steps, cfg.learning_rate, cfg.nodes, cfg.hidden_dim
    );

    let data = cfg.data.build(cfg.nodes, cfg.seed);
    let constrained_energy = skiptrain_core::experiment::EnergySpec::cifar10_constrained()
        .scaled_for_rounds(cfg.rounds, 1000);
    for algo in [
        AlgorithmSpec::DPsgd,
        AlgorithmSpec::SkipTrain(Schedule::new(4, 4)),
        AlgorithmSpec::SkipTrain(Schedule::new(2, 2)),
        AlgorithmSpec::Greedy,
        AlgorithmSpec::SkipTrainConstrained(Schedule::new(4, 4)),
    ] {
        let mut c = cfg.clone();
        let label = match &algo {
            AlgorithmSpec::SkipTrain(s) => format!("skiptrain({},{})", s.gamma_train, s.gamma_sync),
            other => other.name().to_string(),
        };
        if matches!(
            algo,
            AlgorithmSpec::Greedy | AlgorithmSpec::SkipTrainConstrained(_)
        ) {
            c.energy = constrained_energy.clone();
        }
        c.algorithm = algo;
        c.record_mean_model = true;
        let r = c.run_on(&data);
        let curve: Vec<String> = r
            .test_curve
            .iter()
            .map(|p| format!("{}:{:.1}", p.round, p.mean_accuracy * 100.0))
            .collect();
        let mean_curve: Vec<String> = r
            .mean_model_curve
            .iter()
            .map(|(t, a)| format!("{}:{:.1}", t, a * 100.0))
            .collect();
        println!(
            "{label:<18} final {:.1}% (mean-model {:.1}%)\n  node curve: {}\n  mean curve: {}",
            r.final_test.mean_accuracy * 100.0,
            r.mean_model_curve
                .last()
                .map(|(_, a)| a * 100.0)
                .unwrap_or(0.0),
            curve.join(" "),
            mean_curve.join(" "),
        );
    }
}
