//! Figure 2: the round schedules of D-PSGD, SkipTrain and
//! SkipTrain-constrained, rendered as ASCII (the paper's figure is an
//! illustration, so this harness regenerates the *pattern*, including a
//! realization of the constrained policy's probabilistic skips).

use skiptrain_bench::{banner, HarnessArgs};
use skiptrain_core::policy::{ConstrainedPolicy, RoundPolicy, SkipTrainPolicy};
use skiptrain_core::Schedule;
use skiptrain_engine::RoundAction;

fn render_policy(policy: &mut dyn RoundPolicy, nodes: usize, rounds: usize) -> Vec<String> {
    let mut actions = vec![RoundAction::SyncOnly; nodes];
    let mut rows = vec![String::new(); nodes];
    for t in 0..rounds {
        policy.decide(t, &mut actions);
        for (row, action) in rows.iter_mut().zip(&actions) {
            row.push(if *action == RoundAction::Train {
                'T'
            } else {
                's'
            });
        }
    }
    rows
}

fn main() {
    let args = HarnessArgs::parse();
    let nodes = args.nodes.unwrap_or(4);
    let rounds = args.rounds.unwrap_or(24);
    let schedule = Schedule::new(4, 4);

    banner("Figure 2a: D-PSGD (train every round)");
    let mut dpsgd = skiptrain_core::policy::DPsgdPolicy;
    for (i, row) in render_policy(&mut dpsgd, nodes, rounds).iter().enumerate() {
        println!("node {i}: {row}");
    }

    banner("Figure 2b: SkipTrain (coordinated Γ_train=4 / Γ_sync=4)");
    let mut skiptrain = SkipTrainPolicy::new(schedule);
    for (i, row) in render_policy(&mut skiptrain, nodes, rounds)
        .iter()
        .enumerate()
    {
        println!("node {i}: {row}");
    }

    banner("Figure 2c: SkipTrain-constrained (per-node probabilistic skips)");
    // Budgets chosen so p ∈ {0.25, 0.5, 0.75, 1.0} across the four nodes.
    let t_train = schedule.t_train(rounds);
    let budgets: Vec<u32> = (1..=nodes)
        .map(|k| ((t_train * k as f64) / nodes as f64).ceil() as u32)
        .collect();
    let mut constrained = ConstrainedPolicy::new(schedule, budgets.clone(), rounds, args.seed);
    for (i, row) in render_policy(&mut constrained, nodes, rounds)
        .iter()
        .enumerate()
    {
        println!(
            "node {i}: {row}   (τ={}, p={:.2})",
            budgets[i],
            constrained.probability(i)
        );
    }
    println!("\nlegend: T = train+share+aggregate round, s = share+aggregate only");
}
