//! Schedule-structure ablations the paper's design implies but does not
//! evaluate:
//!
//! 1. **block ordering** — train-first (the paper's TTTTSSSS) vs sync-first
//!    (SSSSTTTT) at the same Γ values;
//! 2. **granularity** — at a fixed 50 % train fraction, interleaved (1,1)
//!    vs blocked (4,4) vs coarse (8,8) schedules.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::experiment::AlgorithmSpec;
use skiptrain_core::presets::cifar_config;
use skiptrain_core::Schedule;

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.eval_every = usize::MAX;
    let data = base.data.build(base.nodes, base.seed);

    banner("ablation 1: block ordering at Γ=(4,4)");
    let mut rows = Vec::new();
    for (label, schedule) in [
        ("train-first TTTTSSSS", Schedule::new(4, 4)),
        ("sync-first SSSSTTTT", Schedule::new(4, 4).with_offset(4)),
    ] {
        let mut cfg = base.clone();
        cfg.algorithm = AlgorithmSpec::SkipTrain(schedule);
        cfg.name = format!("order-{label}");
        let r = cfg.run_on(&data);
        rows.push(vec![
            label.to_string(),
            pct(r.final_test.mean_accuracy),
            pct(r.final_test.std_accuracy),
            format!("{:.2}", r.total_training_wh),
        ]);
    }
    println!(
        "{}",
        render_table(&["ordering", "acc%", "std", "energy Wh"], &rows)
    );
    println!(
        "note: sync-first front-loads mixing of the random initial models; the paper\n\
         implicitly uses train-first. Final-round evaluation lands after a sync block\n\
         for train-first and after a train block for sync-first, which is most of any\n\
         difference observed (the Figure-4 sawtooth)."
    );

    banner("ablation 2: granularity at 50% train fraction");
    let mut rows = Vec::new();
    for (label, schedule) in [
        ("interleaved (1,1)", Schedule::new(1, 1)),
        ("paper blocks (4,4)", Schedule::new(4, 4)),
        ("coarse blocks (8,8)", Schedule::new(8, 8)),
    ] {
        let mut cfg = base.clone();
        cfg.algorithm = AlgorithmSpec::SkipTrain(schedule);
        cfg.name = format!("granularity-{label}");
        cfg.eval_every = schedule.period();
        let r = cfg.run_on(&data);
        rows.push(vec![
            label.to_string(),
            pct(r.final_test.mean_accuracy),
            pct(r.final_test.std_accuracy),
            format!("{:.2}", r.total_training_wh),
            r.node_train_events.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["schedule", "acc%", "std", "energy Wh", "train events"],
            &rows
        )
    );
    println!(
        "\nreading: energy is identical at equal train fraction; accuracy differences\n\
         isolate the value of *consecutive* synchronization rounds (multiple gossip\n\
         steps compound per §2's mixing argument)."
    );
}
