//! Adaptive-compression extension: the accuracy-per-harvested-watt-hour
//! frontier across per-link codec policies on a battery-gated fleet.
//!
//! DEAL-style energy-aware learning picks the message representation per
//! sender per round instead of fixing one global codec for the whole run.
//! This harness runs the same diurnal-harvest experiment — batteries start
//! partly charged, recharge from a day/night trace, and drain through
//! training and a deliberately expensive radio while an edge-dropout
//! schedule reshapes the topology every round — under every fixed uniform
//! codec and under the adaptive policies:
//!
//! * **uniform** — the legacy global codec (dense, u16, u8, top-k),
//! * **deal 4-tier** — the canonical DEAL decremental tier table: dense
//!   while comfortably charged, then u16 → u8 → top-k as the sender's
//!   battery drains past 75% / 50% / 25%,
//! * **energy-adaptive 2-tier** — the tuned table the pinned acceptance
//!   test uses: u8 above a charge gate, a tight top-k famine floor below,
//! * **rarity-adaptive** — a bigger top-k budget on links the dropout
//!   schedule fires rarely, so infrequent contacts carry more signal.
//!
//! Because the engine charges energy per effective edge from the codec the
//! policy actually resolved, the wire-byte and comm-energy columns reflect
//! the adaptive decisions exactly. The frontier claim: with the radio
//! priced so codec choice controls real battery spend, the tuned 2-tier
//! table beats every fixed codec on accuracy per harvested watt-hour at
//! fewer total wire bytes than the best of them, while the canonical
//! 4-tier table shows where dense/u16 rungs overpay.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::cifar_config;
use skiptrain_core::{
    BatteryCapacitySpec, BatterySpec, Campaign, CompressionPolicy, CompressionSpec, EnergyTier,
    ExperimentConfig, ModelCodec, TopologyScheduleSpec,
};
use skiptrain_energy::battery::BatteryPolicy;
use skiptrain_energy::device::fleet;
use skiptrain_energy::trace::{round_duration_s, HarvestProfile};

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.eval_every = base.rounds.min(8);
    // Every round is a participation decision (D-PSGD trains each round),
    // and the dropout schedule makes link firing intermittent — the regime
    // where per-link, per-round codec choice has room to matter.
    base.topology_schedule = TopologyScheduleSpec::EdgeDropout { p: 0.3 };

    // Put the fleet in a comm-dominated regime: price the radio so one
    // u8-quality round costs several training rounds, and size the
    // harvest to replace only a fraction of that. Codec choice then
    // controls real battery spend — the regime where the tier table has
    // something to trade — and charge actually traverses dense → u16 →
    // u8 → top-k as batteries sag over the night and climb back by day.
    let costs = base.energy.node_energies(base.nodes);
    let max_cost = costs.into_iter().fold(0.0f64, f64::max);
    let round_s = fleet(base.nodes)
        .iter()
        .map(|d| round_duration_s(&d.profile(), &base.energy.workload))
        .fold(0.0f64, f64::max);
    let nominal = base.energy.workload.model_params;
    let degree = match base.topology {
        skiptrain_core::TopologySpec::Regular { degree } => degree as f64,
        _ => 6.0,
    };
    let eff_degree = degree * 0.7; // dropout p = 0.3
    let u8_bytes = ModelCodec::QuantizedU8.message_bytes(nominal) as f64;
    // One u8-tier round (tx + rx over the expected effective degree)
    // drains ~6x the costliest training round.
    const COMM_FACTOR: f64 = 6.0;
    let jpb = COMM_FACTOR * max_cost * 3600.0 / (2.0 * eff_degree * u8_bytes);
    base.energy.comm_joules_per_byte = Some(jpb);
    // Diurnal harvest whose per-round *mean* replaces a third of a
    // u8-tier round; capacity banks about two such rounds.
    let mean_harvest = (1.0 + COMM_FACTOR) * max_cost / 3.0;
    let peak_watts = std::f64::consts::PI * mean_harvest * 3600.0 / round_s;
    let battery = BatterySpec {
        capacity: BatteryCapacitySpec::Uniform {
            wh: 2.0 * (1.0 + COMM_FACTOR) * max_cost,
        },
        initial_fraction: 0.6,
        harvest: HarvestProfile::Diurnal {
            peak_watts,
            period_rounds: 16.0,
        },
        harvest_jitter: 0.25,
        policy: BatteryPolicy::Threshold { min_fraction: 0.25 },
        node_policies: None,
    };
    base.battery = Some(battery);

    let sim_params = base.model_kind().build(0).param_count();
    let floor_k = (sim_params / 64).max(1);
    let policies: Vec<(&str, CompressionPolicy)> = vec![
        (
            "dense f32",
            CompressionPolicy::Uniform(ModelCodec::DenseF32),
        ),
        (
            "quantized-u16",
            CompressionPolicy::Uniform(ModelCodec::QuantizedU16),
        ),
        (
            "quantized-u8",
            CompressionPolicy::Uniform(ModelCodec::QuantizedU8),
        ),
        (
            "top-k 6%",
            CompressionPolicy::Uniform(ModelCodec::TopK {
                k: (sim_params / 16).max(1),
            }),
        ),
        (
            "top-k 2%",
            CompressionPolicy::Uniform(ModelCodec::TopK { k: floor_k }),
        ),
        ("deal 4-tier", CompressionPolicy::deal_tiers(floor_k)),
        (
            // The tuned two-rung table from the pinned acceptance test:
            // u8 while the battery holds above the gate, a tight top-k
            // famine floor below it — no dense/u16 rungs to overpay on.
            "energy-adaptive 2-tier",
            CompressionPolicy::EnergyAdaptive {
                tiers: vec![
                    EnergyTier {
                        min_charge_fraction: 0.3,
                        codec: ModelCodec::QuantizedU8,
                    },
                    EnergyTier {
                        min_charge_fraction: 0.0,
                        codec: ModelCodec::TopK {
                            k: (sim_params / 256).max(1),
                        },
                    },
                ],
            },
        ),
        (
            "rarity-adaptive",
            CompressionPolicy::RarityAdaptive {
                base_k: floor_k,
                max_k: (sim_params / 8).max(1),
            },
        ),
    ];

    banner(&format!(
        "adaptive compression frontier: accuracy per harvested Wh ({} nodes, {} rounds, edge-dropout 0.3)",
        base.nodes, base.rounds
    ));

    // One campaign runs every policy cell in parallel over one shared data
    // bundle and one shared harvest seed: only codec selection differs.
    let mut campaign = Campaign::new();
    for (label, policy) in &policies {
        campaign = campaign.push(cell(&base, label, policy.clone()));
    }
    let results = campaign.run().expect("valid compression configs");

    let rows: Vec<Vec<String>> = policies
        .iter()
        .zip(&results)
        .map(|((label, _), r)| {
            let b = r.battery.as_ref().expect("battery summary recorded");
            let denom = b.harvest_denominator_wh();
            let acc_per_wh = if denom > 0.0 {
                format!("{:.4}", r.final_test.mean_accuracy as f64 / denom)
            } else {
                "-".into()
            };
            vec![
                label.to_string(),
                pct(r.final_test.mean_accuracy),
                format!("{:.1}", r.total_wire_bytes as f64 / 1e6),
                format!("{:.4}", r.total_comm_wh),
                format!("{:.4}", b.harvested_wh),
                format!("{}", b.brownouts),
                acc_per_wh,
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "final acc%",
                "wire MB",
                "comm Wh",
                "harvested Wh",
                "brownouts",
                "acc / harv Wh",
            ],
            &rows
        )
    );
    println!(
        "\nreading: every cell shares the data, model, harvest trace, and dropout\n\
         schedule; only the per-link codec policy differs. Fixed dense and u16\n\
         pay fidelity the battery cannot afford, fixed top-k starves the mixing\n\
         every round, and the canonical 4-tier DEAL table recovers most of the\n\
         gap but still overpays on its dense/u16 rungs. The tuned 2-tier table\n\
         (u8 above the charge gate, a tight top-k floor below) beats every\n\
         fixed codec on accuracy per harvested watt-hour at fewer wire bytes\n\
         than the best fixed codec — the frontier the pinned acceptance test\n\
         locks in. Rarity-adaptive instead spends its byte budget where the\n\
         dropout schedule makes contact scarce."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ext_adaptive_compression",
        "sim_params": sim_params,
        "peak_watts": peak_watts,
        "policies": policies.iter().map(|(l, _)| l.to_string()).collect::<Vec<_>>(),
        "results": results,
    }));
}

/// One campaign cell: `base` under `policy`, labeled for the report.
fn cell(base: &ExperimentConfig, label: &str, policy: CompressionPolicy) -> ExperimentConfig {
    let mut cfg = base.clone();
    cfg.compression = Some(CompressionSpec {
        policy,
        // Error feedback in every cell: sparse messages refine dense
        // per-link replicas instead of zero-filling, so top-k tiers (and
        // the fixed top-k baselines) compete at their best.
        feedback_beta: Some(1.0),
        ..CompressionSpec::default()
    });
    cfg.name = format!("{}/{}", base.name, label);
    cfg
}
