//! Event-engine extension: the async-gossip accuracy/energy frontier
//! across straggler severity and membership churn.
//!
//! The paper's experiments assume a lockstep fleet: every node trains at
//! the same speed, every message arrives instantly, nobody leaves. The
//! discrete-event core drops all three assumptions. This harness runs the
//! asynchronous pairwise-gossip variant (deadline rounds: a message that
//! misses the grace window after the slowest participant is a late edge,
//! treated like a transport drop) over a grid crossing
//!
//! * **stragglers** — none, a mild tail (10% of node-rounds 2× slower),
//!   and a heavy tail (30% of node-rounds 4× slower), and
//! * **churn** — a static fleet, light membership churn, and heavy churn
//!   (per-round leave probability with 50% rejoin).
//!
//! Every cell shares the data, models, matching seeds, and a seeded
//! jittered link-latency model; only the timing and churn specs differ.
//! The deadline trails the *slowest* participant, so straggler tails cut
//! both ways: they shelter everyone else's messages (fewer late drops)
//! but stretch virtual time by the tail factor — reliability bought with
//! wall-clock. Churn instead removes senders outright: energy *not*
//! spent and accuracy lost relative to the static column.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::asyncgossip::run_async_gossip;
use skiptrain_core::experiment::{ChurnSpec, TimingSpec};
use skiptrain_core::presets::cifar_config;
use skiptrain_engine::{ComputeProfile, LatencyModel, BASE_TRAIN_TICKS};

const ACTIVATION: f64 = 0.5;

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.eval_every = base.rounds.min(8);
    let data = base.data.build(base.nodes, base.seed);

    banner(&format!(
        "async realism frontier: stragglers x churn ({} nodes, {} rounds, q={})",
        base.nodes, base.rounds, ACTIVATION
    ));

    let stragglers: Vec<(&str, ComputeProfile)> = vec![
        ("none", ComputeProfile::Homogeneous),
        (
            "mild 10%x2",
            ComputeProfile::StragglerTail {
                tail_prob: 0.1,
                tail_factor: 2.0,
            },
        ),
        (
            "heavy 30%x4",
            ComputeProfile::StragglerTail {
                tail_prob: 0.3,
                tail_factor: 4.0,
            },
        ),
    ];
    let churns: Vec<(&str, Option<ChurnSpec>)> = vec![
        ("static", None),
        (
            "light 2%",
            Some(ChurnSpec {
                leave_prob: 0.02,
                rejoin_prob: 0.5,
            }),
        ),
        (
            "heavy 10%",
            Some(ChurnSpec {
                leave_prob: 0.1,
                rejoin_prob: 0.5,
            }),
        ),
    ];
    // one jittered latency model for every cell: the band straddles the
    // deadline slack, so drops depend on each cell's timing spread
    let latency = LatencyModel::Seeded {
        mean_ticks: BASE_TRAIN_TICKS / 4,
        jitter: 0.8,
    };

    let mut labels = Vec::new();
    let mut results = Vec::new();
    for (straggler_label, compute) in &stragglers {
        for (churn_label, churn) in &churns {
            let mut cfg = base.clone();
            cfg.timing = TimingSpec {
                compute: compute.clone(),
                latency,
            };
            cfg.churn = *churn;
            cfg.name = format!("{}/async/{straggler_label}/{churn_label}", base.name);
            labels.push((*straggler_label, *churn_label));
            results.push(run_async_gossip(&cfg, &data, ACTIVATION));
        }
    }

    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(&results)
        .map(|((straggler, churn), r)| {
            vec![
                straggler.to_string(),
                churn.to_string(),
                pct(r.final_test.mean_accuracy),
                format!("{:.2}", r.total_training_wh),
                format!("{:.3}", r.total_comm_wh),
                r.events.late_messages.to_string(),
                r.events.leaves.to_string(),
                format!(
                    "{:.1}",
                    r.events.virtual_ticks as f64 / BASE_TRAIN_TICKS as f64
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "stragglers",
                "churn",
                "final acc%",
                "train Wh",
                "comm Wh",
                "late msgs",
                "leaves",
                "virtual rounds",
            ],
            &rows
        )
    );
    println!(
        "\nreading: the top-left cell is the lockstep assumption plus latency jitter\n\
         — the jitter band straddles the grace window, so a fair fraction of\n\
         messages time out (late edges fold their mixing weight back to self,\n\
         costing consensus but no receive energy). Moving down a column, straggler\n\
         tails stretch the deadline along with the slowest trainer: everyone\n\
         else's messages now clear the window easily, so drops fall — but virtual\n\
         time balloons by the tail factor, which is the real cost of waiting.\n\
         Moving right, churn removes senders for whole rounds: training and\n\
         communication energy fall together while the survivors keep mixing. On\n\
         both axes the fleet degrades gracefully — the event core never blocks a\n\
         round on a node that is absent or timed out."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ext_async_realism",
        "activation": ACTIVATION,
        "cells": labels
            .iter()
            .map(|(s, c)| format!("{s}/{c}"))
            .collect::<Vec<_>>(),
        "results": results,
    }));
}
