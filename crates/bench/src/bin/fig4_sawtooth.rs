//! Figure 4: the train/sync sawtooth — SkipTrain test accuracy evaluated
//! every 2 rounds near the end of training. Accuracy dips after training
//! batches (models biased toward local shards, std across nodes rises) and
//! recovers during synchronization batches (std falls).

use skiptrain_bench::{banner, render_table, HarnessArgs};
use skiptrain_core::experiment::AlgorithmSpec;
use skiptrain_core::presets::cifar_config;
use skiptrain_core::Schedule;

fn main() {
    let args = HarnessArgs::parse();
    let schedule = Schedule::new(4, 4);
    let mut cfg = cifar_config(args.scale, args.seed);
    args.apply(&mut cfg);
    cfg.name = "fig4-sawtooth".into();
    cfg.algorithm = AlgorithmSpec::SkipTrain(schedule);
    cfg.eval_every = 2; // the paper evaluates every 2 rounds here

    banner(&format!(
        "Figure 4: SkipTrain accuracy every 2 rounds ({} nodes, {} rounds, Γ=(4,4))",
        cfg.nodes, cfg.rounds
    ));
    let result = cfg.run();

    // Show the final ~32 rounds (the paper shows rounds 970–1000).
    let window = 16usize;
    let points = &result.test_curve;
    let tail = &points[points.len().saturating_sub(window)..];
    let rows: Vec<Vec<String>> = tail
        .iter()
        .map(|p| {
            let phase = if schedule.is_train_round(p.round.saturating_sub(1)) {
                "train"
            } else {
                "sync"
            };
            vec![
                p.round.to_string(),
                phase.to_string(),
                format!("{:.1}", p.mean_accuracy * 100.0),
                format!("{:.2}", p.std_accuracy * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["round", "phase", "mean acc%", "std acc pp"], &rows)
    );

    // Quantify the sawtooth: average accuracy and std at points that follow
    // sync rounds vs points that follow train rounds.
    let (mut sync_acc, mut train_acc) = (Vec::new(), Vec::new());
    let (mut sync_std, mut train_std) = (Vec::new(), Vec::new());
    let start = points.len() / 2; // use the converged half
    for p in &points[start..] {
        if schedule.is_train_round(p.round.saturating_sub(1)) {
            train_acc.push(p.mean_accuracy);
            train_std.push(p.std_accuracy);
        } else {
            sync_acc.push(p.mean_accuracy);
            sync_std.push(p.std_accuracy);
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    println!(
        "\nafter-sync:  acc {:.1}%  std {:.2} pp\nafter-train: acc {:.1}%  std {:.2} pp",
        mean(&sync_acc) * 100.0,
        mean(&sync_std) * 100.0,
        mean(&train_acc) * 100.0,
        mean(&train_std) * 100.0
    );
    println!(
        "paper shape: accuracy rises / std falls during sync rounds, opposite during training"
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "fig4_sawtooth",
        "result": result,
    }));
}
