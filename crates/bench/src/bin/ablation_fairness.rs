//! §5.1 ablation: does energy-aware scheduling bias the consensus model
//! toward high-energy devices?
//!
//! Under label sharding each node "owns" ~2 classes. SkipTrain-constrained
//! makes low-budget devices skip more training, so the consensus model may
//! represent their classes worse. This harness measures per-device-group
//! recall of owned classes and the budget–recall correlation, for both the
//! constrained and unconstrained algorithms (the unconstrained run is the
//! control: budgets equal → no systematic gap expected).

use skiptrain_bench::{banner, render_table, HarnessArgs};
use skiptrain_core::experiment::{AlgorithmSpec, EnergySpec};
use skiptrain_core::fairness::analyze;
use skiptrain_core::presets::cifar_config;
use skiptrain_core::Schedule;

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.eval_every = usize::MAX;
    let schedule = Schedule::new(4, 4);
    let data = base.data.build(base.nodes, base.seed);

    let mut reports = Vec::new();
    for constrained in [false, true] {
        let mut cfg = base.clone();
        if constrained {
            cfg.energy = EnergySpec::cifar10_constrained().scaled_for_rounds(cfg.rounds, 1000);
            cfg.algorithm = AlgorithmSpec::SkipTrainConstrained(schedule);
        } else {
            cfg.algorithm = AlgorithmSpec::SkipTrain(schedule);
        }
        cfg.name = format!("fairness-{}", cfg.algorithm.name());
        let result = cfg.run_on(&data);
        let report = analyze(&result, &cfg.model_kind(), &data.test, &cfg.energy);

        banner(&format!(
            "{} — consensus-model recall by device group",
            cfg.algorithm.name()
        ));
        let rows: Vec<Vec<String>> = report
            .groups
            .iter()
            .map(|g| {
                vec![
                    g.device.clone(),
                    g.nodes.to_string(),
                    g.mean_budget
                        .map(|b| format!("{b:.0}"))
                        .unwrap_or_else(|| "∞".into()),
                    format!("{:.1}%", g.mean_owned_class_recall * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["device", "nodes", "mean budget τ", "owned-class recall"],
                &rows
            )
        );
        println!(
            "group gap {:.1} pp   budget–recall correlation {}",
            report.group_gap * 100.0,
            report
                .budget_recall_correlation
                .map(|c| format!("{c:+.3}"))
                .unwrap_or_else(|| "n/a (unconstrained)".into())
        );
        reports.push(serde_json::json!({
            "constrained": constrained,
            "report": report,
        }));
    }

    println!(
        "\nreading (§5.1): a positive budget–recall correlation in the constrained run,\n\
         absent from the control, quantifies the bias toward high-energy devices the\n\
         paper flags as future work."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ablation_fairness",
        "runs": reports,
    }));
}
