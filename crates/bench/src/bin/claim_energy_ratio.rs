//! §1 headline claim: on 256-node D-PSGD over CIFAR-10, training consumes
//! ≈1.51 kWh while sharing + aggregation consume ≈7 Wh — a >200× gap. This
//! harness recomputes both sides from the energy substrate.

use skiptrain_bench::paper::{CLAIM_COMM_WH, CLAIM_MIN_RATIO, CLAIM_TRAINING_KWH};
use skiptrain_bench::{banner, render_table, HarnessArgs};
use skiptrain_energy::comm::CommEnergyModel;
use skiptrain_energy::device::fleet;
use skiptrain_energy::trace::{round_energy_wh, WorkloadSpec};

fn main() {
    let args = HarnessArgs::parse();
    let nodes = 256usize;
    let rounds = 1000usize;
    let degree = 6usize;
    let workload = WorkloadSpec::cifar10();

    let train_per_round: f64 = fleet(nodes)
        .iter()
        .map(|d| round_energy_wh(&d.profile(), &workload))
        .sum();
    let train_total = train_per_round * rounds as f64;

    let comm = CommEnergyModel::paper_fit();
    let comm_total: f64 = (0..rounds)
        .map(|_| comm.round_energy_wh(nodes, degree, workload.model_params))
        .sum();

    banner("§1 claim: training vs communication energy (256 nodes, 1000 rounds, 6-regular)");
    let rows = vec![
        vec![
            "training energy".to_string(),
            format!("{:.3} kWh", train_total / 1000.0),
            format!("{CLAIM_TRAINING_KWH} kWh"),
        ],
        vec![
            "communication + aggregation".to_string(),
            format!("{:.2} Wh", comm_total),
            format!("{CLAIM_COMM_WH} Wh"),
        ],
        vec![
            "ratio".to_string(),
            format!("{:.0}x", train_total / comm_total),
            format!(">{CLAIM_MIN_RATIO}x"),
        ],
    ];
    println!("{}", render_table(&["quantity", "derived", "paper"], &rows));

    assert!(
        train_total / comm_total > CLAIM_MIN_RATIO,
        "ratio claim failed"
    );
    println!("claim reproduced: training is >200x costlier than sharing+aggregation");

    args.maybe_write_json(&serde_json::json!({
        "experiment": "claim_energy_ratio",
        "training_wh": train_total,
        "comm_wh": comm_total,
        "ratio": train_total / comm_total,
    }));
}
