//! Figure 1: D-PSGD node-model accuracy vs the hypothetical per-round
//! all-reduce (the accuracy of the global average of all models), on the
//! CIFAR-10-like task over a 6-regular topology.
//!
//! The paper reports an ≈10-percentage-point gap at 256 nodes; the gap
//! shrinks at reduced node counts because one gossip neighborhood then
//! covers a larger fraction of the network.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::cifar_config;

fn main() {
    let args = HarnessArgs::parse();
    let mut cfg = cifar_config(args.scale, args.seed);
    args.apply(&mut cfg);
    cfg.name = "fig1-allreduce".into();
    cfg.record_mean_model = true;

    banner(&format!(
        "Figure 1: D-PSGD vs all-reduce ({} nodes, {} rounds, 6-regular)",
        cfg.nodes, cfg.rounds
    ));
    let result = cfg.run();

    let rows: Vec<Vec<String>> = result
        .test_curve
        .iter()
        .zip(result.mean_model_curve.iter())
        .map(|(p, (r, all_reduce_acc))| {
            debug_assert_eq!(p.round, *r);
            vec![
                p.round.to_string(),
                pct(p.mean_accuracy),
                pct(*all_reduce_acc),
                format!("{:+.1}", (*all_reduce_acc - p.mean_accuracy) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["round", "d-psgd acc%", "all-reduce acc%", "gap pp"],
            &rows
        )
    );

    let final_gap = result
        .mean_model_curve
        .last()
        .map(|(_, a)| (a - result.final_test.mean_accuracy) * 100.0)
        .unwrap_or(0.0);
    println!(
        "final: d-psgd {}%  all-reduce {}%  gap {final_gap:+.1} pp (paper at 256 nodes: ≈ +10 pp)",
        pct(result.final_test.mean_accuracy),
        pct(result
            .mean_model_curve
            .last()
            .map(|(_, a)| *a)
            .unwrap_or(0.0)),
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "fig1_allreduce",
        "result": result,
    }));
}
