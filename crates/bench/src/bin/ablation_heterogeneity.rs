//! Heterogeneity ablation (§4.7 extended): how the SkipTrain-vs-D-PSGD gap
//! depends on data heterogeneity, sweeping from IID through Dirichlet(α) to
//! the paper's 2-shard extreme.
//!
//! The paper observes its accuracy gains are largest under the pathological
//! CIFAR-10 sharding and small on the milder FEMNIST split; this harness
//! maps the whole curve.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::experiment::{AlgorithmSpec, DataSpec};
use skiptrain_core::presets::cifar_config;
use skiptrain_core::Schedule;
use skiptrain_data::stats::label_skew;
use skiptrain_data::Partition;

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.eval_every = usize::MAX;

    let (dim, spn, test, sep, noise, modes) = match &base.data {
        DataSpec::CifarLike {
            feature_dim,
            samples_per_node,
            test_samples,
            separation,
            noise,
            modes_per_class,
            ..
        } => (
            *feature_dim,
            *samples_per_node,
            *test_samples,
            *separation,
            *noise,
            *modes_per_class,
        ),
        _ => unreachable!("cifar preset"),
    };
    let make_data = |partition: Partition| DataSpec::CifarPartitioned {
        feature_dim: dim,
        samples_per_node: spn,
        test_samples: test,
        partition,
        separation: sep,
        noise,
        modes_per_class: modes,
    };

    let settings: Vec<(String, DataSpec)> = vec![
        ("iid".into(), make_data(Partition::Iid)),
        (
            "dirichlet(1.0)".into(),
            make_data(Partition::Dirichlet { alpha: 1.0 }),
        ),
        (
            "dirichlet(0.2)".into(),
            make_data(Partition::Dirichlet { alpha: 0.2 }),
        ),
        ("2-shard (paper)".into(), base.data.clone()),
    ];

    banner(&format!(
        "heterogeneity sweep ({} nodes, {} rounds, Γ=(4,4))",
        base.nodes, base.rounds
    ));
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (label, data_spec) in settings {
        let mut cfg = base.clone();
        cfg.data = data_spec;
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let skew = label_skew(&data.node_datasets);

        cfg.algorithm = AlgorithmSpec::DPsgd;
        let dpsgd = cfg.run_on(&data);
        cfg.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(4, 4));
        let skiptrain = cfg.run_on(&data);

        let gap = (skiptrain.final_test.mean_accuracy - dpsgd.final_test.mean_accuracy) * 100.0;
        rows.push(vec![
            label.clone(),
            format!("{skew:.3}"),
            pct(dpsgd.final_test.mean_accuracy),
            pct(skiptrain.final_test.mean_accuracy),
            format!("{gap:+.1}"),
        ]);
        json_rows.push(serde_json::json!({
            "setting": label,
            "label_skew": skew,
            "dpsgd_acc": dpsgd.final_test.mean_accuracy,
            "skiptrain_acc": skiptrain.final_test.mean_accuracy,
        }));
    }
    println!(
        "{}",
        render_table(
            &[
                "partition",
                "label skew (TV)",
                "d-psgd acc%",
                "skiptrain acc%",
                "gap pp"
            ],
            &rows
        )
    );
    println!(
        "\nreading: SkipTrain's advantage should grow with label skew — synchronization\n\
         rounds pay off exactly when local training biases models apart."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ablation_heterogeneity",
        "rows": json_rows,
    }));
}
