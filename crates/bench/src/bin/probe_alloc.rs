//! Allocation bisector for the dynamic-topology round loop: runs the
//! `dynamic_topology_round` scenario's pieces in isolation and prints the
//! per-step heap bytes of each, so a regression in the pinned 0 B gate
//! can be attributed to graph generation, mixing regeneration, or the
//! engine round itself without guesswork.

use skiptrain_bench::perf::{allocated_bytes, CountingAllocator};
use skiptrain_data::synth::{MixtureSpec, MixtureTask};
use skiptrain_engine::executor::{RoundAction, Simulation, SimulationConfig};
use skiptrain_engine::transport::ModelCodec;
use skiptrain_engine::CompressionPolicy;
use skiptrain_nn::zoo::ModelKind;
use skiptrain_topology::{Graph, MixingMatrix, ScheduledTopology, TopologySchedule};
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn build_sim(graph: Graph, seed: u64) -> Simulation {
    let n = graph.len();
    let mut config = SimulationConfig::minimal(seed, 16, 5, 0.5);
    config.compression = CompressionPolicy::Uniform(ModelCodec::TopK { k: 64 });
    config.feedback_beta = Some(1.0);
    config.feedback_replica_cap = Some(4);
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 10,
            feature_dim: 32,
            modes_per_class: 2,
            separation: 1.0,
            noise: 0.9,
        },
        seed,
    );
    let datasets = (0..n).map(|i| task.sample(60, i as u64)).collect();
    let models = (0..n)
        .map(|i| {
            ModelKind::Mlp {
                dims: vec![32, 24, 10],
            }
            .build(seed + i as u64)
        })
        .collect();
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    Simulation::new(models, datasets, graph, mixing, config)
}

fn probe(name: &str, warmup: usize, iters: usize, mut step: impl FnMut()) {
    for _ in 0..warmup {
        step();
    }
    let before = allocated_bytes();
    for _ in 0..iters {
        step();
    }
    let per_step = (allocated_bytes() - before) / iters as u64;
    println!("{name:40} {per_step:8} bytes/step");
}

fn main() {
    let n = 24;
    let base = Graph::complete(n);
    let actions = vec![RoundAction::SyncOnly; n];

    let mut sched = ScheduledTopology::new(
        base.clone(),
        TopologySchedule::EdgeDropout { p: 0.7, seed: 11 },
    );
    let mut round = 0usize;
    probe("mixing_for_round only", 10, 200, || {
        black_box(sched.mixing_for_round(round));
        round += 1;
    });

    let mut sim = build_sim(base.clone(), 5);
    probe("sim round, static mixing", 10, 200, || {
        sim.try_run_round(black_box(&actions)).expect("round runs");
    });

    let mut sim = build_sim(base.clone(), 5);
    let mut sched = ScheduledTopology::new(
        base.clone(),
        TopologySchedule::EdgeDropout { p: 0.7, seed: 11 },
    );
    probe("sim round with scheduled mixing", 10, 200, || {
        let mixing = sched.mixing_for_round(sim.round());
        sim.try_run_round_with_mixing(black_box(&actions), mixing)
            .expect("scheduled graph matches the fleet");
    });
}
