//! Table 3: training energy and average test accuracy for SkipTrain vs
//! D-PSGD across both datasets × three topologies.
//!
//! Accuracy is measured by simulation at the chosen scale. Energy is
//! reported twice: measured at the simulated scale, and the exact paper-
//! scale value (256 nodes, Table-1 rounds) computed analytically from the
//! energy substrate — training energy depends only on the schedule and the
//! fleet, not on the learning dynamics. The 12 runs execute as one parallel
//! [`Campaign`] over two shared data bundles.

use skiptrain_bench::paper::TABLE3;
use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::{cifar_config, femnist_config};
use skiptrain_core::{AlgorithmSpec, Campaign, EnergySpec, Schedule, TopologySpec};
use skiptrain_energy::device::fleet;
use skiptrain_energy::trace::round_energy_wh;

/// Paper-scale training energy for a schedule: executed training rounds ×
/// full-fleet per-round energy.
fn paper_scale_energy(schedule: Schedule, paper_rounds: usize, energy: &EnergySpec) -> f64 {
    let per_round: f64 = fleet(256)
        .iter()
        .map(|d| round_energy_wh(&d.profile(), &energy.workload))
        .sum();
    schedule.count_train_rounds(paper_rounds) as f64 * per_round
}

fn main() {
    let args = HarnessArgs::parse();

    // One run per (dataset, algorithm, degree), in row-assembly order.
    let mut configs = Vec::new();
    let mut row_specs = Vec::new();
    for (dataset, paper_rounds) in [("CIFAR-10", 1000usize), ("FEMNIST", 3000)] {
        for algo_is_skiptrain in [true, false] {
            row_specs.push((dataset, paper_rounds, algo_is_skiptrain));
            for degree in [6usize, 8, 10] {
                let mut cfg = match dataset {
                    "CIFAR-10" => cifar_config(args.scale, args.seed),
                    _ => femnist_config(args.scale, args.seed),
                };
                args.apply(&mut cfg);
                cfg.topology = TopologySpec::Regular { degree };
                let schedule = Schedule::tuned_for_degree(degree);
                cfg.algorithm = if algo_is_skiptrain {
                    AlgorithmSpec::SkipTrain(schedule)
                } else {
                    AlgorithmSpec::DPsgd
                };
                cfg.name = format!("table3-{dataset}-{degree}-{}", cfg.algorithm.name());
                cfg.eval_every = usize::MAX; // final accuracy only
                configs.push(cfg);
            }
        }
    }

    let energy_specs: Vec<EnergySpec> = configs.iter().map(|c| c.energy.clone()).collect();
    let results = Campaign::from_configs(configs).run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let mut rows = Vec::new();
    for (row, ((dataset, paper_rounds, algo_is_skiptrain), group)) in
        row_specs.iter().zip(results.chunks(3)).enumerate()
    {
        let mut acc = Vec::new();
        let mut measured_wh = Vec::new();
        let mut paper_wh = Vec::new();
        for (col, (degree, r)) in [6usize, 8, 10].iter().zip(group).enumerate() {
            acc.push(pct(r.final_test.mean_accuracy));
            measured_wh.push(format!("{:.1}", r.total_training_wh));
            let sched = if *algo_is_skiptrain {
                Schedule::tuned_for_degree(*degree)
            } else {
                Schedule::dpsgd()
            };
            paper_wh.push(format!(
                "{:.1}",
                paper_scale_energy(sched, *paper_rounds, &energy_specs[row * 3 + col])
            ));
        }
        let paper_row = TABLE3
            .iter()
            .find(|r| r.dataset == *dataset && (r.algorithm == "SkipTrain") == *algo_is_skiptrain)
            .unwrap();
        rows.push(vec![
            if *algo_is_skiptrain {
                "SkipTrain"
            } else {
                "D-PSGD"
            }
            .to_string(),
            dataset.to_string(),
            format!(
                "{} / {} / {}",
                measured_wh[0], measured_wh[1], measured_wh[2]
            ),
            format!("{} / {} / {}", paper_wh[0], paper_wh[1], paper_wh[2]),
            format!(
                "{:.2} / {:.2} / {:.2}",
                paper_row.energy_wh[0], paper_row.energy_wh[1], paper_row.energy_wh[2]
            ),
            format!("{} / {} / {}", acc[0], acc[1], acc[2]),
            format!(
                "{} / {} / {}",
                paper_row.accuracy_pct[0], paper_row.accuracy_pct[1], paper_row.accuracy_pct[2]
            ),
        ]);
    }

    banner("Table 3 (columns are 6-regular / 8-regular / 10-regular)");
    println!(
        "{}",
        render_table(
            &[
                "algorithm",
                "dataset",
                "measured Wh",
                "256-node Wh",
                "paper Wh",
                "measured acc%",
                "paper acc%",
            ],
            &rows
        )
    );
    println!(
        "shape checks: SkipTrain energy = ½ D-PSGD (6/8-regular) and ⅔ (10-regular);\n\
         SkipTrain accuracy ≥ D-PSGD on the sharded dataset; accuracy grows with degree."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "table3_summary",
        "results": results,
    }));
}
