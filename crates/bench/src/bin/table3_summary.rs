//! Table 3: training energy and average test accuracy for SkipTrain vs
//! D-PSGD across both datasets × three topologies.
//!
//! Accuracy is measured by simulation at the chosen scale. Energy is
//! reported twice: measured at the simulated scale, and the exact paper-
//! scale value (256 nodes, Table-1 rounds) computed analytically from the
//! energy substrate — training energy depends only on the schedule and the
//! fleet, not on the learning dynamics.

use skiptrain_bench::paper::TABLE3;
use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::experiment::{run_experiment_on, AlgorithmSpec, EnergySpec};
use skiptrain_core::presets::{cifar_config, femnist_config};
use skiptrain_core::{Schedule, TopologySpec};
use skiptrain_energy::device::fleet;
use skiptrain_energy::trace::round_energy_wh;

/// Paper-scale training energy for a schedule: executed training rounds ×
/// full-fleet per-round energy.
fn paper_scale_energy(schedule: Schedule, paper_rounds: usize, energy: &EnergySpec) -> f64 {
    let per_round: f64 =
        fleet(256).iter().map(|d| round_energy_wh(&d.profile(), &energy.workload)).sum();
    schedule.count_train_rounds(paper_rounds) as f64 * per_round
}

fn main() {
    let args = HarnessArgs::parse();
    let mut rows = Vec::new();
    let mut results = Vec::new();

    for (dataset, paper_rounds) in [("CIFAR-10", 1000usize), ("FEMNIST", 3000)] {
        for algo_is_skiptrain in [true, false] {
            let mut acc = Vec::new();
            let mut measured_wh = Vec::new();
            let mut paper_wh = Vec::new();
            for degree in [6usize, 8, 10] {
                let mut cfg = match dataset {
                    "CIFAR-10" => cifar_config(args.scale, args.seed),
                    _ => femnist_config(args.scale, args.seed),
                };
                args.apply(&mut cfg);
                cfg.topology = TopologySpec::Regular { degree };
                let schedule = Schedule::tuned_for_degree(degree);
                cfg.algorithm = if algo_is_skiptrain {
                    AlgorithmSpec::SkipTrain(schedule)
                } else {
                    AlgorithmSpec::DPsgd
                };
                cfg.name = format!("table3-{dataset}-{degree}-{}", cfg.algorithm.name());
                cfg.eval_every = usize::MAX; // final accuracy only
                let data = cfg.data.build(cfg.nodes, cfg.seed);
                let r = run_experiment_on(&cfg, &data);
                acc.push(pct(r.final_test.mean_accuracy));
                measured_wh.push(format!("{:.1}", r.total_training_wh));
                let sched =
                    if algo_is_skiptrain { schedule } else { Schedule::dpsgd() };
                paper_wh.push(format!(
                    "{:.1}",
                    paper_scale_energy(sched, paper_rounds, &cfg.energy)
                ));
                results.push(r);
            }
            let paper_row = TABLE3
                .iter()
                .find(|r| {
                    r.dataset == dataset
                        && (r.algorithm == "SkipTrain") == algo_is_skiptrain
                })
                .unwrap();
            rows.push(vec![
                if algo_is_skiptrain { "SkipTrain" } else { "D-PSGD" }.to_string(),
                dataset.to_string(),
                format!("{} / {} / {}", measured_wh[0], measured_wh[1], measured_wh[2]),
                format!("{} / {} / {}", paper_wh[0], paper_wh[1], paper_wh[2]),
                format!(
                    "{:.2} / {:.2} / {:.2}",
                    paper_row.energy_wh[0], paper_row.energy_wh[1], paper_row.energy_wh[2]
                ),
                format!("{} / {} / {}", acc[0], acc[1], acc[2]),
                format!(
                    "{} / {} / {}",
                    paper_row.accuracy_pct[0], paper_row.accuracy_pct[1], paper_row.accuracy_pct[2]
                ),
            ]);
        }
    }

    banner("Table 3 (columns are 6-regular / 8-regular / 10-regular)");
    println!(
        "{}",
        render_table(
            &[
                "algorithm",
                "dataset",
                "measured Wh",
                "256-node Wh",
                "paper Wh",
                "measured acc%",
                "paper acc%",
            ],
            &rows
        )
    );
    println!(
        "shape checks: SkipTrain energy = ½ D-PSGD (6/8-regular) and ⅔ (10-regular);\n\
         SkipTrain accuracy ≥ D-PSGD on the sharded dataset; accuracy grows with degree."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "table3_summary",
        "results": results,
    }));
}
