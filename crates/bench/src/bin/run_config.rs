//! Config-driven experiment runner: execute any [`ExperimentConfig`] — or a
//! JSON array of them, in parallel — from a file and write full results as
//! JSON. The integration point for external sweep tooling.
//!
//! ```sh
//! # print a template config
//! cargo run -p skiptrain-bench --release --bin run_config -- --template > exp.json
//! # run it
//! cargo run -p skiptrain-bench --release --bin run_config -- exp.json -o result.json
//! # run a batch of configs (JSON array) on 8 worker threads
//! cargo run -p skiptrain-bench --release --bin run_config -- batch.json --threads 8 -o results.json
//! # fault-tolerant batch with checkpoint/resume and per-cell retry
//! cargo run -p skiptrain-bench --release --bin run_config -- batch.json --resume batch.journal --retries 3 -o results.json
//! ```
//!
//! Configurations are validated up front: an invalid config fails fast with
//! a typed diagnostic (and the offending array index) instead of panicking
//! mid-run. With `--resume` or `--retries` the batch runs resiliently
//! (`Campaign::run_resilient`): failed cells are reported and retried
//! instead of aborting the batch, completed cells are journaled, and a
//! re-run against the same journal skips them.

use skiptrain_core::presets::{cifar_config, Scale};
use skiptrain_core::{AlgorithmSpec, Campaign, ExperimentConfig, RetrySpec, Schedule};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--template") {
        let mut template = cifar_config(Scale::Quick, 42);
        template.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(4, 4));
        template.name = "my-experiment".into();
        println!("{}", serde_json::to_string_pretty(&template).unwrap());
        return;
    }

    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut resume: Option<String> = None;
    let mut retries: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => output = it.next(),
            "--threads" => {
                threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --threads needs a positive integer");
                    std::process::exit(2);
                }))
            }
            "--resume" => {
                resume = Some(it.next().unwrap_or_else(|| {
                    eprintln!("error: --resume needs a journal path");
                    std::process::exit(2);
                }))
            }
            "--retries" => {
                retries = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --retries needs a non-negative integer");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: run_config <config.json> [--threads N] [--resume journal.jsonl] [--retries N] [-o result.json] | --template\n\
                     <config.json> holds one ExperimentConfig or an array of them\n\
                     --resume   journal completed cells to the given JSONL file and skip\n\
                                cells it already holds (checkpoint/resume)\n\
                     --retries  extra attempts per failed cell (deterministic reseed)"
                );
                return;
            }
            path => input = Some(path.to_string()),
        }
    }
    let Some(path) = input else {
        eprintln!("error: no config file given (try --template)");
        std::process::exit(2);
    };

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    // A batch file is a JSON array of configs; a single config runs as a
    // one-element campaign. Dispatch on the leading token so a malformed
    // batch reports its own parse error, not the single-config one.
    let batched = text.trim_start().starts_with('[');
    let configs: Vec<ExperimentConfig> = if batched {
        serde_json::from_str::<Vec<ExperimentConfig>>(&text).unwrap_or_else(|e| {
            eprintln!("error: invalid config batch: {e}");
            std::process::exit(2);
        })
    } else {
        match serde_json::from_str::<ExperimentConfig>(&text) {
            Ok(cfg) => vec![cfg],
            Err(e) => {
                eprintln!("error: invalid config: {e}");
                std::process::exit(2);
            }
        }
    };

    let mut campaign = Campaign::from_configs(configs);
    if let Some(threads) = threads {
        campaign = campaign.threads(threads);
    }
    if let Err(e) = campaign.validate() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    for cfg in campaign.configs() {
        eprintln!(
            "queued '{}': {} nodes, {} rounds, {} on {:?}",
            cfg.name,
            cfg.nodes,
            cfg.rounds,
            cfg.algorithm.name(),
            cfg.topology
        );
    }

    campaign = campaign.on_result(|run, result| {
        eprintln!(
            "run #{run} '{}' finished: acc {:.2}% (±{:.2}), training {:.2} Wh",
            result.name,
            result.final_test.mean_accuracy * 100.0,
            result.final_test.std_accuracy * 100.0,
            result.total_training_wh,
        );
    });

    // --resume / --retries switch to the fault-tolerant path; the plain
    // invocation keeps the strict all-or-nothing behavior.
    let resilient = resume.is_some() || retries.is_some();
    let (results, failed) = if resilient {
        if let Some(journal) = &resume {
            campaign = campaign.with_checkpoint(journal);
        }
        campaign = campaign
            .retry(RetrySpec::attempts(retries.unwrap_or(0) + 1))
            .on_failure(|failure| eprintln!("FAILED {failure}"));
        let report = campaign.run_resilient().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        if report.restored > 0 {
            eprintln!(
                "restored {} completed cell(s) from the journal",
                report.restored
            );
        }
        let failed = !report.failures.is_empty();
        (report.results, failed)
    } else {
        let results = campaign.run().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        (results.into_iter().map(Some).collect(), false)
    };

    for result in results.iter().flatten() {
        println!(
            "{}: final accuracy {:.2}% (±{:.2}), training energy {:.2} Wh, comm {:.3} Wh",
            result.name,
            result.final_test.mean_accuracy * 100.0,
            result.final_test.std_accuracy * 100.0,
            result.total_training_wh,
            result.total_comm_wh
        );
    }
    if let Some(out) = output {
        let rendered = if batched {
            serde_json::to_string_pretty(&results).unwrap()
        } else {
            serde_json::to_string_pretty(&results[0]).unwrap()
        };
        std::fs::write(&out, rendered).unwrap_or_else(|e| {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {out}");
    }
    if failed {
        eprintln!("error: some cells failed every attempt (see FAILED lines above)");
        std::process::exit(1);
    }
}
