//! Config-driven experiment runner: execute any [`ExperimentConfig`] from a
//! JSON file and write the full result as JSON — the integration point for
//! external sweep tooling.
//!
//! ```sh
//! # print a template config
//! cargo run -p skiptrain-bench --release --bin run_config -- --template > exp.json
//! # run it
//! cargo run -p skiptrain-bench --release --bin run_config -- exp.json -o result.json
//! ```

use skiptrain_core::experiment::{run_experiment, AlgorithmSpec, ExperimentConfig};
use skiptrain_core::presets::{cifar_config, Scale};
use skiptrain_core::Schedule;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--template") {
        let mut template = cifar_config(Scale::Quick, 42);
        template.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(4, 4));
        template.name = "my-experiment".into();
        println!("{}", serde_json::to_string_pretty(&template).unwrap());
        return;
    }

    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => output = it.next(),
            "--help" | "-h" => {
                eprintln!("usage: run_config <config.json> [-o result.json] | --template");
                return;
            }
            path => input = Some(path.to_string()),
        }
    }
    let Some(path) = input else {
        eprintln!("error: no config file given (try --template)");
        std::process::exit(2);
    };

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let cfg: ExperimentConfig = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: invalid config: {e}");
        std::process::exit(2);
    });

    eprintln!(
        "running '{}': {} nodes, {} rounds, {} on {:?}",
        cfg.name,
        cfg.nodes,
        cfg.rounds,
        cfg.algorithm.name(),
        cfg.topology
    );
    let result = run_experiment(&cfg);
    println!(
        "final accuracy {:.2}% (±{:.2}), training energy {:.2} Wh, comm {:.3} Wh",
        result.final_test.mean_accuracy * 100.0,
        result.final_test.std_accuracy * 100.0,
        result.total_training_wh,
        result.total_comm_wh
    );
    if let Some(out) = output {
        std::fs::write(&out, serde_json::to_string_pretty(&result).unwrap()).unwrap_or_else(
            |e| {
                eprintln!("error: cannot write {out}: {e}");
                std::process::exit(1);
            },
        );
        eprintln!("wrote {out}");
    }
}
