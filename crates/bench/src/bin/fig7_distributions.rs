//! Figure 7: class distributions of the first 10 nodes under the CIFAR-10
//! 2-shard partition (extreme label skew) vs the FEMNIST writer partition
//! (near-homogeneous labels), as dot-plot data plus an ASCII rendering.

use skiptrain_bench::{banner, HarnessArgs};
use skiptrain_core::presets::{cifar_config, femnist_config};
use skiptrain_data::stats::{dot_plot_rows, label_skew, mean_distinct_classes};

fn render_ascii(hists: &[Vec<usize>], max_classes: usize) {
    let max_count = hists.iter().flatten().copied().max().unwrap_or(1).max(1);
    println!(
        "      class -> {}",
        (0..max_classes)
            .map(|c| format!("{c:>3}"))
            .collect::<String>()
    );
    for (node, hist) in hists.iter().enumerate() {
        let cells: String = hist
            .iter()
            .take(max_classes)
            .map(|&count| {
                let sym = match (count * 4).div_ceil(max_count) {
                    0 => "  .",
                    1 => "  o",
                    2 => "  O",
                    _ => "  @",
                };
                sym.to_string()
            })
            .collect();
        println!("node {node:>2}       {cells}");
    }
}

fn main() {
    let args = HarnessArgs::parse();

    let cifar = cifar_config(args.scale, args.seed);
    let cifar_data = cifar.data.build(cifar.nodes, cifar.seed);
    banner("Figure 7 (left): CIFAR-10-like, 2-shard partition, first 10 nodes");
    let cifar_hists: Vec<Vec<usize>> = cifar_data
        .node_datasets
        .iter()
        .take(10)
        .map(|d| d.class_histogram())
        .collect();
    render_ascii(&cifar_hists, 10);
    println!(
        "mean distinct classes/node: {:.2} (10 available)   label skew (TV): {:.3}",
        mean_distinct_classes(&cifar_data.node_datasets),
        label_skew(&cifar_data.node_datasets)
    );

    let femnist = femnist_config(args.scale, args.seed);
    let femnist_data = femnist.data.build(femnist.nodes, femnist.seed);
    banner("Figure 7 (right): FEMNIST-like, writer partition, first 10 nodes (first 20 classes)");
    let femnist_hists: Vec<Vec<usize>> = femnist_data
        .node_datasets
        .iter()
        .take(10)
        .map(|d| d.class_histogram())
        .collect();
    render_ascii(&femnist_hists, 20);
    println!(
        "mean distinct classes/node: {:.2} (47 available)   label skew (TV): {:.3}",
        mean_distinct_classes(&femnist_data.node_datasets),
        label_skew(&femnist_data.node_datasets)
    );

    println!(
        "\npaper shape: CIFAR-10 nodes hold ~2 classes each; FEMNIST nodes cover most classes"
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "fig7_distributions",
        "cifar_rows": dot_plot_rows(&cifar_data.node_datasets, 10),
        "femnist_rows": dot_plot_rows(&femnist_data.node_datasets, 10),
        "cifar_skew": label_skew(&cifar_data.node_datasets),
        "femnist_skew": label_skew(&femnist_data.node_datasets),
    }));
}
