//! §5.3 extension: asynchronous pairwise-gossip SkipTrain vs the paper's
//! synchronous algorithms at matched expected training energy.
//!
//! The async variant needs no global round barrier: nodes train with
//! probability q per tick and average pairwise over a random matching. This
//! harness compares it against synchronous SkipTrain (Γ = (4,4), same 50 %
//! training fraction at q = 0.5) and D-PSGD.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::asyncgossip::run_async_gossip;
use skiptrain_core::experiment::AlgorithmSpec;
use skiptrain_core::presets::cifar_config;
use skiptrain_core::Schedule;

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.eval_every = 8;
    let data = base.data.build(base.nodes, base.seed);

    banner(&format!(
        "async pairwise gossip vs synchronous ({} nodes, {} rounds)",
        base.nodes, base.rounds
    ));

    let mut rows = Vec::new();
    let mut results = Vec::new();

    let mut dpsgd_cfg = base.clone();
    dpsgd_cfg.algorithm = AlgorithmSpec::DPsgd;
    let dpsgd = dpsgd_cfg.run_on(&data);
    rows.push(summary_row("d-psgd (sync)", &dpsgd));
    results.push(dpsgd);

    let mut st_cfg = base.clone();
    st_cfg.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(4, 4));
    let skiptrain = st_cfg.run_on(&data);
    rows.push(summary_row("skiptrain (4,4) sync", &skiptrain));
    results.push(skiptrain);

    for q in [0.5f64, 0.25] {
        let r = run_async_gossip(&base, &data, q);
        rows.push(summary_row(&format!("async gossip q={q}"), &r));
        results.push(r);
    }

    println!(
        "{}",
        render_table(
            &[
                "algorithm",
                "final acc%",
                "std",
                "train energy Wh",
                "train events"
            ],
            &rows
        )
    );
    println!(
        "\nreading: at q = 0.5 the async variant spends the same expected training\n\
         energy as SkipTrain(4,4) but mixes via one partner per tick instead of all\n\
         d neighbors, so consensus forms more slowly (higher std) — quantifying the\n\
         price of dropping the synchronization barrier that §5.3 discusses."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ext_async_gossip",
        "results": results,
    }));
}

fn summary_row(label: &str, r: &skiptrain_core::ExperimentResult) -> Vec<String> {
    vec![
        label.to_string(),
        pct(r.final_test.mean_accuracy),
        pct(r.final_test.std_accuracy),
        format!("{:.2}", r.total_training_wh),
        r.node_train_events.to_string(),
    ]
}
