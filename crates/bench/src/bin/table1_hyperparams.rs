//! Table 1: simulation hyperparameters — the paper's nominal values next to
//! what this reproduction uses at each scale (and why they differ).

use skiptrain_bench::{banner, render_table, HarnessArgs};
use skiptrain_core::presets::{cifar_config, femnist_config, Scale};

fn main() {
    let args = HarnessArgs::parse();
    for scale in [Scale::Quick, Scale::Medium, Scale::Paper] {
        let cifar = cifar_config(scale, args.seed);
        let femnist = femnist_config(scale, args.seed);
        banner(&format!(
            "Table 1 at scale {scale:?} (paper values in parentheses)"
        ));
        let rows = vec![
            vec![
                "η (learning rate)".into(),
                format!("{} (0.1)", cifar.learning_rate),
                format!("{} (0.1)", femnist.learning_rate),
            ],
            vec![
                "|ξ| (batch size)".into(),
                format!("{} (32)", cifar.batch_size),
                format!("{} (16)", femnist.batch_size),
            ],
            vec![
                "E (local steps)".into(),
                format!("{} (20)", cifar.local_steps),
                format!("{} (7)", femnist.local_steps),
            ],
            vec![
                "|x| (model size, energy accounting)".into(),
                format!("{} (89834)", cifar.energy.workload.model_params),
                format!("{} (1690046)", femnist.energy.workload.model_params),
            ],
            vec![
                "T (total rounds)".into(),
                format!("{} (1000)", cifar.rounds),
                format!("{} (3000)", femnist.rounds),
            ],
            vec![
                "nodes".into(),
                format!("{} (256)", cifar.nodes),
                format!("{} (256)", femnist.nodes),
            ],
        ];
        println!(
            "{}",
            render_table(&["hyperparameter", "CIFAR-10-like", "FEMNIST-like"], &rows)
        );
    }
    println!(
        "\nη differs from the paper because the synthetic Gaussian-mixture task needs a\n\
         different step size to sit in the same drift-vs-mixing regime; |x| is the\n\
         nominal Table-1 value used by the energy model (the simulated MLPs are smaller)."
    );
}
