//! Figure 3: the (Γ_train, Γ_sync) ∈ {1..4}² grid search — validation
//! accuracy heatmaps for the 6/8/10-regular topologies plus the energy
//! heatmap, with the paper's grids printed alongside.

use skiptrain_bench::paper::{
    FIG3_ENERGY_WH, FIG3_VAL_ACC_10REG, FIG3_VAL_ACC_6REG, FIG3_VAL_ACC_8REG,
};
use skiptrain_bench::{banner, render_table, HarnessArgs};
use skiptrain_core::presets::cifar_config;
use skiptrain_core::sweep::grid_search;
use skiptrain_core::{Schedule, TopologySpec};
use skiptrain_energy::device::fleet;
use skiptrain_energy::trace::round_energy_wh;

fn main() {
    let args = HarnessArgs::parse();
    let gammas = [1usize, 2, 3, 4];
    let mut summaries = Vec::new();

    for (degree, paper_grid) in [
        (6usize, FIG3_VAL_ACC_6REG),
        (8, FIG3_VAL_ACC_8REG),
        (10, FIG3_VAL_ACC_10REG),
    ] {
        let mut base = cifar_config(args.scale, args.seed);
        args.apply(&mut base);
        base.topology = TopologySpec::Regular { degree };
        banner(&format!(
            "Figure 3: {degree}-regular validation grid ({} nodes, {} rounds)",
            base.nodes, base.rounds
        ));
        let sweep = grid_search(&base, &gammas);

        let mut rows = Vec::new();
        for &gs in &gammas {
            let mut row = vec![format!("Γsync={gs}")];
            for &gt in &gammas {
                let cell = sweep.cell(gt, gs).expect("cell exists");
                row.push(format!(
                    "{:.1} ({:.1})",
                    cell.val_accuracy * 100.0,
                    paper_grid[gs - 1][gt - 1]
                ));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &[
                    "measured (paper) %",
                    "Γtrain=1",
                    "Γtrain=2",
                    "Γtrain=3",
                    "Γtrain=4"
                ],
                &rows
            )
        );
        let best = sweep.best();
        println!(
            "best: Γtrain={} Γsync={} at {:.1}% val accuracy (paper best for {degree}-regular: {})",
            best.gamma_train,
            best.gamma_sync,
            best.val_accuracy * 100.0,
            match degree {
                6 => "(4,4) at 66.1%",
                8 => "(3,3) at 66.3%",
                _ => "(4,2) at 66.8%",
            }
        );
        summaries.push(serde_json::json!({
            "degree": degree,
            "cells": sweep.cells,
            "best": [best.gamma_train, best.gamma_sync],
        }));
    }

    // Energy heatmap: training energy depends only on T_train (§4.3), so it
    // is computed analytically for the paper's 256-node, 1000-round setting.
    banner("Figure 3 (right): energy heatmap, 256 nodes × 1000 rounds, Wh");
    let per_round: f64 = fleet(256)
        .iter()
        .map(|d| {
            round_energy_wh(
                &d.profile(),
                &skiptrain_energy::trace::WorkloadSpec::cifar10(),
            )
        })
        .sum();
    let mut rows = Vec::new();
    for &gs in &gammas {
        let mut row = vec![format!("Γsync={gs}")];
        for &gt in &gammas {
            let schedule = Schedule::new(gt, gs);
            let wh = schedule.count_train_rounds(1000) as f64 * per_round;
            row.push(format!("{:.0} ({:.0})", wh, FIG3_ENERGY_WH[gs - 1][gt - 1]));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "measured (paper) Wh",
                "Γtrain=1",
                "Γtrain=2",
                "Γtrain=3",
                "Γtrain=4"
            ],
            &rows
        )
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "fig3_grid",
        "grids": summaries,
    }));
}
