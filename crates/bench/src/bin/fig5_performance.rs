//! Figure 5 + the accuracy columns of Table 3: SkipTrain vs D-PSGD test
//! accuracy over rounds and over consumed training energy, on both datasets
//! and all three topology degrees.
//!
//! All 12 runs execute as one parallel [`Campaign`]; runs over the same
//! dataset share one materialized bundle.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::{cifar_config, femnist_config};
use skiptrain_core::{AlgorithmSpec, Campaign, ExperimentConfig, Schedule};

fn main() {
    let args = HarnessArgs::parse();

    let mut configs: Vec<ExperimentConfig> = Vec::new();
    let mut cells = Vec::new();
    for dataset in ["cifar", "femnist"] {
        for degree in [6usize, 8, 10] {
            let mut base = match dataset {
                "cifar" => cifar_config(args.scale, args.seed),
                _ => femnist_config(args.scale, args.seed),
            };
            args.apply(&mut base);
            base.topology = skiptrain_core::TopologySpec::Regular { degree };
            let schedule = Schedule::tuned_for_degree(degree);
            base.eval_every = schedule.period();
            cells.push((dataset, degree, base.nodes, base.rounds));
            for algo in [AlgorithmSpec::DPsgd, AlgorithmSpec::SkipTrain(schedule)] {
                let mut cfg = base.clone();
                cfg.name = format!("{dataset}-{degree}reg-{}", algo.name());
                cfg.algorithm = algo;
                configs.push(cfg);
            }
        }
    }

    let all = Campaign::from_configs(configs).run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    for ((dataset, degree, nodes, rounds), pair) in cells.iter().zip(all.chunks(2)) {
        banner(&format!(
            "{dataset} {degree}-regular ({nodes} nodes, {rounds} rounds)"
        ));
        for result in pair {
            println!(
                "{:<22} final acc {:>5}%  (±{:>4})  train energy {:>9.2} Wh  train events {}",
                result.algorithm,
                pct(result.final_test.mean_accuracy),
                pct(result.final_test.std_accuracy),
                result.total_training_wh,
                result.node_train_events,
            );
        }

        // accuracy-vs-round / accuracy-vs-energy series (the two Figure-5 panels)
        let rows: Vec<Vec<String>> = pair[0]
            .test_curve
            .iter()
            .zip(pair[1].test_curve.iter())
            .map(|(d, s)| {
                vec![
                    d.round.to_string(),
                    pct(d.mean_accuracy),
                    format!("{:.2}", d.training_energy_wh),
                    pct(s.mean_accuracy),
                    format!("{:.2}", s.training_energy_wh),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "round",
                    "dpsgd acc%",
                    "dpsgd energy Wh",
                    "skiptrain acc%",
                    "skiptrain energy Wh",
                ],
                &rows
            )
        );
    }

    banner("summary (paper: SkipTrain ≥ D-PSGD accuracy at ~half the energy)");
    for pair in all.chunks(2) {
        let (d, s) = (&pair[0], &pair[1]);
        println!(
            "{:<28} acc {:>5}% -> {:>5}%   energy {:>9.2} -> {:>9.2} Wh ({:.2}x)",
            s.name,
            pct(d.final_test.mean_accuracy),
            pct(s.final_test.mean_accuracy),
            d.total_training_wh,
            s.total_training_wh,
            d.total_training_wh / s.total_training_wh.max(1e-9),
        );
    }

    args.maybe_write_json(&serde_json::json!({
        "experiment": "fig5_performance",
        "results": all,
    }));
}
