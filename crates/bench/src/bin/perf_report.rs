//! Perf-gate harness: runs the round-loop / SGD / codec scenarios at
//! pinned configurations and emits the machine-readable
//! `BENCH_round_loop.json` perf trajectory (schema documented in
//! `skiptrain_bench::perf`).
//!
//! ```text
//! perf_report [--quick] [--out PATH]
//!
//! --quick   CI smoke mode: few iterations per scenario (same pinned
//!           configs, noisier numbers) so the schema gate stays cheap
//! --out     report path (default: BENCH_round_loop.json)
//! ```
//!
//! The binary always validates the report it just wrote against the
//! schema and exits non-zero on any violation, so the CI step doubles as
//! the schema gate.

use serde_json::Value;
use skiptrain_bench::perf::{
    allocated_bytes, build_report, json_object, measure, validate_report,
    validate_required_scenarios, CountingAllocator, ScenarioMeasurement, REQUIRED_SCENARIOS,
};
use skiptrain_data::synth::{MixtureSpec, MixtureTask};
use skiptrain_energy::battery::{BatteryPolicy, BatterySetup, BatteryState};
use skiptrain_energy::trace::{HarvestProfile, HarvestTrace};
use skiptrain_engine::transport::{
    corrupt_frame_in_place, decode_frame, decode_frame_into, encode_message_with, MessageFate,
};
use skiptrain_engine::{
    ChurnModel, CompressionPolicy, ComputeProfile, DecodeScratch, EncodeScratch, EventEngine,
    LatencyModel, ModelCodec, RoundAction, RoundSemantics, Simulation, SimulationConfig,
    TransportKind, BASE_TRAIN_TICKS,
};
use skiptrain_linalg::compress::{compress_with_feedback_top_k, FeedbackScratch};
use skiptrain_linalg::Matrix;
use skiptrain_nn::sgd::SgdConfig;
use skiptrain_nn::zoo::ModelKind;
use skiptrain_nn::{Sequential, Sgd, SoftmaxCrossEntropy};
use skiptrain_topology::regular::random_regular;
use skiptrain_topology::{MixingMatrix, ScheduledTopology, TopologySchedule};
use std::hint::black_box;
use std::process::Command;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Args {
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: "BENCH_round_loop.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("missing value for --out");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag '{other}'; usage: perf_report [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One SGD step (forward + backward + update) on a synthetic batch.
fn sgd_step_scenario(
    name: &str,
    mut model: Sequential,
    batch: usize,
    classes: usize,
    config: Value,
    warmup: usize,
    iters: usize,
) -> ScenarioMeasurement {
    let loss = SoftmaxCrossEntropy::new(classes);
    let mut opt = Sgd::new(SgdConfig::plain(0.1));
    let x = Matrix::from_fn(batch, model.input_dim(), |r, c| {
        ((r * 31 + c) as f32).sin() * 0.3
    });
    let y: Vec<u32> = (0..batch).map(|i| (i % classes) as u32).collect();
    let mut grad = Matrix::zeros(0, 0);
    measure(name, config, warmup, iters, || {
        model.zero_grads();
        let value = {
            let logits = model.forward(&x, true);
            loss.loss_and_grad(logits, &y, &mut grad)
        };
        model.backward(&grad);
        opt.step(&mut model);
        black_box(value);
    })
}

/// The pinned 64-node mixture-MLP simulation the `round_scaling` bench
/// also uses — the whole-round hot path (train + share + aggregate).
fn build_round_sim(n: usize, seed: u64) -> Simulation {
    let graph = random_regular(n, 6, seed);
    build_sim_on(graph, seed, SimulationConfig::minimal(seed, 16, 5, 0.5))
}

/// The pinned mixture-MLP fleet on an explicit graph and config (the
/// dynamic-topology scenario supplies a dense base graph and a
/// feedback-compressed config).
fn build_sim_on(
    graph: skiptrain_topology::Graph,
    seed: u64,
    config: SimulationConfig,
) -> Simulation {
    let n = graph.len();
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 10,
            feature_dim: 32,
            modes_per_class: 2,
            separation: 1.0,
            noise: 0.9,
        },
        seed,
    );
    let datasets = (0..n).map(|i| task.sample(60, i as u64)).collect();
    let models = (0..n)
        .map(|i| {
            ModelKind::Mlp {
                dims: vec![32, 24, 10],
            }
            .build(seed + i as u64)
        })
        .collect();
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    Simulation::new(models, datasets, graph, mixing, config)
}

fn main() {
    let args = parse_args();
    let mode = if args.quick { "quick" } else { "full" };
    // (warmup, iters) per scenario family, scaled down in quick mode
    let scale = |warmup: usize, iters: usize| {
        if args.quick {
            (warmup.div_ceil(4), iters.div_ceil(10).max(2))
        } else {
            (warmup, iters)
        }
    };
    let mut scenarios: Vec<ScenarioMeasurement> = Vec::new();

    // --- SGD step scenarios -------------------------------------------
    let (warmup, iters) = scale(10, 300);
    scenarios.push(sgd_step_scenario(
        "sgd_step_mlp_medium_90k",
        skiptrain_nn::zoo::mlp(&[128, 512, 128, 10], 1),
        32,
        10,
        json_object(vec![
            ("model", Value::String("mlp-128-512-128-10".into())),
            ("batch", Value::UInt(32)),
            ("mode", Value::String(mode.into())),
        ]),
        warmup,
        iters,
    ));
    let (warmup, iters) = scale(2, 20);
    scenarios.push(sgd_step_scenario(
        "sgd_step_cnn_femnist",
        skiptrain_nn::zoo::femnist_cnn(1),
        16,
        62,
        json_object(vec![
            ("model", Value::String("femnist-leaf-cnn".into())),
            ("batch", Value::UInt(16)),
            ("mode", Value::String(mode.into())),
        ]),
        warmup,
        iters,
    ));

    // --- round-loop scenarios -----------------------------------------
    let (warmup, iters) = scale(4, 40);
    {
        let mut sim = build_round_sim(64, 1);
        let actions = vec![RoundAction::Train; 64];
        scenarios.push(measure(
            "round_loop_train_64",
            json_object(vec![
                ("nodes", Value::UInt(64)),
                ("degree", Value::UInt(6)),
                ("model", Value::String("mlp-32-24-10".into())),
                ("batch", Value::UInt(16)),
                ("local_steps", Value::UInt(5)),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                sim.run_round(black_box(&actions));
            },
        ));
    }
    let (warmup, iters) = scale(10, 150);
    {
        let mut sim = build_round_sim(256, 2);
        let actions = vec![RoundAction::SyncOnly; 256];
        scenarios.push(measure(
            "round_loop_sync_256",
            json_object(vec![
                ("nodes", Value::UInt(256)),
                ("degree", Value::UInt(6)),
                ("model", Value::String("mlp-32-24-10".into())),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                sim.run_round(black_box(&actions));
            },
        ));
    }

    // --- codec scenarios ----------------------------------------------
    // CIFAR-10 model size from Table 1, the share-phase payload. Both
    // round trips run through the reusable encode/decode scratch buffers
    // (`EncodeScratch` / `DecodeScratch`), so after the first warmup
    // iteration fills capacities the wire path is allocation-free — the
    // proxy column pins that.
    let params: Vec<f32> = (0..89_834).map(|i| ((i as f32) * 0.11).sin()).collect();
    for (name, codec) in [
        ("codec_dense_roundtrip", ModelCodec::DenseF32),
        ("codec_quantized_u16_roundtrip", ModelCodec::QuantizedU16),
    ] {
        let (warmup, iters) = scale(5, 100);
        let mut frame: Vec<u8> = Vec::new();
        let mut encode_scratch = EncodeScratch::default();
        let mut decode_scratch = DecodeScratch::default();
        scenarios.push(measure(
            name,
            json_object(vec![
                ("codec", Value::String(codec.name().into())),
                ("params", Value::UInt(params.len() as u64)),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                encode_message_with(codec, 3, 7, &params, &mut frame, &mut encode_scratch);
                let decoded =
                    decode_frame_into(&frame, &mut decode_scratch).expect("frame must decode");
                black_box(&decoded);
            },
        ));
    }

    // --- error-feedback compression scenario ---------------------------
    // The per-link hot path of CHOCO-SGD error feedback at the pinned
    // CIFAR-10 model size and the ext_compression default kept fraction
    // (1/16): residual accumulation + top-k selection over the residual +
    // replica fold-back, through reusable buffers (allocation-free at
    // steady state — the proxy column pins that too).
    {
        let k = params.len() / 16;
        let (warmup, iters) = scale(5, 100);
        let mut replica = vec![0.0f32; params.len()];
        let mut model = params.clone();
        let mut scratch = FeedbackScratch::default();
        let (mut indices, mut values) = (Vec::new(), Vec::new());
        let mut round = 0usize;
        scenarios.push(measure(
            "topk_feedback",
            json_object(vec![
                ("codec", Value::String("top-k".into())),
                ("params", Value::UInt(params.len() as u64)),
                ("k", Value::UInt(k as u64)),
                ("beta", Value::Float(1.0)),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                // drift a rotating handful of coordinates in place so the
                // residual never collapses to zero across iterations
                round = round.wrapping_add(1);
                let len = model.len();
                for d in 0..8 {
                    model[(round * 97 + d * 131) % len] += 1e-3;
                }
                compress_with_feedback_top_k(
                    &model,
                    &mut replica,
                    1.0,
                    k,
                    &mut scratch,
                    &mut indices,
                    &mut values,
                );
                black_box((&replica, &indices, &values));
            },
        ));
    }

    // --- dynamic-topology scenario --------------------------------------
    // The scheduled-round loop under churn: a 24-node *complete* base
    // graph with 70% per-round edge dropout cycles through all 552
    // directed links, while top-k error feedback runs with a deliberately
    // tight replica cap (4 per receiver). This is the regression gate for
    // the replica leak: the pre-cap state allocated one model-sized
    // replica per distinct link forever, so its allocation proxy grew
    // with the link census; the capped state evicts the stalest link and
    // recycles its buffer, keeping the per-round proxy flat (what remains
    // is the per-round graph + MH-matrix generation, which is constant).
    {
        let n = 24;
        let cap = 4;
        let base = skiptrain_topology::Graph::complete(n);
        let mut config = SimulationConfig::minimal(5, 16, 5, 0.5);
        config.compression = CompressionPolicy::Uniform(ModelCodec::TopK { k: 64 });
        config.feedback_beta = Some(1.0);
        config.feedback_replica_cap = Some(cap);
        let mut sim = build_sim_on(base.clone(), 5, config);
        let mut sched =
            ScheduledTopology::new(base, TopologySchedule::EdgeDropout { p: 0.7, seed: 11 });
        let actions = vec![RoundAction::SyncOnly; n];
        let (warmup, iters) = scale(10, 200);
        scenarios.push(measure(
            "dynamic_topology_round",
            json_object(vec![
                ("nodes", Value::UInt(n as u64)),
                ("base", Value::String("complete".into())),
                ("schedule", Value::String("edge-dropout p=0.7".into())),
                ("codec", Value::String("top-k".into())),
                ("k", Value::UInt(64)),
                ("beta", Value::Float(1.0)),
                ("replica_cap", Value::UInt(cap as u64)),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                let mixing = sched.mixing_for_round(sim.round());
                sim.try_run_round_with_mixing(black_box(&actions), mixing)
                    .expect("scheduled graph matches the fleet");
            },
        ));
    }

    // --- battery scenario ------------------------------------------------
    // The closed-loop round with the battery machinery live: recharge from
    // the harvest trace, policy decision, participation masking, and the
    // post-round settle all run every round on top of the pinned 64-node
    // train loop. The harvest outpaces the drain so the fleet stays fully
    // charged and every node trains — the scenario isolates the battery
    // bookkeeping overhead (O(n) per round) against `round_loop_train_64`,
    // and its allocation proxy pins that the recharge/decide/mask/settle
    // cycle is allocation-free at steady state (masked mixing reuses one
    // scratch matrix; charge vectors are updated in place).
    {
        let n = 64;
        let mut config = SimulationConfig::minimal(7, 16, 5, 0.5);
        config.training_energy_wh = vec![2e-4; n];
        config.battery = Some(BatterySetup {
            state: BatteryState::new(vec![1.0; n]),
            trace: HarvestTrace::new(HarvestProfile::Constant { watts: 0.05 }, 60.0, n, 7, 0.1),
            policy: BatteryPolicy::Threshold { min_fraction: 0.2 },
            node_policies: None,
        });
        let graph = random_regular(n, 6, 7);
        let mut sim = build_sim_on(graph, 7, config);
        let actions = vec![RoundAction::Train; n];
        let (warmup, iters) = scale(4, 40);
        scenarios.push(measure(
            "battery_round",
            json_object(vec![
                ("nodes", Value::UInt(n as u64)),
                ("degree", Value::UInt(6)),
                ("model", Value::String("mlp-32-24-10".into())),
                ("batch", Value::UInt(16)),
                ("local_steps", Value::UInt(5)),
                ("policy", Value::String("threshold 0.2".into())),
                ("harvest", Value::String("constant 0.05 W".into())),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                sim.run_round(black_box(&actions));
            },
        ));
    }

    // --- adaptive-link scenario ------------------------------------------
    // The per-link compression policy layer in isolation: a 64-node
    // sync-only fleet under a diurnal harvest resolves the DEAL tier
    // table per sender per round (charge snapshot → tier lookup →
    // per-link codec table) and shares through heterogeneous codecs,
    // with the per-edge energy accounting charging each link's resolved
    // bytes. Sync-only rounds keep the (separately measured) training
    // path out of the window, and the round mixings are generated up
    // front from the edge-dropout schedule and cycled, so the measured
    // loop is exactly the adaptive share machinery; its allocation proxy
    // pins that tier resolution reuses the per-node codec rows, the
    // charge-fraction snapshot buffer, and the per-receiver codec
    // scratch (0 B at steady state).
    {
        let n = 64;
        let graph = random_regular(n, 6, 13);
        let mut config = SimulationConfig::minimal(13, 16, 5, 0.5);
        config.compression = CompressionPolicy::deal_tiers(64);
        config.training_energy_wh = vec![2e-4; n];
        config.battery = Some(BatterySetup {
            state: BatteryState::new(vec![2e-3; n]),
            trace: HarvestTrace::new(
                HarvestProfile::Diurnal {
                    peak_watts: 0.05,
                    period_rounds: 16.0,
                },
                60.0,
                n,
                13,
                0.1,
            ),
            policy: BatteryPolicy::Threshold { min_fraction: 0.1 },
            node_policies: None,
        });
        let mut sim = build_sim_on(graph.clone(), 13, config);
        let mut sched =
            ScheduledTopology::new(graph, TopologySchedule::EdgeDropout { p: 0.3, seed: 13 });
        let mixings: Vec<MixingMatrix> =
            (0..16).map(|r| sched.mixing_for_round(r).clone()).collect();
        let actions = vec![RoundAction::SyncOnly; n];
        // Warm a full 16-round mixing/diurnal cycle (even in quick mode)
        // so the measured window sees converged scratch capacities —
        // every cached mixing's masked rows, per-link codec tables, and
        // per-receiver codec scratch have reached their high-water marks.
        let (warmup, iters) = scale(64, 40);
        scenarios.push(measure(
            "adaptive_link_round",
            json_object(vec![
                ("nodes", Value::UInt(n as u64)),
                ("degree", Value::UInt(6)),
                (
                    "schedule",
                    Value::String("edge-dropout p=0.3 (16 cached)".into()),
                ),
                ("policy", Value::String("energy-adaptive deal tiers".into())),
                ("k", Value::UInt(64)),
                ("harvest", Value::String("diurnal 0.05 W peak".into())),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                let mixing = black_box(&mixings[sim.round() % mixings.len()]);
                sim.try_run_round_with_mixing(black_box(&actions), mixing)
                    .expect("cached scheduled graph matches the fleet");
            },
        ));
    }

    // --- event-scheduler scenario ----------------------------------------
    // One realistic deadline round of the discrete-event core per
    // iteration, over the pinned 64-node 6-regular mixing: a 10% straggler
    // tail at 4× slowdown, constant half-round link latency against a
    // quarter-round deadline slack (so late-edge classification and the
    // sorted late set are exercised every round), and light churn. This
    // isolates the event machinery itself — priority-queue push/pop,
    // seeded per-(round, node) and per-(round, edge) draws, per-node
    // clock advancement — from the training round it schedules; its
    // allocation proxy pins that the scheduler reuses its queue, late-set,
    // and gating buffers (allocation-free at steady state).
    {
        let n = 64;
        let graph = random_regular(n, 6, 9);
        let mixing = MixingMatrix::metropolis_hastings(&graph);
        let mut engine = EventEngine::new(
            n,
            9,
            ComputeProfile::StragglerTail {
                tail_prob: 0.1,
                tail_factor: 4.0,
            },
            LatencyModel::Constant {
                ticks: BASE_TRAIN_TICKS / 2,
            },
            Some(ChurnModel {
                leave_prob: 0.02,
                rejoin_prob: 0.5,
            }),
            RoundSemantics::Deadline {
                slack_ticks: BASE_TRAIN_TICKS / 4,
            },
        );
        let actions = vec![RoundAction::Train; n];
        let mut round = 0usize;
        let (warmup, iters) = scale(10, 400);
        scenarios.push(measure(
            "event_round",
            json_object(vec![
                ("nodes", Value::UInt(n as u64)),
                ("degree", Value::UInt(6)),
                ("compute", Value::String("straggler p=0.1 x4".into())),
                ("latency", Value::String("constant half-round".into())),
                ("churn", Value::String("leave 0.02 rejoin 0.5".into())),
                ("semantics", Value::String("deadline quarter-round".into())),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                engine.begin_round(round, black_box(&actions), &mixing);
                round += 1;
                black_box(engine.late_edges());
            },
        ));
    }

    // --- wire-corruption scenario ----------------------------------------
    // One round of per-edge corruption decisions over a 64-node 6-regular
    // edge census at 10% corruption, against the pinned CIFAR-10 frame:
    // every edge draws its fate from the partitioned per-(round, edge)
    // stream, and each corrupted edge takes the full reject path — seeded
    // in-place bit-flip, checksum verify failure, flip-back. Its
    // allocation proxy pins that the corruption decision and the checksum
    // reject are allocation-free (the flip is XOR-in-place against the
    // live frame; `decode_frame`'s checksum-failure path allocates
    // nothing) — isolated from the serialized share loop, whose sender
    // decode allocates its payload regardless of corruption.
    {
        let (n, degree) = (64usize, 6usize);
        let (warmup, iters) = scale(5, 100);
        let mut frame: Vec<u8> = Vec::new();
        let mut encode_scratch = EncodeScratch::default();
        encode_message_with(
            ModelCodec::DenseF32,
            3,
            7,
            &params,
            &mut frame,
            &mut encode_scratch,
        );
        let transport = TransportKind::Serialized {
            drop_prob: 0.0,
            corrupt_prob: 0.1,
        };
        let mut round = 0usize;
        let mut corrupted = 0u64;
        scenarios.push(measure(
            "corrupt_frame_round",
            json_object(vec![
                ("nodes", Value::UInt(n as u64)),
                ("degree", Value::UInt(degree as u64)),
                ("params", Value::UInt(params.len() as u64)),
                ("transport", Value::String("serialized".into())),
                ("corrupt_prob", Value::Float(0.1)),
                ("mode", Value::String(mode.into())),
            ]),
            warmup,
            iters,
            || {
                round = round.wrapping_add(1);
                for src in 0..n {
                    for hop in 1..=degree {
                        let dst = (src + hop) % n;
                        if transport.fate(7, round, src, dst) == MessageFate::Corrupted {
                            corrupt_frame_in_place(&mut frame, 7, round, src, dst);
                            let rejected = decode_frame(&frame).is_err();
                            corrupt_frame_in_place(&mut frame, 7, round, src, dst);
                            assert!(rejected, "corrupted frame must fail the checksum");
                            corrupted += 1;
                        }
                    }
                }
                black_box(&frame);
            },
        ));
        assert!(
            corrupted > 0,
            "corruption scenario must exercise the reject path"
        );
    }

    // --- report --------------------------------------------------------
    let report = build_report(&git_rev(), &scenarios);
    println!(
        "{:<34} {:>14} {:>16} {:>18}",
        "scenario", "rounds/sec", "ns/step", "bytes-alloc/step"
    );
    for s in &scenarios {
        println!(
            "{:<34} {:>14.2} {:>16.0} {:>18}",
            s.name, s.rounds_per_sec, s.ns_per_step, s.bytes_allocated_proxy
        );
    }
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    });

    // the written artifact is what future tooling consumes — re-read and
    // validate that exact file so the gate cannot silently rot
    let written = std::fs::read_to_string(&args.out).expect("just-written report is readable");
    let parsed: Value = serde_json::from_str(&written).unwrap_or_else(|e| {
        eprintln!("emitted report is not valid JSON: {e:?}");
        std::process::exit(1);
    });
    if let Err(msg) = validate_report(&parsed) {
        eprintln!("perf report failed schema validation: {msg}");
        std::process::exit(1);
    }
    if let Err(msg) = validate_required_scenarios(&parsed, REQUIRED_SCENARIOS) {
        eprintln!("perf report failed required-scenario validation: {msg}");
        std::process::exit(1);
    }
    println!(
        "wrote {} ({} scenarios, git {}; total heap allocated {} MiB)",
        args.out,
        scenarios.len(),
        git_rev(),
        allocated_bytes() / (1 << 20)
    );
}
