//! Fault-injection smoke: a campaign under simultaneous cell panics,
//! wire-level frame corruption, and membership churn, executed through
//! `Campaign::run_resilient` with a checkpoint journal.
//!
//! The harness is the end-to-end gate for the fault-tolerance layer:
//!
//! * **cell faults** — two named cells panic on their first attempt (via
//!   an injected observer factory) and succeed on the deterministic
//!   retry seed; one cell panics on *every* attempt and must surface as
//!   a typed `CellFailure` without taking down its siblings;
//! * **wire faults** — every experiment runs the serialized transport
//!   with a per-message corruption probability, so corrupted frames
//!   exercise the checksum reject path and the `corrupted_messages`
//!   counter, accounted exactly like drops;
//! * **churn** — light seeded leave/rejoin keeps membership changing
//!   under the faults;
//! * **checkpoint/resume** — the run journals to a temp file; the
//!   harness then truncates the journal to simulate a crash and
//!   re-runs, asserting the resumed results are bit-identical to the
//!   uninterrupted ones.
//!
//! Exits non-zero on any violated invariant, so the CI step is the gate.

use skiptrain_bench::{banner, HarnessArgs};
use skiptrain_core::presets::cifar_config;
use skiptrain_core::{retry_seed, Campaign, ChurnSpec, ExperimentConfig, RetrySpec, TransportKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fail(msg: &str) -> ! {
    eprintln!("FAULT-TOLERANCE SMOKE FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.eval_every = base.rounds;
    base.transport = TransportKind::Serialized {
        drop_prob: 0.05,
        corrupt_prob: 0.1,
    };
    base.churn = Some(ChurnSpec {
        leave_prob: 0.05,
        rejoin_prob: 0.5,
    });
    banner(&format!(
        "fault-tolerance smoke: panics + frame corruption + churn ({} nodes, {} rounds)",
        base.nodes, base.rounds
    ));

    // Six cells: two flaky (panic on attempt 1, succeed on the retry
    // seed), one doomed (panics every attempt), three healthy.
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    for i in 0..6usize {
        let mut cfg = base.clone();
        cfg.seed = args.seed + i as u64;
        cfg.name = match i {
            1 | 4 => format!("flaky-{i}"),
            2 => "doomed".into(),
            _ => format!("healthy-{i}"),
        };
        configs.push(cfg);
    }
    let flaky_seeds: Vec<u64> = configs
        .iter()
        .filter(|c| c.name.starts_with("flaky"))
        .map(|c| c.seed)
        .collect();

    let journal = std::env::temp_dir().join(format!(
        "skiptrain-fault-smoke-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);

    let injected_panics = Arc::new(AtomicUsize::new(0));
    let campaign = |checkpoint: &std::path::Path| {
        let flaky_seeds = flaky_seeds.clone();
        let counter = Arc::clone(&injected_panics);
        Campaign::from_configs(configs.clone())
            .retry(RetrySpec::attempts(2))
            .with_checkpoint(checkpoint)
            .observe_with(move |_, cfg| {
                if cfg.name == "doomed" || flaky_seeds.contains(&cfg.seed) {
                    counter.fetch_add(1, Ordering::SeqCst);
                    panic!("injected fault in '{}'", cfg.name);
                }
                Vec::new()
            })
            .on_failure(|failure| eprintln!("  terminal failure: {failure}"))
    };

    let report = campaign(&journal)
        .run_resilient()
        .unwrap_or_else(|e| fail(&format!("campaign could not run: {e}")));

    // --- failure isolation + retry ------------------------------------
    if report.failures.len() != 1 {
        fail(&format!(
            "expected 1 terminal failure, got {}",
            report.failures.len()
        ));
    }
    let doomed = &report.failures[0];
    if doomed.name != "doomed" || doomed.attempts != 2 {
        fail(&format!("unexpected terminal failure: {doomed}"));
    }
    if injected_panics.load(Ordering::SeqCst) == 0 {
        fail("no panics were injected");
    }
    let completed = report.results.iter().flatten().count();
    if completed != 5 {
        fail(&format!("expected 5 completed cells, got {completed}"));
    }
    // Retried flaky cells run the derived seed, bit-identical to a fresh
    // run configured with it directly.
    for (i, cfg) in configs.iter().enumerate() {
        if !cfg.name.starts_with("flaky") {
            continue;
        }
        let mut fresh_cfg = cfg.clone();
        fresh_cfg.seed = retry_seed(cfg.seed, 2);
        let fresh = fresh_cfg.run();
        let retried = report.results[i].as_ref().unwrap();
        if retried.final_test.mean_accuracy.to_bits() != fresh.final_test.mean_accuracy.to_bits()
            || retried.final_mean_model != fresh.final_mean_model
        {
            fail(&format!(
                "retried '{}' diverged from fresh run at the retry seed",
                cfg.name
            ));
        }
    }

    // --- wire corruption ----------------------------------------------
    let corrupted: u64 = report
        .results
        .iter()
        .flatten()
        .map(|r| r.corrupted_messages)
        .sum();
    if corrupted == 0 {
        fail("no frames were corrupted despite corrupt_prob = 0.1");
    }

    // --- journal resume equivalence -----------------------------------
    // Simulate a crash: keep the manifest and the first two completed
    // cells, tear the third record mid-line, then resume.
    let text = std::fs::read_to_string(&journal)
        .unwrap_or_else(|e| fail(&format!("cannot read journal: {e}")));
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() != 1 + completed {
        fail(&format!(
            "journal holds {} lines, expected manifest + {completed} cells",
            lines.len()
        ));
    }
    let truncated = std::env::temp_dir().join(format!(
        "skiptrain-fault-smoke-truncated-{}.jsonl",
        std::process::id()
    ));
    let mut partial = lines[..3].join("\n");
    partial.push('\n');
    partial.push_str(&lines[3][..lines[3].len() / 2]);
    std::fs::write(&truncated, partial)
        .unwrap_or_else(|e| fail(&format!("cannot write truncated journal: {e}")));

    let resumed = campaign(&truncated)
        .run_resilient()
        .unwrap_or_else(|e| fail(&format!("resume could not run: {e}")));
    if resumed.restored != 2 {
        fail(&format!(
            "expected 2 restored cells, got {}",
            resumed.restored
        ));
    }
    for (i, (a, b)) in report.results.iter().zip(&resumed.results).enumerate() {
        match (a, b) {
            (Some(a), Some(b)) => {
                if a.final_test.mean_accuracy.to_bits() != b.final_test.mean_accuracy.to_bits()
                    || a.final_mean_model != b.final_mean_model
                    || a.corrupted_messages != b.corrupted_messages
                {
                    fail(&format!("cell #{i} diverged after journal resume"));
                }
            }
            (None, None) => {}
            _ => fail(&format!("cell #{i} completion state changed after resume")),
        }
    }

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&truncated);
    println!(
        "fault-tolerance smoke passed: {completed}/6 cells completed, 1 typed failure, \
         {} injected panics, {corrupted} corrupted frames, resume bit-identical",
        injected_panics.load(Ordering::SeqCst)
    );
}
