//! Figure 6 + the accuracy columns of Table 4: the energy-constrained
//! setting. SkipTrain-constrained vs Greedy vs (non-energy-aware) D-PSGD on
//! both datasets × three topologies, accuracy against consumed training
//! energy.
//!
//! Per §4.2, budgets τ_i derive from spending 10 % (CIFAR-10) / 50 %
//! (FEMNIST) of each device's battery; at reduced scales the battery
//! fraction is rescaled so τ/T_train matches the paper's ratio. The 18 runs
//! execute as one parallel [`Campaign`] over two shared data bundles.

use skiptrain_bench::{accuracy_at_energy, banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::{cifar_config, femnist_config};
use skiptrain_core::{
    AlgorithmSpec, Campaign, EnergySpec, ExperimentConfig, ExperimentResult, Schedule, TopologySpec,
};

fn main() {
    let args = HarnessArgs::parse();

    let mut configs: Vec<ExperimentConfig> = Vec::new();
    let mut cells = Vec::new();
    for dataset in ["cifar", "femnist"] {
        for degree in [6usize, 8, 10] {
            let (mut base, constrained_spec, paper_rounds) = match dataset {
                "cifar" => (
                    cifar_config(args.scale, args.seed),
                    EnergySpec::cifar10_constrained(),
                    1000,
                ),
                _ => (
                    femnist_config(args.scale, args.seed),
                    EnergySpec::femnist_constrained(),
                    3000,
                ),
            };
            args.apply(&mut base);
            base.topology = TopologySpec::Regular { degree };
            let schedule = Schedule::tuned_for_degree(degree);
            base.eval_every = schedule.period();
            let scaled = constrained_spec.scaled_for_rounds(base.rounds, paper_rounds);
            cells.push((dataset, degree, base.nodes, base.rounds, paper_rounds));

            for (algo, energy) in [
                // D-PSGD is not energy-aware: trains every round, unconstrained.
                (AlgorithmSpec::DPsgd, base.energy.clone()),
                (AlgorithmSpec::Greedy, scaled.clone()),
                (
                    AlgorithmSpec::SkipTrainConstrained(schedule),
                    scaled.clone(),
                ),
            ] {
                let mut cfg = base.clone();
                cfg.name = format!("{dataset}-{degree}reg-{}", algo.name());
                cfg.algorithm = algo;
                cfg.energy = energy;
                configs.push(cfg);
            }
        }
    }

    let all: Vec<ExperimentResult> = Campaign::from_configs(configs).run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    for ((dataset, degree, nodes, rounds, paper_rounds), group) in cells.iter().zip(all.chunks(3)) {
        banner(&format!(
            "{dataset} {degree}-regular constrained ({nodes} nodes, {rounds} rounds, \
             τ scaled ×{rounds}/{paper_rounds})"
        ));
        let rows: Vec<Vec<String>> = group
            .iter()
            .map(|result| {
                vec![
                    result.algorithm.clone(),
                    pct(result.final_test.mean_accuracy),
                    pct(result.final_test.std_accuracy),
                    format!("{:.2}", result.total_training_wh),
                    result.node_train_events.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "algorithm",
                    "final acc%",
                    "std",
                    "training energy Wh",
                    "train events"
                ],
                &rows
            )
        );
    }

    banner("summary (paper: SkipTrain-c > Greedy > D-PSGD at matched energy)");
    for group in all.chunks(3) {
        let (d, g, s) = (&group[0], &group[1], &group[2]);
        // D-PSGD is not energy-aware; like the paper's Table 4, read its
        // accuracy at the energy level the constrained algorithms spent.
        let budget = s.total_training_wh.max(g.total_training_wh);
        let (matched_round, d_matched) =
            accuracy_at_energy(d, budget).unwrap_or((0, d.test_curve[0].mean_accuracy));
        println!(
            "{:<34} d-psgd@{budget:>6.1}Wh(r{matched_round}) {:>5}%  greedy {:>5}%  skiptrain-c {:>5}%  ({})",
            s.name,
            pct(d_matched),
            pct(g.final_test.mean_accuracy),
            pct(s.final_test.mean_accuracy),
            if s.final_test.mean_accuracy >= g.final_test.mean_accuracy
                && g.final_test.mean_accuracy >= d_matched
            {
                "paper ordering holds"
            } else {
                "ordering differs"
            }
        );
    }

    args.maybe_write_json(&serde_json::json!({
        "experiment": "fig6_constrained",
        "results": all,
    }));
}
