//! Battery extension: the accuracy-vs-harvested-energy frontier across
//! battery capacity, harvest profile, and participation policy.
//!
//! The paper treats energy as a budget to be *recorded*; this harness
//! closes the loop and lets per-node charge *control* participation. Every
//! cell runs the same D-PSGD experiment on a fleet whose batteries start
//! empty and recharge only from an energy-harvesting trace sized as a
//! trickle: the diurnal peak delivers less than the cheapest device's
//! training round, so no node can train off a single round's harvest — the
//! only way to train is to bank charge across rounds. The grid crosses
//!
//! * **capacity** — small (2× the most expensive round) vs large (4×),
//! * **harvest** — diurnal (solar day/night) vs constant at the same mean,
//! * **policy** — always-on, threshold, hysteresis, duty-cycle.
//!
//! Always-on browns out: it holds a sliver of harvest, attempts the round,
//! cannot afford it, and burns the sliver — so its harvested energy buys
//! nothing. Charge-aware policies bank the identical harvest into completed
//! rounds, which is the `acc / harvested Wh` column: accuracy per
//! watt-hour the environment actually delivered, at bit-identical
//! per-message accounting across cells.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::cifar_config;
use skiptrain_core::{BatteryCapacitySpec, BatterySpec, Campaign, ExperimentConfig};
use skiptrain_energy::battery::BatteryPolicy;
use skiptrain_energy::device::fleet;
use skiptrain_energy::trace::{round_duration_s, HarvestProfile};

fn main() {
    let args = HarnessArgs::parse();
    // D-PSGD (the paper's baseline) trains every round, so every round is
    // a participation decision: there are no sync-only rounds for an
    // always-on node to bank harvest through.
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.eval_every = base.rounds.min(8);

    // Size the harvest against the fleet: the diurnal *peak* per-round
    // energy stays below the cheapest node's training round, so banking is
    // the only route to participation.
    let costs = base.energy.node_energies(base.nodes);
    let min_cost = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let max_cost = costs.into_iter().fold(0.0f64, f64::max);
    let round_s = fleet(base.nodes)
        .iter()
        .map(|d| round_duration_s(&d.profile(), &base.energy.workload))
        .fold(0.0f64, f64::max);
    let peak_watts = 0.9 * min_cost * 3600.0 / round_s;

    let capacities: Vec<(&str, f64)> =
        vec![("small 2x", 2.0 * max_cost), ("large 4x", 4.0 * max_cost)];
    let harvests: Vec<(&str, HarvestProfile)> = vec![
        (
            "diurnal",
            HarvestProfile::Diurnal {
                peak_watts,
                period_rounds: 16.0,
            },
        ),
        (
            "constant",
            HarvestProfile::Constant {
                // same mean power as the diurnal trace (mean of the
                // half-rectified sine is peak/pi)
                watts: peak_watts / std::f64::consts::PI,
            },
        ),
    ];
    let policies: Vec<(&str, BatteryPolicy)> = vec![
        ("always-on", BatteryPolicy::AlwaysOn),
        (
            "threshold 0.6",
            BatteryPolicy::Threshold { min_fraction: 0.6 },
        ),
        (
            "hysteresis 0.2/0.6",
            BatteryPolicy::Hysteresis {
                suspend_fraction: 0.2,
                resume_fraction: 0.6,
            },
        ),
        (
            "duty-cycle 0.5",
            BatteryPolicy::DutyCycle {
                target_fraction: 0.5,
            },
        ),
    ];

    banner(&format!(
        "battery frontier: accuracy vs harvested energy ({} nodes, {} rounds, d-psgd)",
        base.nodes, base.rounds
    ));

    // One campaign runs every (capacity, harvest, policy) cell in parallel
    // over one shared data bundle.
    let mut campaign = Campaign::new();
    let mut labels = Vec::new();
    for (cap_label, wh) in &capacities {
        for (harv_label, profile) in &harvests {
            for (pol_label, policy) in &policies {
                labels.push((*cap_label, *harv_label, *pol_label));
                campaign = campaign.push(cell(&base, *wh, profile.clone(), *policy));
            }
        }
    }
    let results = campaign.run().expect("valid battery configs");

    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(&results)
        .map(|((cap, harv, pol), r)| {
            let b = r.battery.as_ref().expect("battery summary recorded");
            let denom = b.harvest_denominator_wh();
            let acc_per_wh = if denom > 0.0 {
                format!("{:.2}", r.final_test.mean_accuracy as f64 / denom)
            } else {
                "-".into()
            };
            let util = if b.harvested_wh > 0.0 {
                format!("{:.1}", 100.0 * r.total_training_wh / b.harvested_wh)
            } else {
                "-".into()
            };
            vec![
                cap.to_string(),
                harv.to_string(),
                pol.to_string(),
                pct(r.final_test.mean_accuracy),
                format!("{:.4}", b.harvested_wh),
                format!("{:.4}", r.total_training_wh),
                util,
                format!("{}", b.brownouts),
                acc_per_wh,
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "capacity",
                "harvest",
                "policy",
                "final acc%",
                "harvested Wh",
                "train Wh",
                "train/harv %",
                "brownouts",
                "acc / harv Wh",
            ],
            &rows
        )
    );
    println!(
        "\nreading: every cell shares the data, model, schedule, and harvest seed; only\n\
         the battery differs. Always-on burns its harvest in brown-outs (train Wh = 0,\n\
         brownouts > 0), so its accuracy stays at the untrained baseline. Threshold and\n\
         hysteresis bank the identical harvest into completed rounds — higher training\n\
         utilization and strictly more accuracy per harvested watt-hour. Fractional\n\
         gates scale with capacity: the large battery banks to a bigger absolute\n\
         charge before resuming, delaying first training and leaving more harvest\n\
         unspent at run end. The constant trace delivers the same mean energy\n\
         without the day/night famine, so hysteresis latches cleanly instead of\n\
         oscillating around dawn and dusk."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ext_battery",
        "min_round_cost_wh": min_cost,
        "max_round_cost_wh": max_cost,
        "peak_watts": peak_watts,
        "cells": labels
            .iter()
            .map(|(c, h, p)| format!("{c}/{h}/{p}"))
            .collect::<Vec<_>>(),
        "results": results,
    }));
}

/// One campaign cell: `base` with an empty-start battery of `capacity_wh`
/// recharged by `profile`, gated by `policy`.
fn cell(
    base: &ExperimentConfig,
    capacity_wh: f64,
    profile: HarvestProfile,
    policy: BatteryPolicy,
) -> ExperimentConfig {
    let mut cfg = base.clone();
    cfg.battery = Some(BatterySpec {
        capacity: BatteryCapacitySpec::Uniform { wh: capacity_wh },
        initial_fraction: 0.0,
        harvest: profile,
        harvest_jitter: 0.25,
        policy,
        node_policies: None,
    });
    cfg.name = format!("{}/battery/{}", base.name, policy.name());
    cfg
}
