//! Dynamic-topology extension: the accuracy-vs-communication-energy
//! frontier across time-varying topology schedules, read at a fixed
//! energy budget.
//!
//! The paper's intermittent-training results assume a static graph, but
//! its energy argument is strongest on dynamic fleets where links appear
//! and disappear (duty-cycled radios, mobility — the setting of
//! energy-harvesting decentralized FL). This harness runs the same
//! experiment under every [`TopologyScheduleSpec`]: the static baseline,
//! a cycle alternating a 6-regular graph with a sparse ring, per-round
//! edge dropout at two duty-cycle levels, and per-round pairwise
//! matchings. Because the engine charges energy per *effective* edge of
//! each scheduled round, sparser schedules genuinely spend less
//! communication energy per round; the `acc@budget` column reads every
//! curve at the same total-energy budget (the smallest final budget
//! across schedules), which is the comparison an energy-constrained
//! deployment cares about.
//!
//! Every schedule also runs a `+EF` twin — top-k compression with
//! per-link error feedback — exercising the capped replica state under
//! changing graphs (links that vanish and return re-seed cold once
//! evicted).

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::cifar_config;
use skiptrain_core::{
    AlgorithmSpec, Campaign, ExperimentConfig, ExperimentResult, ModelCodec, Schedule,
    TopologyScheduleSpec,
};
use skiptrain_linalg::rng::derive_seed;
use skiptrain_topology::regular::random_regular;
use skiptrain_topology::Graph;

/// The β every feedback twin uses (full CHOCO-SGD error feedback).
const FEEDBACK_BETA: f32 = 1.0;

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(4, 4));
    base.eval_every = 8;

    let n = base.nodes;
    // The cycle alternates the paper's 6-regular graph with a sparse ring
    // (dense mixing every other round); seeds are chained so the cycle
    // graphs never share a stream with the base topology's.
    let cycle = vec![
        random_regular(n, 6, derive_seed(args.seed, 0xC1C1)),
        Graph::ring(n),
    ];
    let schedules: Vec<(&str, TopologyScheduleSpec)> = vec![
        ("static", TopologyScheduleSpec::Static),
        ("cycle 6-reg/ring", TopologyScheduleSpec::Cycle(cycle)),
        (
            "edge-drop 30%",
            TopologyScheduleSpec::EdgeDropout { p: 0.3 },
        ),
        (
            "edge-drop 60%",
            TopologyScheduleSpec::EdgeDropout { p: 0.6 },
        ),
        ("matching", TopologyScheduleSpec::PairwiseMatching),
    ];

    let sim_params = base.model_kind().build(0).param_count();
    let topk = ModelCodec::TopK {
        k: (sim_params / 16).max(1),
    };

    banner(&format!(
        "dynamic-topology frontier: accuracy vs comm energy ({} nodes, {} rounds, skiptrain(4,4))",
        base.nodes, base.rounds
    ));

    // One campaign runs every (schedule, codec) cell in parallel over one
    // shared data bundle: dense cells first, then the top-k + error
    // feedback twin of every schedule.
    let mut campaign = Campaign::new();
    for (label, spec) in &schedules {
        campaign = campaign.push(cell(&base, label, spec.clone(), None));
    }
    for (label, spec) in &schedules {
        campaign = campaign.push(cell(&base, label, spec.clone(), Some(topk)));
    }
    let results = campaign.run().expect("valid schedule configs");
    let (plain, with_ef) = results.split_at(schedules.len());

    // Fixed energy budget: the smallest final cumulative (training +
    // comm) energy across the dense runs — every curve is readable there.
    let budget_wh = plain
        .iter()
        .filter_map(|r| r.test_curve.last().map(|p| p.cumulative_energy_wh))
        .fold(f64::INFINITY, f64::min);

    let rows: Vec<Vec<String>> = schedules
        .iter()
        .zip(plain)
        .zip(with_ef)
        .map(|(((label, _), p), ef)| {
            vec![
                label.to_string(),
                pct(p.final_test.mean_accuracy),
                pct(ef.final_test.mean_accuracy),
                format!("{:.4}", p.total_comm_wh),
                format!("{:.4}", ef.total_comm_wh),
                accuracy_at_total_energy(p, budget_wh)
                    .map(pct)
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "schedule",
                "final acc%",
                "acc% topk+EF",
                "comm Wh",
                "comm Wh +EF",
                &format!("acc% @ {budget_wh:.2} Wh"),
            ],
            &rows
        )
    );
    println!(
        "\nreading: every schedule shares the training knobs; only the round graphs\n\
         differ. Sparser schedules (dropout, matchings) charge fewer effective edges\n\
         per round, so they sit lower on the comm-Wh axis and get further on a fixed\n\
         budget before the slower mixing catches up. The +EF columns re-run each\n\
         schedule under top-k ({:.0}% kept) with per-link error feedback: replica\n\
         state stays bounded by the per-receiver cap while links appear and vanish.",
        100.0 * (sim_params / 16).max(1) as f64 / sim_params as f64
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ext_dynamic_topology",
        "sim_params": sim_params,
        "feedback_beta": FEEDBACK_BETA,
        "budget_wh": budget_wh,
        "schedules": schedules.iter().map(|(l, _)| l.to_string()).collect::<Vec<_>>(),
        "results": results,
    }));
}

/// One campaign cell: `base` under `spec`, optionally compressed with
/// error feedback, labeled for the report.
fn cell(
    base: &ExperimentConfig,
    label: &str,
    spec: TopologyScheduleSpec,
    codec: Option<ModelCodec>,
) -> ExperimentConfig {
    let mut cfg = base.clone();
    cfg.topology_schedule = spec;
    if let Some(codec) = codec {
        cfg.codec = codec;
        cfg.feedback_beta = Some(FEEDBACK_BETA);
    }
    let suffix = if codec.is_some() { "+topk-ef" } else { "" };
    cfg.name = format!("{}/{label}{suffix}", base.name);
    cfg
}

/// Reads a curve at a *total*-energy budget: the last evaluation point
/// whose cumulative training + communication energy fits the budget.
fn accuracy_at_total_energy(result: &ExperimentResult, budget_wh: f64) -> Option<f32> {
    result
        .test_curve
        .iter()
        .rfind(|p| p.cumulative_energy_wh <= budget_wh + 1e-9)
        .map(|p| p.mean_accuracy)
}
