//! Table 4: the energy-constrained comparison — SkipTrain-constrained vs
//! Greedy vs D-PSGD, energy spent and final accuracy per dataset × topology.
//!
//! All 18 runs execute as one parallel [`Campaign`] over two shared data
//! bundles.

use skiptrain_bench::paper::TABLE4;
use skiptrain_bench::{accuracy_at_energy, banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::{cifar_config, femnist_config};
use skiptrain_core::{AlgorithmSpec, Campaign, EnergySpec, Schedule, TopologySpec};

fn main() {
    let args = HarnessArgs::parse();

    // One run per (dataset, algorithm, degree), in row-assembly order.
    // `budgets[i]` carries the matched-energy budget for D-PSGD rows.
    let mut configs = Vec::new();
    let mut budgets: Vec<Option<f64>> = Vec::new();
    let mut row_specs = Vec::new();
    for (dataset, paper_rounds) in [("CIFAR-10", 1000usize), ("FEMNIST", 3000)] {
        for algo_name in ["SkipTrain-constrained", "Greedy", "D-PSGD"] {
            row_specs.push((dataset, algo_name));
            for degree in [6usize, 8, 10] {
                let (mut cfg, constrained) = match dataset {
                    "CIFAR-10" => (
                        cifar_config(args.scale, args.seed),
                        EnergySpec::cifar10_constrained(),
                    ),
                    _ => (
                        femnist_config(args.scale, args.seed),
                        EnergySpec::femnist_constrained(),
                    ),
                };
                args.apply(&mut cfg);
                cfg.topology = TopologySpec::Regular { degree };
                let schedule = Schedule::tuned_for_degree(degree);
                let scaled = constrained.scaled_for_rounds(cfg.rounds, paper_rounds);
                match algo_name {
                    "SkipTrain-constrained" => {
                        cfg.algorithm = AlgorithmSpec::SkipTrainConstrained(schedule);
                        cfg.energy = scaled.clone();
                    }
                    "Greedy" => {
                        cfg.algorithm = AlgorithmSpec::Greedy;
                        cfg.energy = scaled.clone();
                    }
                    _ => {} // D-PSGD: unconstrained (not energy-aware)
                }
                budgets.push((algo_name == "D-PSGD").then(|| {
                    // The energy level the constrained algorithms were
                    // allowed (paper Table 4).
                    scaled
                        .node_budgets(cfg.nodes)
                        .iter()
                        .zip(scaled.node_energies(cfg.nodes))
                        .map(|(&b, e)| b as f64 * e)
                        .sum()
                }));
                cfg.name = format!("table4-{dataset}-{degree}-{algo_name}");
                cfg.eval_every = schedule.period();
                configs.push(cfg);
            }
        }
    }

    let results = Campaign::from_configs(configs).run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let mut rows = Vec::new();
    for (row, ((dataset, algo_name), group)) in row_specs.iter().zip(results.chunks(3)).enumerate()
    {
        let mut acc = Vec::new();
        let mut energy = Vec::new();
        for (col, r) in group.iter().enumerate() {
            match budgets[row * 3 + col] {
                Some(budget) => {
                    // Read the unconstrained baseline at the matched budget.
                    let (round, a) =
                        accuracy_at_energy(r, budget).unwrap_or((0, r.test_curve[0].mean_accuracy));
                    acc.push(format!("{} @r{round}", pct(a)));
                    energy.push(format!("{budget:.1}"));
                }
                None => {
                    acc.push(pct(r.final_test.mean_accuracy));
                    energy.push(format!("{:.1}", r.total_training_wh));
                }
            }
        }
        let paper_row = TABLE4
            .iter()
            .find(|r| r.dataset == *dataset && r.algorithm == *algo_name)
            .unwrap();
        rows.push(vec![
            algo_name.to_string(),
            dataset.to_string(),
            format!("{} / {} / {}", energy[0], energy[1], energy[2]),
            format!(
                "{:.1} / {:.1} / {:.1}",
                paper_row.budget_wh[0], paper_row.budget_wh[1], paper_row.budget_wh[2]
            ),
            format!("{} / {} / {}", acc[0], acc[1], acc[2]),
            format!(
                "{} / {} / {}",
                paper_row.accuracy_pct[0], paper_row.accuracy_pct[1], paper_row.accuracy_pct[2]
            ),
        ]);
    }

    banner("Table 4 (columns are 6-regular / 8-regular / 10-regular)");
    println!(
        "{}",
        render_table(
            &[
                "algorithm",
                "dataset",
                "measured Wh",
                "paper budget Wh",
                "measured acc%",
                "paper acc%",
            ],
            &rows
        )
    );
    println!(
        "shape checks: SkipTrain-constrained > Greedy > D-PSGD in accuracy on the\n\
         sharded dataset; ordering preserved but gaps smaller on FEMNIST.\n\
         note: D-PSGD reports unconstrained energy at simulation scale; the paper\n\
         caps all rows at comparable budgets."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "table4_summary",
        "results": results,
    }));
}
