//! Compression-scenario extension: the accuracy-vs-communication-energy
//! frontier across model codecs.
//!
//! Energy-aware FL work (DEAL, Sustainable Federated Learning) treats
//! message compression as a first-class energy knob next to training
//! skips. This harness runs the same experiment under every codec —
//! lossless dense f32, 16/8-bit affine quantization, and top-k magnitude
//! sparsification — and reports where each lands on the
//! (comm energy, accuracy) plane. Because the engine charges energy per
//! effective edge from the codec's actual wire bytes, the comm column
//! shrinks monotonically with the codec's bytes/message while accuracy
//! degrades gracefully with the reconstruction error.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::cifar_config;
use skiptrain_core::{AlgorithmSpec, Campaign, ModelCodec, Schedule};

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(4, 4));
    base.eval_every = 8;

    // Top-k fractions are relative to the *simulated* model (energy
    // accounting charges the same fraction of the nominal model). Only
    // fractions below 1/8 transmit fewer bytes than 8-bit quantization
    // (8 bytes per kept parameter vs 1 per parameter).
    let sim_params = base.model_kind().build(0).param_count();
    let codecs = [
        ModelCodec::DenseF32,
        ModelCodec::QuantizedU16,
        ModelCodec::QuantizedU8,
        ModelCodec::TopK {
            k: (sim_params / 16).max(1),
        },
        ModelCodec::TopK {
            k: (sim_params / 64).max(1),
        },
    ];

    banner(&format!(
        "codec frontier: accuracy vs comm energy ({} nodes, {} rounds, skiptrain(4,4))",
        base.nodes, base.rounds
    ));

    let mut campaign = Campaign::new();
    for codec in codecs {
        let mut cfg = base.clone();
        cfg.codec = codec;
        cfg.name = format!("{}/{}", base.name, label(codec, sim_params));
        campaign = campaign.push(cfg);
    }
    let results = campaign.run().expect("valid codec configs");

    let nominal = base.energy.workload.model_params;
    let rows: Vec<Vec<String>> = codecs
        .iter()
        .zip(&results)
        .map(|(codec, r)| {
            vec![
                label(*codec, sim_params),
                codec.charged_message_bytes(sim_params, nominal).to_string(),
                pct(r.final_test.mean_accuracy),
                pct(r.final_test.std_accuracy),
                format!("{:.4}", r.total_comm_wh),
                format!("{:.2}", r.total_training_wh),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "codec",
                "bytes/msg",
                "final acc%",
                "std",
                "comm Wh",
                "train Wh"
            ],
            &rows
        )
    );
    println!(
        "\nreading: every codec shares the identical training trajectory knobs; only\n\
         the share-phase representation differs. Quantized-u8 cuts comm energy ~4x\n\
         below dense at near-identical accuracy; top-k (8 bytes per kept param,\n\
         charged at the same kept fraction of the nominal model) trades accuracy\n\
         for further energy cuts as k shrinks — the compression frontier."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ext_compression",
        "sim_params": sim_params,
        "nominal_params": nominal,
        "codecs": codecs
            .iter()
            .map(|c| label(*c, sim_params))
            .collect::<Vec<_>>(),
        "results": results,
    }));
}

fn label(codec: ModelCodec, sim_params: usize) -> String {
    match codec {
        ModelCodec::TopK { k } => format!("top-k {:.0}%", 100.0 * k as f64 / sim_params as f64),
        other => other.name().to_string(),
    }
}
