//! Compression-scenario extension: the accuracy-vs-communication-energy
//! frontier across model codecs, with and without CHOCO-SGD-style error
//! feedback.
//!
//! Energy-aware FL work (DEAL, Sustainable Federated Learning) treats
//! message compression as a first-class energy knob next to training
//! skips. This harness runs the same experiment under every codec —
//! lossless dense f32, 16/8-bit affine quantization, and top-k magnitude
//! sparsification — and reports where each lands on the
//! (comm energy, accuracy) plane. Because the engine charges energy per
//! effective edge from the codec's actual wire bytes, the comm column
//! shrinks monotonically with the codec's bytes/message while accuracy
//! degrades gracefully with the reconstruction error.
//!
//! Every lossy codec also runs with per-link error feedback
//! (`feedback_beta = 1.0`): the `acc% +EF` column shows how much of the
//! sparsification/quantization loss the residual accumulators recover at
//! *identical* wire bytes. A second table sweeps the top-k kept fraction
//! at fixed feedback — the frontier scenario pinning that aggressive
//! sparsification is only usable with feedback enabled.

use skiptrain_bench::{banner, pct, render_table, HarnessArgs};
use skiptrain_core::presets::cifar_config;
use skiptrain_core::{AlgorithmSpec, Campaign, ExperimentConfig, ModelCodec, Schedule};

/// The β every feedback run uses (full CHOCO-SGD error feedback).
const FEEDBACK_BETA: f32 = 1.0;

fn main() {
    let args = HarnessArgs::parse();
    let mut base = cifar_config(args.scale, args.seed);
    args.apply(&mut base);
    base.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(4, 4));
    base.eval_every = 8;

    // Top-k fractions are relative to the *simulated* model (energy
    // accounting charges the same fraction of the nominal model). Only
    // fractions below 1/8 transmit fewer bytes than 8-bit quantization
    // (8 bytes per kept parameter vs 1 per parameter).
    let sim_params = base.model_kind().build(0).param_count();
    let codecs = [
        ModelCodec::DenseF32,
        ModelCodec::QuantizedU16,
        ModelCodec::QuantizedU8,
        ModelCodec::TopK {
            k: (sim_params / 16).max(1),
        },
        ModelCodec::TopK {
            k: (sim_params / 64).max(1),
        },
    ];

    banner(&format!(
        "codec frontier: accuracy vs comm energy ({} nodes, {} rounds, skiptrain(4,4))",
        base.nodes, base.rounds
    ));

    // One campaign runs every (codec, feedback) cell in parallel over one
    // shared data bundle: plain cells first, then the feedback twin of
    // every lossy codec (feedback on DenseF32 is a no-op by contract).
    let mut campaign = Campaign::new();
    for codec in codecs {
        campaign = campaign.push(cell(&base, codec, false, sim_params));
    }
    let lossy: Vec<ModelCodec> = codecs
        .iter()
        .copied()
        .filter(|c| !c.is_lossless())
        .collect();
    for &codec in &lossy {
        campaign = campaign.push(cell(&base, codec, true, sim_params));
    }
    let results = campaign.run().expect("valid codec configs");
    let (plain, with_ef) = results.split_at(codecs.len());

    let nominal = base.energy.workload.model_params;
    let rows: Vec<Vec<String>> = codecs
        .iter()
        .zip(plain)
        .map(|(codec, r)| {
            let ef_acc = lossy
                .iter()
                .position(|c| c == codec)
                .map(|i| pct(with_ef[i].final_test.mean_accuracy))
                .unwrap_or_else(|| "=".to_string());
            vec![
                label(*codec, sim_params),
                codec.charged_message_bytes(sim_params, nominal).to_string(),
                pct(r.final_test.mean_accuracy),
                ef_acc,
                pct(r.final_test.std_accuracy),
                format!("{:.4}", r.total_comm_wh),
                format!("{:.2}", r.total_training_wh),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "codec",
                "bytes/msg",
                "final acc%",
                "acc% +EF",
                "std",
                "comm Wh",
                "train Wh"
            ],
            &rows
        )
    );
    println!(
        "\nreading: every codec shares the identical training trajectory knobs; only\n\
         the share-phase representation differs. Quantized-u8 cuts comm energy ~4x\n\
         below dense at near-identical accuracy; top-k (8 bytes per kept param,\n\
         charged at the same kept fraction of the nominal model) trades accuracy\n\
         for further energy cuts as k shrinks. The +EF column re-runs each lossy\n\
         codec with per-link error feedback (beta = {FEEDBACK_BETA}): identical wire bytes,\n\
         most of the sparsification loss recovered."
    );

    // --- frontier: sweep k at fixed feedback --------------------------
    banner(&format!(
        "top-k frontier at fixed feedback (beta = {FEEDBACK_BETA})"
    ));
    // The /16 and /64 fractions were already computed by the codec
    // campaign above (byte-identical configs) — only the fractions the
    // main table does not cover run here.
    let fractions = [8usize, 16, 32, 64];
    let fresh: Vec<usize> = fractions
        .iter()
        .copied()
        .filter(|f| ![16, 64].contains(f))
        .collect();
    let mut frontier = Campaign::new();
    for &frac in &fresh {
        let codec = ModelCodec::TopK {
            k: (sim_params / frac).max(1),
        };
        frontier = frontier.push(cell(&base, codec, false, sim_params));
        frontier = frontier.push(cell(&base, codec, true, sim_params));
    }
    let sweep = frontier.run().expect("valid frontier configs");
    let frontier_rows: Vec<Vec<String>> = fractions
        .iter()
        .map(|&frac| {
            let codec = ModelCodec::TopK {
                k: (sim_params / frac).max(1),
            };
            let (p, ef) = if let Some(i) = fresh.iter().position(|&f| f == frac) {
                (&sweep[2 * i], &sweep[2 * i + 1])
            } else {
                let main = codecs
                    .iter()
                    .position(|c| *c == codec)
                    .expect("reused fraction exists in the codec table");
                let ef = lossy
                    .iter()
                    .position(|c| *c == codec)
                    .expect("top-k codecs are lossy");
                (&plain[main], &with_ef[ef])
            };
            vec![
                label(codec, sim_params),
                codec.charged_message_bytes(sim_params, nominal).to_string(),
                pct(p.final_test.mean_accuracy),
                pct(ef.final_test.mean_accuracy),
                format!("{:.4}", p.total_comm_wh),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "codec",
                "bytes/msg",
                "acc% plain",
                "acc% +EF",
                "comm Wh (both)"
            ],
            &frontier_rows
        )
    );
    println!(
        "\nreading: as the kept fraction shrinks, plain top-k pays an accuracy price\n\
         that error feedback recovers at the same per-message bytes — the frontier\n\
         that makes aggressive sparsification (and its comm-energy savings) usable."
    );

    args.maybe_write_json(&serde_json::json!({
        "experiment": "ext_compression",
        "sim_params": sim_params,
        "nominal_params": nominal,
        "feedback_beta": FEEDBACK_BETA,
        "codecs": codecs
            .iter()
            .map(|c| label(*c, sim_params))
            .collect::<Vec<_>>(),
        "results": results,
        "frontier_fractions": fractions.to_vec(),
        // fractions 16 and 64 reuse the codec-table runs above; only the
        // remaining cells appear here (plain/+EF interleaved per fraction)
        "frontier_fresh_fractions": fresh,
        "frontier_results": sweep,
    }));
}

/// One campaign cell: `base` under `codec`, optionally with error
/// feedback, labeled for the report.
fn cell(
    base: &ExperimentConfig,
    codec: ModelCodec,
    feedback: bool,
    sim_params: usize,
) -> ExperimentConfig {
    let mut cfg = base.clone();
    cfg.codec = codec;
    cfg.feedback_beta = feedback.then_some(FEEDBACK_BETA);
    let suffix = if feedback { "+ef" } else { "" };
    cfg.name = format!("{}/{}{}", base.name, label(codec, sim_params), suffix);
    cfg
}

fn label(codec: ModelCodec, sim_params: usize) -> String {
    match codec {
        ModelCodec::TopK { k } => format!("top-k {:.0}%", 100.0 * k as f64 / sim_params as f64),
        other => other.name().to_string(),
    }
}
