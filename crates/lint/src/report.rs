//! Schema-validated `LINT_report.json`, mirroring the
//! `BENCH_round_loop.json` discipline: the binary self-validates the
//! report it emits and CI re-validates it, so the gate cannot silently
//! rot.
//!
//! # Report schema
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "git_rev": "abc1234",
//!   "root": ".",
//!   "files_scanned": 131,
//!   "rules": ["determinism", "no_panic", …],
//!   "counts": { "total": 12, "suppressed": 12, "unsuppressed": 0 },
//!   "findings": [
//!     { "rule": "no_panic", "file": "crates/core/src/campaign.rs",
//!       "line": 575, "column": 30, "message": "…",
//!       "suppressed": true, "reason": "poisoning recovered via into_inner" }
//!   ]
//! }
//! ```
//!
//! [`validate_report`] enforces exactly this shape: the rule list must
//! match the engine's, counts must be consistent with the findings
//! array, suppressed findings must carry a non-empty reason.

use crate::rules::{Finding, RULES};
use serde_json::Value;

/// Current schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Assembles the report object.
pub fn build_report(
    git_rev: &str,
    root: &str,
    files_scanned: usize,
    findings: &[Finding],
) -> Value {
    let suppressed = findings.iter().filter(|f| f.suppressed).count();
    let finding_values: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::String(f.rule.to_string())),
                ("file".to_string(), Value::String(f.file.clone())),
                ("line".to_string(), Value::UInt(f.line as u64)),
                ("column".to_string(), Value::UInt(f.col as u64)),
                ("message".to_string(), Value::String(f.message.clone())),
                ("suppressed".to_string(), Value::Bool(f.suppressed)),
                (
                    "reason".to_string(),
                    f.reason.clone().map(Value::String).unwrap_or(Value::Null),
                ),
            ])
        })
        .collect();
    Value::Object(vec![
        ("schema_version".to_string(), Value::UInt(SCHEMA_VERSION)),
        ("git_rev".to_string(), Value::String(git_rev.to_string())),
        ("root".to_string(), Value::String(root.to_string())),
        (
            "files_scanned".to_string(),
            Value::UInt(files_scanned as u64),
        ),
        (
            "rules".to_string(),
            Value::Array(RULES.iter().map(|r| Value::String(r.to_string())).collect()),
        ),
        (
            "counts".to_string(),
            Value::Object(vec![
                ("total".to_string(), Value::UInt(findings.len() as u64)),
                ("suppressed".to_string(), Value::UInt(suppressed as u64)),
                (
                    "unsuppressed".to_string(),
                    Value::UInt((findings.len() - suppressed) as u64),
                ),
            ]),
        ),
        ("findings".to_string(), Value::Array(finding_values)),
    ])
}

fn field<'a>(v: &'a Value, ctx: &str, key: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing field '{key}'"))
}

fn uint(v: &Value, ctx: &str, key: &str) -> Result<u64, String> {
    field(v, ctx, key)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: '{key}' is not an unsigned integer"))
}

fn string<'a>(v: &'a Value, ctx: &str, key: &str) -> Result<&'a str, String> {
    field(v, ctx, key)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a string"))
}

fn nonempty<'a>(v: &'a Value, ctx: &str, key: &str) -> Result<&'a str, String> {
    let s = string(v, ctx, key)?;
    if s.is_empty() {
        return Err(format!("{ctx}: '{key}' is empty"));
    }
    Ok(s)
}

/// Validates a lint report against the schema documented at module
/// level.
pub fn validate_report(report: &Value) -> Result<(), String> {
    if report.as_object().is_none() {
        return Err("report must be a JSON object".to_string());
    }
    let version = uint(report, "report", "schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "report: schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    nonempty(report, "report", "git_rev")?;
    nonempty(report, "report", "root")?;
    let files = uint(report, "report", "files_scanned")?;
    if files == 0 {
        return Err("report: files_scanned is zero — the scan saw nothing".to_string());
    }

    let rules = field(report, "report", "rules")?
        .as_array()
        .ok_or_else(|| "report: 'rules' is not an array".to_string())?;
    let rule_names: Vec<&str> = rules.iter().filter_map(|r| r.as_str()).collect();
    if rule_names != RULES {
        return Err(format!(
            "report: rule list {rule_names:?} does not match the engine's {RULES:?}"
        ));
    }

    let findings = field(report, "report", "findings")?
        .as_array()
        .ok_or_else(|| "report: 'findings' is not an array".to_string())?;
    let mut suppressed = 0u64;
    for (i, f) in findings.iter().enumerate() {
        let ctx = format!("finding #{i}");
        let rule = nonempty(f, &ctx, "rule")?;
        if !RULES.contains(&rule) {
            return Err(format!("{ctx}: unknown rule '{rule}'"));
        }
        nonempty(f, &ctx, "file")?;
        if uint(f, &ctx, "line")? == 0 || uint(f, &ctx, "column")? == 0 {
            return Err(format!("{ctx}: line/column are 1-based, got zero"));
        }
        nonempty(f, &ctx, "message")?;
        let is_suppressed = field(f, &ctx, "suppressed")?
            .as_bool()
            .ok_or_else(|| format!("{ctx}: 'suppressed' is not a bool"))?;
        let reason = field(f, &ctx, "reason")?;
        if is_suppressed {
            suppressed += 1;
            if reason.as_str().is_none_or(|r| r.trim().is_empty()) {
                return Err(format!(
                    "{ctx}: suppressed finding must carry a non-empty reason"
                ));
            }
        } else if !reason.is_null() {
            return Err(format!("{ctx}: unsuppressed finding must have null reason"));
        }
    }

    let counts = field(report, "report", "counts")?;
    let total = uint(counts, "counts", "total")?;
    let sup = uint(counts, "counts", "suppressed")?;
    let unsup = uint(counts, "counts", "unsuppressed")?;
    if total != findings.len() as u64 {
        return Err(format!(
            "counts.total {total} != findings array length {}",
            findings.len()
        ));
    }
    if sup != suppressed {
        return Err(format!(
            "counts.suppressed {sup} != suppressed findings {suppressed}"
        ));
    }
    if sup + unsup != total {
        return Err(format!(
            "counts do not add up: {sup} suppressed + {unsup} unsuppressed != {total} total"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_finding(suppressed: bool) -> Finding {
        Finding {
            rule: "no_panic",
            file: "crates/core/src/x.rs".to_string(),
            line: 10,
            col: 5,
            message: "example".to_string(),
            suppressed,
            reason: suppressed.then(|| "provably infallible".to_string()),
        }
    }

    #[test]
    fn built_report_round_trips_and_validates() {
        let report = build_report(
            "abc1234",
            ".",
            42,
            &[sample_finding(true), sample_finding(false)],
        );
        validate_report(&report).expect("fresh report must validate");
        let text = serde_json::to_string_pretty(&report).expect("serializes");
        let parsed: Value = serde_json::from_str(&text).expect("parses");
        validate_report(&parsed).expect("parsed report must validate");
    }

    #[test]
    fn zero_files_scanned_is_rejected() {
        let report = build_report("rev", ".", 0, &[]);
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("files_scanned"), "{err}");
    }

    #[test]
    fn suppressed_without_reason_is_rejected() {
        let mut f = sample_finding(true);
        f.reason = None;
        let report = build_report("rev", ".", 1, &[f]);
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let report = build_report("rev", ".", 1, &[sample_finding(false)]);
        // corrupt the counts object
        let Value::Object(mut fields) = report else {
            panic!("report is an object")
        };
        for (k, v) in &mut fields {
            if k == "counts" {
                *v = Value::Object(vec![
                    ("total".to_string(), Value::UInt(5)),
                    ("suppressed".to_string(), Value::UInt(0)),
                    ("unsuppressed".to_string(), Value::UInt(5)),
                ]);
            }
        }
        let err = validate_report(&Value::Object(fields)).unwrap_err();
        assert!(err.contains("counts.total"), "{err}");
    }

    #[test]
    fn rule_list_drift_is_rejected() {
        let report = build_report("rev", ".", 1, &[]);
        let Value::Object(mut fields) = report else {
            panic!("report is an object")
        };
        for (k, v) in &mut fields {
            if k == "rules" {
                *v = Value::Array(vec![Value::String("no_panic".to_string())]);
            }
        }
        let err = validate_report(&Value::Object(fields)).unwrap_err();
        assert!(err.contains("rule list"), "{err}");
    }

    #[test]
    fn empty_git_rev_is_rejected() {
        let report = build_report("", ".", 1, &[]);
        assert!(validate_report(&report).is_err());
    }
}
