//! `lint:allow` suppression pragmas.
//!
//! A finding is suppressable only by an explicit, *reasoned* pragma in a
//! comment on the same line or the line directly above:
//!
//! ```text
//! // lint:allow(no_panic, "mutex poisoning is recovered two lines up")
//! let state = lock.lock().unwrap();
//! ```
//!
//! The reason is mandatory — a pragma without one, with an empty reason,
//! or naming an unknown rule is itself reported (rule `pragma`) and can
//! never be suppressed, so the suppression surface stays auditable.

use crate::lexer::Tok;
use crate::rules::RULES;

/// One parsed `lint:allow` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule the pragma suppresses.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line of the pragma comment.
    pub line: u32,
}

/// A malformed pragma, reported as a finding by the engine.
#[derive(Debug, Clone)]
pub struct BadPragma {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts every well-formed and malformed pragma from the comment
/// tokens of a file.
pub fn collect(toks: &[Tok]) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for tok in toks.iter().filter(|t| t.is_comment()) {
        let mut rest = tok.text.as_str();
        while let Some(at) = rest.find("lint:allow") {
            rest = &rest[at + "lint:allow".len()..];
            // only an attempted suppression — the pragma name directly
            // followed by an open paren — is parsed; prose that merely
            // mentions the pragma name is not a finding
            if !rest.trim_start().starts_with('(') {
                continue;
            }
            match parse_one(rest) {
                Ok((pragma_rule, reason, consumed)) => {
                    if !RULES.contains(&pragma_rule.as_str()) {
                        bad.push(BadPragma {
                            line: tok.line,
                            message: format!(
                                "lint:allow names unknown rule '{pragma_rule}' (known: {})",
                                RULES.join(", ")
                            ),
                        });
                    } else if reason.trim().is_empty() {
                        bad.push(BadPragma {
                            line: tok.line,
                            message: format!(
                                "lint:allow({pragma_rule}, …) has an empty reason; \
                                 a justification is mandatory"
                            ),
                        });
                    } else {
                        pragmas.push(Pragma {
                            rule: pragma_rule,
                            reason,
                            line: tok.line,
                        });
                    }
                    rest = &rest[consumed..];
                }
                Err(msg) => {
                    bad.push(BadPragma {
                        line: tok.line,
                        message: msg,
                    });
                    break;
                }
            }
        }
    }
    (pragmas, bad)
}

/// Parses `(rule, "reason")` at the start of `rest`, returning the rule,
/// the reason, and how many bytes were consumed.
fn parse_one(rest: &str) -> Result<(String, String, usize), String> {
    let bytes = rest.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i] as char).is_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'(') {
        return Err("lint:allow must be followed by (rule, \"reason\")".to_string());
    }
    i += 1;
    skip_ws(&mut i);
    let rule_start = i;
    while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    if i == rule_start {
        return Err("lint:allow(…) is missing a rule name".to_string());
    }
    let rule = rest[rule_start..i].to_string();
    skip_ws(&mut i);
    if bytes.get(i) != Some(&b',') {
        return Err(format!(
            "lint:allow({rule}) is missing the mandatory \", \\\"reason\\\"\" part"
        ));
    }
    i += 1;
    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'"') {
        return Err(format!(
            "lint:allow({rule}, …) reason must be a quoted string"
        ));
    }
    i += 1;
    let reason_start = i;
    while i < bytes.len() && bytes[i] != b'"' {
        i += 1;
    }
    if i == bytes.len() {
        return Err(format!(
            "lint:allow({rule}, \"… reason string is unterminated"
        ));
    }
    let reason = rest[reason_start..i].to_string();
    i += 1;
    skip_ws(&mut i);
    if bytes.get(i) != Some(&b')') {
        return Err(format!(
            "lint:allow({rule}, \"…\") is missing the closing ')'"
        ));
    }
    Ok((rule, reason, i + 1))
}

impl Pragma {
    /// True when this pragma suppresses a finding of `rule` at `line`:
    /// same line (trailing comment) or the line directly below the
    /// pragma's own line.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (self.line == line || self.line + 1 == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Pragma>, Vec<BadPragma>) {
        collect(&lex(src))
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (ok, bad) = parse("// lint:allow(no_panic, \"provably infallible: len checked\")\nx");
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rule, "no_panic");
        assert_eq!(ok[0].reason, "provably infallible: len checked");
        assert!(ok[0].covers("no_panic", 1));
        assert!(ok[0].covers("no_panic", 2));
        assert!(!ok[0].covers("no_panic", 3));
        assert!(!ok[0].covers("determinism", 2));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let (ok, bad) = parse("// lint:allow(no_panic)");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("reason"), "{}", bad[0].message);
    }

    #[test]
    fn empty_reason_is_rejected() {
        let (ok, bad) = parse("// lint:allow(no_panic, \"  \")");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("empty reason"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let (ok, bad) = parse("// lint:allow(no_such_rule, \"because\")");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn pragma_in_block_comment_works() {
        let (ok, bad) = parse("/* lint:allow(determinism, \"keyed lookup only\") */ x");
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rule, "determinism");
    }

    #[test]
    fn prose_mention_is_not_a_pragma() {
        // a comment *discussing* the pragma name without attempting a
        // suppression (no parenthesis) is ignored…
        let (ok, bad) = parse("// see the lint:allow docs for details");
        assert!(ok.is_empty());
        assert!(bad.is_empty());
        // …but an attempted suppression with a broken shape is reported
        let (ok, bad) = parse("// lint:allow(no_panic missing comma)");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn two_pragmas_in_one_comment() {
        let (ok, bad) = parse("// lint:allow(no_panic, \"a\") lint:allow(determinism, \"b\")");
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(ok.len(), 2);
    }
}
