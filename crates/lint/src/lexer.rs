//! A hand-rolled Rust lexer: just enough token structure for invariant
//! linting.
//!
//! The rules in this crate only need to tell identifiers, punctuation,
//! literals, and comments apart — with *correct* string/comment
//! boundaries, so that `panic!` inside a doc comment or `".unwrap()"`
//! inside a string literal never yields a finding. The lexer therefore
//! handles the full Rust literal surface (escaped strings, raw strings
//! with arbitrary `#` fences, byte strings, char-vs-lifetime
//! disambiguation, nested block comments) but deliberately does not
//! classify keywords, glue multi-character operators, or build a syntax
//! tree: rules match token *sequences* (`Instant` `::` `now`), which is
//! robust to formatting and needs no grammar.
//!
//! Unterminated constructs at end of file lex to a final token covering
//! the rest of the input instead of failing: a lint pass must degrade
//! gracefully on files that do not parse.

/// Token classification, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type` → `type`).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, char and byte-char
    /// literals.
    Literal,
    /// Numeric literal.
    Num,
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Raw source text (raw identifiers are stored without the `r#`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True for comment tokens (insignificant to the rule matchers).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes chars while `pred` holds, appending to `out`.
    fn take_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        self.take_while(&mut s, is_ident_continue);
        s
    }

    /// `"…"` body after the opening quote, honoring `\` escapes.
    fn quoted_string(&mut self, out: &mut String) {
        while let Some(c) = self.bump() {
            out.push(c);
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        out.push(e);
                    }
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// `r#"…"#` body after the `r` prefix: counts the `#` fence, then
    /// scans for `"` followed by the same fence.
    fn raw_string(&mut self, out: &mut String) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            out.push('#');
            self.bump();
        }
        if self.peek(0) != Some('"') {
            return; // not actually a raw string; degrade gracefully
        }
        out.push('"');
        self.bump();
        while let Some(c) = self.bump() {
            out.push(c);
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some('#') {
                    matched += 1;
                    out.push('#');
                    self.bump();
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    /// Char or byte-char literal body after the opening `'`.
    fn char_literal(&mut self, out: &mut String) {
        while let Some(c) = self.bump() {
            out.push(c);
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        out.push(e);
                    }
                }
                '\'' => return,
                _ => {}
            }
        }
    }

    /// True when a `'` at the current position starts a lifetime rather
    /// than a char literal: `'ident` not followed by a closing quote.
    fn quote_is_lifetime(&self) -> bool {
        let Some(first) = self.peek(0) else {
            return false;
        };
        if !is_ident_start(first) {
            return false;
        }
        // scan the identifier run; a closing `'` right after makes it a
        // char literal ('a'), anything else a lifetime ('a, 'static)
        let mut k = 1;
        while let Some(c) = self.peek(k) {
            if is_ident_continue(c) {
                k += 1;
            } else {
                break;
            }
        }
        self.peek(k) != Some('\'')
    }

    fn number(&mut self) -> String {
        let mut s = String::new();
        loop {
            self.take_while(&mut s, is_ident_continue);
            // fractional part: only consume `.` when a digit follows, so
            // ranges (`0..n`) and method calls (`1.max(x)`) stay intact
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                s.push('.');
                self.bump();
                continue;
            }
            // exponent sign: `1e-3` / `2.5E+7`
            if s.ends_with(['e', 'E'])
                && matches!(self.peek(0), Some('+' | '-'))
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                s.push(self.peek(0).unwrap_or('+'));
                self.bump();
                continue;
            }
            break;
        }
        s
    }
}

/// Lexes `src` into a token stream. Comments are kept as tokens; the
/// rule engine filters them out of the significant stream but uses them
/// for `SAFETY:` checks and `lint:allow` pragmas.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        let mut push = |kind, text| {
            toks.push(Tok {
                kind,
                text,
                line,
                col,
            })
        };
        match c {
            c if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => {
                let mut s = String::new();
                lx.take_while(&mut s, |c| c != '\n');
                push(TokKind::LineComment, s);
            }
            '/' if lx.peek(1) == Some('*') => {
                let mut s = String::from("/*");
                lx.bump();
                lx.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            s.push_str("/*");
                            lx.bump();
                            lx.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            s.push_str("*/");
                            lx.bump();
                            lx.bump();
                        }
                        (Some(c), _) => {
                            s.push(c);
                            lx.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(TokKind::BlockComment, s);
            }
            '"' => {
                let mut s = String::from('"');
                lx.bump();
                lx.quoted_string(&mut s);
                push(TokKind::Literal, s);
            }
            '\'' => {
                lx.bump();
                if lx.quote_is_lifetime() {
                    let mut s = String::from('\'');
                    s.push_str(&lx.ident());
                    push(TokKind::Lifetime, s);
                } else {
                    let mut s = String::from('\'');
                    lx.char_literal(&mut s);
                    push(TokKind::Literal, s);
                }
            }
            'r' if matches!(lx.peek(1), Some('"' | '#')) => {
                // raw string r"…" / r#"…"#, or a raw identifier r#name
                if lx.peek(1) == Some('#') && lx.peek(2).is_some_and(is_ident_start) {
                    lx.bump(); // r
                    lx.bump(); // #
                    let name = lx.ident();
                    push(TokKind::Ident, name);
                } else {
                    let mut s = String::from('r');
                    lx.bump();
                    lx.raw_string(&mut s);
                    push(TokKind::Literal, s);
                }
            }
            'b' if matches!(lx.peek(1), Some('"' | '\'')) => {
                let mut s = String::from('b');
                lx.bump();
                match lx.bump() {
                    Some('"') => {
                        s.push('"');
                        lx.quoted_string(&mut s);
                    }
                    Some('\'') => {
                        s.push('\'');
                        lx.char_literal(&mut s);
                    }
                    _ => {}
                }
                push(TokKind::Literal, s);
            }
            'b' if lx.peek(1) == Some('r') && matches!(lx.peek(2), Some('"' | '#')) => {
                let mut s = String::from("br");
                lx.bump();
                lx.bump();
                lx.raw_string(&mut s);
                push(TokKind::Literal, s);
            }
            c if is_ident_start(c) => {
                let s = lx.ident();
                push(TokKind::Ident, s);
            }
            c if c.is_ascii_digit() => {
                let s = lx.number();
                push(TokKind::Num, s);
            }
            c => {
                lx.bump();
                push(TokKind::Punct, c.to_string());
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn sig_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_comment())
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("fn main() {\n  x.unwrap();\n}");
        assert_eq!(toks[0].text, "fn");
        assert_eq!(toks[0].kind, TokKind::Ident);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("unwrap");
        assert_eq!(unwrap.line, 2);
        assert_eq!(unwrap.kind, TokKind::Ident);
    }

    #[test]
    fn strings_hide_their_contents() {
        // `.unwrap()` and `panic!` inside string literals must not appear
        // as identifier tokens
        let texts = sig_texts(r#"let s = "x.unwrap() panic!"; f(s);"#);
        assert!(!texts.contains(&"unwrap".to_string()));
        assert!(!texts.contains(&"panic".to_string()));
        assert!(texts.contains(&"\"x.unwrap() panic!\"".to_string()));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = kinds(r#"let s = "a\"b.unwrap()\"c"; y"#);
        let lit = toks
            .iter()
            .find(|(k, _)| *k == TokKind::Literal)
            .expect("literal");
        assert!(lit.1.contains("unwrap"));
        assert!(toks.iter().any(|(_, t)| t == "y"), "lexing continues");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"contains \"quotes\" and .unwrap()\"#; tail";
        let texts = sig_texts(src);
        assert!(!texts.contains(&"unwrap".to_string()));
        assert!(texts.contains(&"tail".to_string()));
        // double fence
        let texts = sig_texts("r##\"inner \"# still inside\"## end");
        assert!(texts.contains(&"end".to_string()));
        assert_eq!(texts.len(), 2);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let texts = sig_texts(r#"let a = b"panic!"; let c = b'x'; z"#);
        assert!(!texts.contains(&"panic".to_string()));
        assert!(texts.contains(&"z".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let toks = lex("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "type"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str, c: char) { let y = 'q'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'q'"));
    }

    #[test]
    fn escaped_char_literals() {
        for src in ["'\\''", "'\\n'", "'\\u{1F600}'", "'\\\\'"] {
            let toks = lex(&format!("let c = {src}; tail"));
            assert!(
                toks.iter().any(|t| t.text == "tail"),
                "lexer lost sync after {src}"
            );
            assert!(toks.iter().any(|t| t.kind == TokKind::Literal));
        }
    }

    #[test]
    fn line_comments_keep_code_out_of_the_sig_stream() {
        let texts = sig_texts("x; // panic!(\"boom\").unwrap()\ny;");
        assert_eq!(texts, vec!["x", ";", "y", ";"]);
    }

    #[test]
    fn nested_block_comments() {
        let texts = sig_texts("a /* outer /* inner .unwrap() */ still out */ b");
        assert_eq!(texts, vec!["a", "b"]);
    }

    #[test]
    fn doc_comments_with_code_fences_are_comments() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn documented() {}";
        let texts = sig_texts(src);
        assert!(!texts.contains(&"unwrap".to_string()));
        assert!(texts.contains(&"documented".to_string()));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let texts = sig_texts("for i in 0..n { let x = 1.5e-3; let y = 2.max(i); }");
        assert!(texts.contains(&"0".to_string()));
        assert!(texts.contains(&"1.5e-3".to_string()));
        assert!(texts.contains(&"2".to_string()));
        assert!(texts.contains(&"max".to_string()));
        // the two dots of the range survive as puncts
        assert_eq!(texts.iter().filter(|t| *t == ".").count(), 3);
    }

    #[test]
    fn hex_and_underscored_literals() {
        let texts = sig_texts("let m = 0x9E37_79B9; let k = 1_000_000u64;");
        assert!(texts.contains(&"0x9E37_79B9".to_string()));
        assert!(texts.contains(&"1_000_000u64".to_string()));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b\"open"] {
            let _ = lex(src); // must not panic or loop forever
        }
    }

    #[test]
    fn multichar_operators_split_into_single_puncts() {
        let texts = sig_texts("a::b; c << 2; d ^= e;");
        assert_eq!(texts.iter().filter(|t| *t == ":").count(), 2);
        assert_eq!(texts.iter().filter(|t| *t == "<").count(), 2);
        assert!(texts.contains(&"^".to_string()));
        assert!(texts.contains(&"=".to_string()));
    }
}
