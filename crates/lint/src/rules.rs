//! The five invariant rule families, as token-sequence matchers.
//!
//! | rule            | scope                         | what it catches |
//! |-----------------|-------------------------------|-----------------|
//! | `determinism`   | library crates, non-test      | wall-clock time (`Instant`, `SystemTime`), unseeded RNG (`thread_rng`, `from_entropy`), `HashMap`/`HashSet` (iteration-order nondeterminism) |
//! | `no_panic`      | library crates, non-test      | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `hot_path_alloc`| manifest-listed function bodies | `Vec::new`, `vec![]`, `.to_vec()`, `.collect()`, `.clone()`, `Box::new`, `format!`, … |
//! | `seed_stream`   | library crates, non-test      | raw arithmetic on seed values outside the `derive_seed` helper family |
//! | `unsafe_hygiene`| every scanned file            | `unsafe` without a `// SAFETY:` comment directly above |
//!
//! Findings are suppressable only via a reasoned `lint:allow` pragma
//! (see [`crate::pragma`]); malformed pragmas surface under the sixth,
//! unsuppressable rule name `pragma`.

use crate::lexer::{lex, Tok, TokKind};
use crate::pragma;
use crate::scope::{self, Scopes};
use std::collections::BTreeMap;

/// Every rule name the engine can emit (and a pragma can name).
pub const RULES: &[&str] = &[
    "determinism",
    "no_panic",
    "hot_path_alloc",
    "seed_stream",
    "unsafe_hygiene",
    "pragma",
];

/// Functions allowed to do raw seed arithmetic — the sanctioned
/// derivation helpers. Arithmetic is also sanctioned when it appears
/// directly as an argument to a call of one of these (the pervasive
/// `derive_seed(seed ^ STREAM_TAG, i)` tag idiom).
pub const SEED_HELPERS: &[&str] = &["derive_seed", "round_seed", "retry_seed", "stream_rng"];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule family (one of [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// True when a reasoned `lint:allow` pragma covers it.
    pub suppressed: bool,
    /// The pragma's reason, when suppressed.
    pub reason: Option<String>,
}

/// Per-file rule configuration, derived from the file's workspace
/// location by the caller.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Apply `determinism`, `no_panic`, and `seed_stream` (library-crate
    /// source files).
    pub lib_rules: bool,
    /// Manifest-listed hot-path function names in this file.
    pub hot_fns: Vec<String>,
}

/// Lints one file. `rel_path` is the repo-relative path used in
/// findings; `class` selects which rule families apply (`unsafe_hygiene`
/// and `pragma` always do).
pub fn check_file(rel_path: &str, src: &str, class: &FileClass) -> Vec<Finding> {
    let toks = lex(src);
    let sig: Vec<Tok> = toks.iter().filter(|t| !t.is_comment()).cloned().collect();
    let scopes = scope::analyze(&sig);
    let (pragmas, bad_pragmas) = pragma::collect(&toks);

    // line → concatenated comment text (SAFETY lookups), and the set of
    // lines carrying significant tokens (comment-contiguity checks)
    let mut comment_lines: BTreeMap<u32, String> = BTreeMap::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        for (line, piece) in (t.line..).zip(t.text.split('\n')) {
            comment_lines.entry(line).or_default().push_str(piece);
        }
    }
    let mut sig_lines: Vec<u32> = sig.iter().map(|t| t.line).collect();
    sig_lines.dedup();

    let mut findings = Vec::new();
    let mut emit = |rule: &'static str, tok: &Tok, message: String| {
        findings.push(Finding {
            rule,
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            suppressed: false,
            reason: None,
        });
    };

    if class.lib_rules {
        determinism(&sig, &scopes, &mut emit);
        no_panic(&sig, &scopes, &mut emit);
        seed_stream(&sig, &scopes, &mut emit);
    }
    if !class.hot_fns.is_empty() {
        hot_path_alloc(&sig, &scopes, &class.hot_fns, &mut emit);
    }
    unsafe_hygiene(&sig, &comment_lines, &sig_lines, &mut emit);

    // malformed pragmas are findings of the unsuppressable `pragma` rule
    for bp in bad_pragmas {
        findings.push(Finding {
            rule: "pragma",
            file: rel_path.to_string(),
            line: bp.line,
            col: 1,
            message: bp.message,
            suppressed: false,
            reason: None,
        });
    }

    // apply suppressions
    for f in &mut findings {
        if f.rule == "pragma" {
            continue;
        }
        if let Some(p) = pragmas.iter().find(|p| p.covers(f.rule, f.line)) {
            f.suppressed = true;
            f.reason = Some(p.reason.clone());
        }
    }
    findings
}

fn determinism(sig: &[Tok], scopes: &Scopes, emit: &mut impl FnMut(&'static str, &Tok, String)) {
    for (i, tok) in sig.iter().enumerate() {
        if tok.kind != TokKind::Ident || scopes.in_test(i) {
            continue;
        }
        let msg = match tok.text.as_str() {
            "HashMap" | "HashSet" => Some(format!(
                "{} has nondeterministic iteration order; use BTreeMap/BTreeSet \
                 (or a sorted map like LinkMap) in result-producing code",
                tok.text
            )),
            "Instant" | "SystemTime" => Some(format!(
                "wall-clock time source {} in library code breaks run-to-run \
                 reproducibility; thread virtual time through instead",
                tok.text
            )),
            "thread_rng" | "from_entropy" => Some(format!(
                "{} draws entropy outside the seed chain; derive every stream \
                 from an explicit seed via derive_seed",
                tok.text
            )),
            _ => None,
        };
        if let Some(m) = msg {
            emit("determinism", tok, m);
        }
    }
}

fn no_panic(sig: &[Tok], scopes: &Scopes, emit: &mut impl FnMut(&'static str, &Tok, String)) {
    for (i, tok) in sig.iter().enumerate() {
        if tok.kind != TokKind::Ident || scopes.in_test(i) {
            continue;
        }
        match tok.text.as_str() {
            "unwrap" | "expect" if i > 0 && sig[i - 1].text == "." => {
                emit(
                    "no_panic",
                    tok,
                    format!(
                        ".{}() can panic mid-campaign; return a typed error, or \
                         justify provable infallibility with lint:allow",
                        tok.text
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if sig.get(i + 1).is_some_and(|t| t.text == "!") =>
            {
                emit(
                    "no_panic",
                    tok,
                    format!(
                        "{}! aborts the cell instead of failing it with a typed \
                         error a resilient campaign can isolate",
                        tok.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Allocating `Type::method` pairs and method calls policed inside
/// hot-path functions.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "Box", "String", "Arc", "Rc", "VecDeque", "BTreeMap", "HashMap",
];
const ALLOC_TYPE_METHODS: &[&str] = &["new", "with_capacity", "from"];
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "collect",
    "clone",
    "to_string",
    "to_owned",
    "into_owned",
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn hot_path_alloc(
    sig: &[Tok],
    scopes: &Scopes,
    hot_fns: &[String],
    emit: &mut impl FnMut(&'static str, &Tok, String),
) {
    for span in scopes.fns.iter().filter(|f| hot_fns.contains(&f.name)) {
        for i in span.body_start..span.body_end.min(sig.len()) {
            let tok = &sig[i];
            if tok.kind != TokKind::Ident {
                continue;
            }
            let text = tok.text.as_str();
            let what = if ALLOC_TYPES.contains(&text)
                && sig.get(i + 1).is_some_and(|t| t.text == ":")
                && sig.get(i + 2).is_some_and(|t| t.text == ":")
                && sig
                    .get(i + 3)
                    .is_some_and(|t| ALLOC_TYPE_METHODS.contains(&t.text.as_str()))
            {
                Some(format!("{text}::{}", sig[i + 3].text))
            } else if ALLOC_METHODS.contains(&text) && i > 0 && sig[i - 1].text == "." {
                Some(format!(".{text}()"))
            } else if ALLOC_MACROS.contains(&text) && sig.get(i + 1).is_some_and(|t| t.text == "!")
            {
                Some(format!("{text}!"))
            } else {
                None
            };
            if let Some(w) = what {
                emit(
                    "hot_path_alloc",
                    tok,
                    format!(
                        "{w} allocates inside hot-path fn `{}`; reuse scratch \
                         buffers across rounds instead",
                        span.name
                    ),
                );
            }
        }
    }
}

/// True for identifiers the seed rule treats as seed values.
fn is_seed_ident(t: &Tok) -> bool {
    t.kind == TokKind::Ident && (t.text == "seed" || t.text.ends_with("_seed"))
}

/// Binary operators that walk or alias a seed stream when applied to a
/// raw seed. `&` and `*` are only checked on the right of the seed (a
/// leading `&`/`*` is a borrow/deref), `-` only on the right (a leading
/// `-` may be unary). `|` is not matched at all: single `|` tokens are
/// overwhelmingly closure-parameter fences and `||`, and the observed
/// seed-aliasing bugs (PR 2 transport streams, PR 5 gossip matching)
/// were all `+`/`^` walks.
const SEED_OPS_AFTER: &[&str] = &["+", "^", "*", "-", "&", "%"];
const SEED_OPS_BEFORE: &[&str] = &["+", "^", "%"];
const SEED_METHODS: &[&str] = &[
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "wrapping_xor",
    "rotate_left",
    "rotate_right",
];

fn seed_stream(sig: &[Tok], scopes: &Scopes, emit: &mut impl FnMut(&'static str, &Tok, String)) {
    for (i, tok) in sig.iter().enumerate() {
        if !is_seed_ident(tok) || scopes.in_test(i) {
            continue;
        }
        let next = sig.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
        let next2 = sig.get(i + 2).map(|t| t.text.as_str()).unwrap_or("");
        let prev = if i > 0 { sig[i - 1].text.as_str() } else { "" };
        let prev2 = if i > 1 { sig[i - 2].text.as_str() } else { "" };
        let arithmetic = (SEED_OPS_AFTER.contains(&next) && !(next == "&" && next2 == "&"))
            || (next == "<" && next2 == "<")
            || (next == ">" && next2 == ">")
            || (next == "." && SEED_METHODS.contains(&next2))
            || SEED_OPS_BEFORE.contains(&prev)
            || (prev == "<" && prev2 == "<")
            || (prev == ">" && prev2 == ">");
        if !arithmetic {
            continue;
        }
        if sanctioned(sig, scopes, i) {
            continue;
        }
        emit(
            "seed_stream",
            tok,
            format!(
                "raw arithmetic on `{}` walks/aliases the seed stream; chain \
                 through derive_seed (or tag inside a derive_seed call) instead",
                tok.text
            ),
        );
    }
}

/// True when the seed arithmetic at significant-token `i` is sanctioned:
/// inside the body of a [`SEED_HELPERS`] function, or directly inside a
/// call to one (`derive_seed(seed ^ TAG, …)`).
fn sanctioned(sig: &[Tok], scopes: &Scopes, i: usize) -> bool {
    if let Some(f) = scopes.enclosing_fn(i) {
        if SEED_HELPERS.contains(&f.name.as_str()) {
            return true;
        }
    }
    // innermost unclosed '(' before i: if the token before it is a
    // sanctioned helper name, the arithmetic is a tag feeding the chain
    let floor = scopes.enclosing_fn(i).map(|f| f.body_start).unwrap_or(0);
    let mut balance = 0i32;
    for j in (floor..i).rev() {
        match sig[j].text.as_str() {
            ")" => balance += 1,
            "(" => {
                if balance == 0 {
                    return j > 0
                        && sig[j - 1].kind == TokKind::Ident
                        && SEED_HELPERS.contains(&sig[j - 1].text.as_str());
                }
                balance -= 1;
            }
            _ => {}
        }
    }
    false
}

fn unsafe_hygiene(
    sig: &[Tok],
    comment_lines: &BTreeMap<u32, String>,
    sig_lines: &[u32],
    emit: &mut impl FnMut(&'static str, &Tok, String),
) {
    for (i, tok) in sig.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "unsafe" {
            continue;
        }
        // `unsafe fn` *declares* a contract rather than using one; the
        // workspace denies `unsafe_op_in_unsafe_fn`, so every operation
        // inside such a function still needs an `unsafe {}` block, and
        // that block is where this rule demands the SAFETY comment.
        if sig.get(i + 1).is_some_and(|t| t.text == "fn") {
            continue;
        }
        if has_safety_comment(tok.line, comment_lines, sig_lines) {
            continue;
        }
        emit(
            "unsafe_hygiene",
            tok,
            "`unsafe` without a `// SAFETY:` comment directly above \
             documenting why the contract holds"
                .to_string(),
        );
    }
}

/// A `SAFETY:` comment covers an `unsafe` at `line` when it appears on
/// the same line or in the contiguous comment block ending directly
/// above it (blank lines allowed, intervening code lines not).
fn has_safety_comment(line: u32, comment_lines: &BTreeMap<u32, String>, sig_lines: &[u32]) -> bool {
    let is_code_line = |l: u32| sig_lines.binary_search(&l).is_ok();
    if comment_lines
        .get(&line)
        .is_some_and(|c| c.contains("SAFETY:"))
    {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        match comment_lines.get(&l) {
            Some(c) if c.contains("SAFETY:") => return true,
            Some(_) => continue,
            None if is_code_line(l) => return false,
            None => continue, // blank line
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_findings(src: &str) -> Vec<Finding> {
        check_file(
            "crates/engine/src/x.rs",
            src,
            &FileClass {
                lib_rules: true,
                hot_fns: Vec::new(),
            },
        )
    }

    fn unsuppressed(findings: &[Finding], rule: &str) -> usize {
        findings
            .iter()
            .filter(|f| f.rule == rule && !f.suppressed)
            .count()
    }

    #[test]
    fn unwrap_fires_only_outside_tests() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); z.expect(\"m\"); } }";
        let f = lib_findings(src);
        assert_eq!(unsuppressed(&f, "no_panic"), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn panic_macros_fire() {
        let f = lib_findings("fn f() { panic!(\"x\"); unreachable!(); todo!(); }");
        assert_eq!(unsuppressed(&f, "no_panic"), 3);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let f =
            lib_findings("fn f() { x.unwrap_or(0); y.unwrap_or_else(d); z.unwrap_or_default(); }");
        assert_eq!(unsuppressed(&f, "no_panic"), 0);
    }

    #[test]
    fn hashmap_fires_and_btreemap_does_not() {
        let f = lib_findings("use std::collections::HashMap;\nfn f(m: &HashMap<u32, f32>) {}");
        assert_eq!(unsuppressed(&f, "determinism"), 2);
        let f = lib_findings("use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, f32>) {}");
        assert_eq!(unsuppressed(&f, "determinism"), 0);
    }

    #[test]
    fn instant_now_fires() {
        let f = lib_findings("fn f() { let t = Instant::now(); }");
        assert_eq!(unsuppressed(&f, "determinism"), 1);
    }

    #[test]
    fn pragma_suppresses_with_reason() {
        let src = "fn f() {\n    // lint:allow(no_panic, \"len checked two lines up\")\n    x.unwrap();\n}";
        let f = lib_findings(src);
        let finding = f.iter().find(|f| f.rule == "no_panic").expect("finding");
        assert!(finding.suppressed);
        assert_eq!(finding.reason.as_deref(), Some("len checked two lines up"));
    }

    #[test]
    fn trailing_pragma_suppresses_same_line() {
        let src = "fn f() { x.unwrap(); // lint:allow(no_panic, \"infallible: just pushed\")\n}";
        let f = lib_findings(src);
        assert_eq!(unsuppressed(&f, "no_panic"), 0);
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src = "// lint:allow(determinism, \"wrong rule\")\nfn f() { x.unwrap(); }";
        let f = lib_findings(src);
        assert_eq!(unsuppressed(&f, "no_panic"), 1);
    }

    #[test]
    fn seed_arithmetic_fires_outside_helpers() {
        let f = lib_findings("fn f(seed: u64, t: u64) -> u64 { seed + t }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 1);
        let f = lib_findings("fn f(base_seed: u64) -> u64 { base_seed ^ 0x3A7C }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 1);
        let f = lib_findings("fn f(seed: u64) -> u64 { seed.wrapping_add(1) }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 1);
    }

    #[test]
    fn seed_arithmetic_sanctioned_in_helpers_and_their_calls() {
        // inside derive_seed itself
        let f = lib_findings(
            "fn derive_seed(seed: u64, stream: u64) -> u64 { seed ^ stream.wrapping_mul(3) }",
        );
        assert_eq!(unsuppressed(&f, "seed_stream"), 0);
        // the tag idiom: arithmetic directly inside a derive_seed call
        let f = lib_findings("fn f(seed: u64, r: u64) -> u64 { derive_seed(seed ^ 0xD50F, r) }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 0);
        // nested chain
        let f = lib_findings(
            "fn f(seed: u64, r: u64, s: u64) -> u64 { derive_seed(derive_seed(seed ^ 0xC0F7, r), s) }",
        );
        assert_eq!(unsuppressed(&f, "seed_stream"), 0);
        // …but through an unsanctioned call it still fires
        let f = lib_findings("fn f(seed: u64) -> u64 { helper(seed + 1) }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 1);
    }

    #[test]
    fn seed_comparisons_borrows_and_closures_do_not_fire() {
        let f = lib_findings("fn f(seed: u64, n: u64) -> bool { g(&seed); seed < n || seed == 3 }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 0);
        let f = lib_findings("fn f(xs: &[u64]) { xs.iter().map(|seed| g(*seed)); }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 0);
        let f = lib_findings("fn f(seed: u64, flag: bool) -> bool { flag && seed == 1 }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 0);
    }

    #[test]
    fn field_access_seed_arithmetic_fires() {
        let f = lib_findings("fn f(c: &Cfg) -> u64 { c.seed ^ 1 }");
        assert_eq!(unsuppressed(&f, "seed_stream"), 1);
    }

    #[test]
    fn hot_path_rule_scopes_to_manifest_fns() {
        let class = FileClass {
            lib_rules: false,
            hot_fns: vec!["hot".to_string()],
        };
        let src = "fn hot(xs: &[f32]) -> Vec<f32> { xs.to_vec() }\n\
                   fn cold(xs: &[f32]) -> Vec<f32> { xs.to_vec() }";
        let f = check_file("crates/linalg/src/x.rs", src, &class);
        assert_eq!(unsuppressed(&f, "hot_path_alloc"), 1);
        assert!(f[0].message.contains("`hot`"));
    }

    #[test]
    fn hot_path_catches_the_full_alloc_surface() {
        let class = FileClass {
            lib_rules: false,
            hot_fns: vec!["hot".to_string()],
        };
        let src = "fn hot() { let a = Vec::new(); let b = vec![1]; let c = x.clone(); \
                   let d = Box::new(1); let e = format!(\"x\"); let f: Vec<_> = it.collect(); }";
        let f = check_file("crates/linalg/src/x.rs", src, &class);
        assert_eq!(unsuppressed(&f, "hot_path_alloc"), 6);
    }

    #[test]
    fn unsafe_without_safety_comment_fires() {
        let f = lib_findings("fn f() { unsafe { danger() } }");
        assert_eq!(unsuppressed(&f, "unsafe_hygiene"), 1);
    }

    #[test]
    fn safety_comment_above_covers_unsafe() {
        for src in [
            "// SAFETY: pointer is valid for the whole call\nunsafe { danger() }",
            "// SAFETY: long justification\n// continuing over two lines\nunsafe { danger() }",
            "unsafe { danger() } // SAFETY: trailing justification",
        ] {
            let f = lib_findings(src);
            assert_eq!(unsuppressed(&f, "unsafe_hygiene"), 0, "src: {src}");
        }
    }

    #[test]
    fn unsafe_fn_declaration_is_not_flagged_but_inner_block_is() {
        // the signature declares a contract; with unsafe_op_in_unsafe_fn
        // denied, the *operation* needs its own commented unsafe block
        let src = "unsafe fn raw(p: *mut u8) { unsafe { *p = 0; } }";
        let f = lib_findings(src);
        assert_eq!(unsuppressed(&f, "unsafe_hygiene"), 1);
        let covered = "unsafe fn raw(p: *mut u8) {\n\
                       // SAFETY: caller guarantees p is valid\n\
                       unsafe { *p = 0; } }";
        let f = lib_findings(covered);
        assert_eq!(unsuppressed(&f, "unsafe_hygiene"), 0);
    }

    #[test]
    fn unsafe_impl_still_requires_safety_comment() {
        let f = lib_findings("unsafe impl Send for T {}");
        assert_eq!(unsuppressed(&f, "unsafe_hygiene"), 1);
        let f = lib_findings("// SAFETY: T owns no thread-affine state\nunsafe impl Send for T {}");
        assert_eq!(unsuppressed(&f, "unsafe_hygiene"), 0);
    }

    #[test]
    fn code_between_safety_comment_and_unsafe_breaks_coverage() {
        let src = "// SAFETY: stale comment\nlet x = 1;\nunsafe { danger() }";
        let f = lib_findings(src);
        assert_eq!(unsuppressed(&f, "unsafe_hygiene"), 1);
    }

    #[test]
    fn malformed_pragma_is_an_unsuppressable_finding() {
        // even a pragma "suppressing" the pragma rule cannot hide it
        let src = "// lint:allow(pragma, \"nice try\")\n// lint:allow(no_panic)\nfn f() {}";
        let f = lib_findings(src);
        assert_eq!(unsuppressed(&f, "pragma"), 1);
    }
}
