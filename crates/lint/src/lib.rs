//! skiptrain-lint: workspace invariant lint.
//!
//! A self-contained static-analysis pass (hand-rolled lexer, token-level
//! rules, no syn/quote — the workspace vendors everything it depends on)
//! that enforces five invariant families the compiler cannot:
//!
//! | rule             | invariant                                                        |
//! |------------------|------------------------------------------------------------------|
//! | `determinism`    | no wall-clock / ambient entropy / iteration-order-unstable maps  |
//! | `no_panic`       | no `unwrap`/`expect`/`panic!` family in shipped library code     |
//! | `hot_path_alloc` | manifest-listed hot functions do not allocate                    |
//! | `seed_stream`    | seed arithmetic only through the `derive_seed` helper family     |
//! | `unsafe_hygiene` | every `unsafe` block carries a `// SAFETY:` comment              |
//!
//! Findings are suppressable only via a reasoned `lint:allow` comment —
//! the rule name and a quoted justification in parentheses, e.g.
//! `lint:allow(no_panic, "length checked two lines up")` — and malformed
//! pragmas (missing or empty reason, unknown rule) are themselves findings
//! (rule `pragma`) and cannot be suppressed. The CLI
//! (`cargo run -p lint -- --workspace`) emits a schema-validated
//! `LINT_report.json` and exits nonzero on any unsuppressed finding,
//! which is what CI gates on.

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod scope;

use rules::{FileClass, Finding};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees carry the library-code rules
/// (determinism, no-panic, seed-stream). `bench` and `lint` itself are
/// tooling — only `unsafe_hygiene` applies there, as it does to the
/// vendored shims.
pub const LIB_CRATES: &[&str] = &[
    "core",
    "data",
    "energy",
    "engine",
    "linalg",
    "nn",
    "skiptrain",
    "topology",
];

/// Directory names never descended into during the workspace walk.
/// `fixtures` holds the lint crate's own deliberately-violating test
/// corpus, which must not fail the real gate.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Hot-path manifest: `file path -> function names` that must not
/// allocate. Parsed from `hotpaths.txt` lines of the form
/// `crates/linalg/src/ops.rs::dot`; `#` starts a comment.
pub fn parse_manifest(text: &str) -> Result<BTreeMap<String, Vec<String>>, String> {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((path, func)) = line.rsplit_once("::") else {
            return Err(format!(
                "hotpaths manifest line {}: expected 'path::fn_name', got '{line}'",
                lineno + 1
            ));
        };
        let (path, func) = (path.trim(), func.trim());
        if path.is_empty() || func.is_empty() {
            return Err(format!(
                "hotpaths manifest line {}: empty path or function in '{line}'",
                lineno + 1
            ));
        }
        map.entry(path.to_string())
            .or_default()
            .push(func.to_string());
    }
    Ok(map)
}

/// True when every component of `rel` (a `/`-separated workspace-relative
/// path) stays out of [`SKIP_DIRS`].
fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut names: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
        names.push(entry.path());
    }
    // sorted traversal keeps finding order (and the report) deterministic
    names.sort();
    for path in names {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Classifies a workspace-relative file path: which rule families apply.
pub fn classify(rel: &str, manifest: &BTreeMap<String, Vec<String>>) -> FileClass {
    let lib_rules = LIB_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    FileClass {
        lib_rules,
        hot_fns: manifest.get(rel).cloned().unwrap_or_default(),
    }
}

/// Scans `crates/` and `vendor/` under `root`, returning the number of
/// files checked and every finding in deterministic (path, line) order.
pub fn scan_workspace(
    root: &Path,
    manifest: &BTreeMap<String, Vec<String>>,
) -> Result<(usize, Vec<Finding>), String> {
    let mut files = Vec::new();
    for top in ["crates", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_rs_files(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs files found under {} — wrong --root?",
            root.display()
        ));
    }

    let mut rels: Vec<String> = Vec::with_capacity(files.len());
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let class = classify(&rel, manifest);
        findings.extend(rules::check_file(&rel, &src, &class));
        rels.push(rel);
    }

    // a manifest entry naming a file the walk never saw is rot — fail
    // loudly rather than silently un-protecting a hot path
    for manifest_path in manifest.keys() {
        if !rels.iter().any(|r| r == manifest_path) {
            return Err(format!(
                "hotpaths manifest names '{manifest_path}' but no such file was scanned"
            ));
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok((files.len(), findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parses_paths_comments_and_blanks() {
        let text = "\
# hot paths\n\
crates/linalg/src/ops.rs::dot\n\
crates/linalg/src/ops.rs::axpy  # inner loop\n\
\n\
crates/linalg/src/gemm.rs::gemm_into\n";
        let map = parse_manifest(text).expect("parses");
        assert_eq!(
            map.get("crates/linalg/src/ops.rs").map(Vec::as_slice),
            Some(&["dot".to_string(), "axpy".to_string()][..])
        );
        assert_eq!(map.get("crates/linalg/src/gemm.rs").map(Vec::len), Some(1));
    }

    #[test]
    fn manifest_rejects_shapeless_lines() {
        assert!(parse_manifest("just_a_path.rs").is_err());
        assert!(parse_manifest("path.rs::").is_err());
        assert!(parse_manifest("::func").is_err());
    }

    #[test]
    fn classification_applies_lib_rules_to_library_src_only() {
        let manifest = BTreeMap::new();
        assert!(classify("crates/engine/src/executor.rs", &manifest).lib_rules);
        assert!(classify("crates/linalg/src/ops.rs", &manifest).lib_rules);
        assert!(!classify("crates/bench/src/perf.rs", &manifest).lib_rules);
        assert!(!classify("crates/lint/src/rules.rs", &manifest).lib_rules);
        assert!(!classify("vendor/rand/src/lib.rs", &manifest).lib_rules);
        assert!(!classify("crates/engine/tests/integration.rs", &manifest).lib_rules);
    }

    #[test]
    fn classification_attaches_hot_fns() {
        let manifest = parse_manifest("crates/linalg/src/ops.rs::dot\n").expect("parses");
        let class = classify("crates/linalg/src/ops.rs", &manifest);
        assert_eq!(class.hot_fns, vec!["dot".to_string()]);
        assert!(classify("crates/linalg/src/gemm.rs", &manifest)
            .hot_fns
            .is_empty());
    }
}
