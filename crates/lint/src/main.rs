//! CLI entry point: `cargo run -p lint --release -- --workspace`.
//!
//! Scans the workspace, prints findings, writes a schema-validated
//! `LINT_report.json`, and exits nonzero iff any finding is
//! unsuppressed. CI runs exactly this and gates the build on it.

use lint::report::{build_report, validate_report};
use std::path::PathBuf;
use std::process::{Command, ExitCode};

struct Options {
    root: PathBuf,
    out: PathBuf,
    manifest: PathBuf,
    quiet: bool,
}

const USAGE: &str = "usage: lint --workspace [--root DIR] [--out FILE] \
[--manifest FILE] [--quiet]

  --workspace      scan crates/ and vendor/ under the root (required)
  --root DIR       workspace root (default: .)
  --out FILE       report path (default: LINT_report.json)
  --manifest FILE  hot-path manifest (default: crates/lint/hotpaths.txt)
  --quiet          suppress per-finding output; print the summary only
";

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut opts = Options {
        root: PathBuf::from("."),
        out: PathBuf::from("LINT_report.json"),
        manifest: PathBuf::from("crates/lint/hotpaths.txt"),
        quiet: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--out" => opts.out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--manifest" => {
                opts.manifest = PathBuf::from(args.next().ok_or("--manifest needs a value")?)
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("--workspace is required\n{USAGE}"));
    }
    Ok(opts)
}

/// Short git revision of the scanned tree, or "unknown" outside a repo.
fn git_rev(root: &std::path::Path) -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn run(opts: &Options) -> Result<bool, String> {
    let manifest_path = if opts.manifest.is_absolute() {
        opts.manifest.clone()
    } else {
        opts.root.join(&opts.manifest)
    };
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read manifest {}: {e}", manifest_path.display()))?;
    let manifest = lint::parse_manifest(&manifest_text)?;

    let (files_scanned, findings) = lint::scan_workspace(&opts.root, &manifest)?;

    let unsuppressed: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    if !opts.quiet {
        for f in &unsuppressed {
            eprintln!(
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            );
        }
    }

    let report = build_report(&git_rev(&opts.root), ".", files_scanned, &findings);
    validate_report(&report).map_err(|e| format!("generated report failed validation: {e}"))?;
    let text = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("cannot serialize report: {e}"))?;
    std::fs::write(&opts.out, text + "\n")
        .map_err(|e| format!("cannot write {}: {e}", opts.out.display()))?;

    let suppressed = findings.len() - unsuppressed.len();
    eprintln!(
        "lint: {files_scanned} files scanned, {} findings ({suppressed} suppressed, {} unsuppressed) -> {}",
        findings.len(),
        unsuppressed.len(),
        opts.out.display()
    );
    Ok(unsuppressed.is_empty())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::from(2)
        }
    }
}
