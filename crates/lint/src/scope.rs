//! Token-level scope analysis: test regions and function spans.
//!
//! The rule engine needs two structural facts a flat token stream does
//! not give it:
//!
//! 1. **Test regions** — ranges covered by `#[cfg(test)]` items (modules,
//!    functions, impls) and `#[test]` functions. The determinism,
//!    no-panic, hot-path, and seed-stream rules only police code that
//!    ships; tests unwrap and use `HashSet` freely.
//! 2. **Function spans** — `fn name { … }` body ranges, so the hot-path
//!    rule can scope findings to manifest-listed functions and the
//!    seed-stream rule can sanction the `derive_seed` helper family.
//!
//! Both are computed by a single forward pass over the *significant*
//! (non-comment) token stream with brace/paren/bracket matching — no
//! grammar, which keeps the pass robust on any formatting rustfmt or a
//! human can produce.

use crate::lexer::Tok;

/// A function body located in the significant-token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index of the `fn` keyword token.
    pub start: usize,
    /// Index of the opening `{` of the body.
    pub body_start: usize,
    /// Index one past the closing `}` of the body.
    pub body_end: usize,
}

/// Scope facts for one file, in significant-token index space.
#[derive(Debug, Default)]
pub struct Scopes {
    /// `[start, end)` significant-token ranges that are test-only code.
    pub test_ranges: Vec<(usize, usize)>,
    /// Every function body in the file, in source order (nested functions
    /// and closures in methods each get their own span).
    pub fns: Vec<FnSpan>,
}

impl Scopes {
    /// True when significant-token index `i` lies inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// The innermost function whose body contains `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_start < i && i < f.body_end)
            .max_by_key(|f| f.body_start)
    }
}

/// Index one past the `}` matching the `{` at `open` (or `sig.len()` if
/// unbalanced).
fn match_brace(sig: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, tok) in sig.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    sig.len()
}

/// Index one past the `]` closing the attribute whose `[` is at `open`.
fn match_bracket(sig: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, tok) in sig.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    sig.len()
}

/// True when the attribute token range marks test-only code: it contains
/// the identifier `test` (covering `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`) — except under `not(…)`, so `#[cfg(not(test))]`
/// items stay policed.
fn attr_marks_test(sig: &[Tok], start: usize, end: usize) -> bool {
    for k in start..end {
        if sig[k].text == "test" {
            let negated = k >= 2 && sig[k - 1].text == "(" && sig[k - 2].text == "not";
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Index one past the end of the item starting at `from` (past its
/// attributes): the matching `}` of its first top-level brace block, or
/// the first top-level `;` for braceless items (`use`, trait fn decls).
fn item_end(sig: &[Tok], from: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut k = from;
    while k < sig.len() {
        match sig[k].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return match_brace(sig, k),
            ";" if paren == 0 && bracket == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    sig.len()
}

/// Analyzes the significant-token stream of one file.
pub fn analyze(sig: &[Tok]) -> Scopes {
    let mut scopes = Scopes::default();
    let mut i = 0usize;
    while i < sig.len() {
        let text = sig[i].text.as_str();
        if text == "#" {
            // `#[…]` outer attribute or `#![…]` inner attribute
            let bang = i + 1 < sig.len() && sig[i + 1].text == "!";
            let open = if bang { i + 2 } else { i + 1 };
            if open < sig.len() && sig[open].text == "[" {
                let close = match_bracket(sig, open);
                if attr_marks_test(sig, open, close) {
                    if bang {
                        // `#![cfg(test)]`: the whole enclosing scope is
                        // test-only; treat the rest of the file as such.
                        scopes.test_ranges.push((i, sig.len()));
                    } else {
                        // skip any further attributes between this one
                        // and the item it decorates
                        let mut item = close;
                        while item < sig.len() && sig[item].text == "#" {
                            let o = item + 1;
                            if o < sig.len() && sig[o].text == "[" {
                                item = match_bracket(sig, o);
                            } else {
                                break;
                            }
                        }
                        scopes.test_ranges.push((i, item_end(sig, item)));
                    }
                }
                i = close;
                continue;
            }
        } else if text == "fn" {
            // `fn name …` — skip `fn` pointer types, whose next token is `(`
            if let Some(name_tok) = sig.get(i + 1) {
                let name = name_tok.text.clone();
                if name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                {
                    // find the body: first `{` at zero paren/bracket
                    // depth; a `;` first means a bodyless declaration
                    let mut paren = 0i32;
                    let mut bracket = 0i32;
                    let mut k = i + 2;
                    while k < sig.len() {
                        match sig[k].text.as_str() {
                            "(" => paren += 1,
                            ")" => paren -= 1,
                            "[" => bracket += 1,
                            "]" => bracket -= 1,
                            "{" if paren == 0 && bracket == 0 => {
                                scopes.fns.push(FnSpan {
                                    name,
                                    start: i,
                                    body_start: k,
                                    body_end: match_brace(sig, k),
                                });
                                break;
                            }
                            ";" if paren == 0 && bracket == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
        }
        i += 1;
    }
    scopes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sig(src: &str) -> Vec<Tok> {
        lex(src).into_iter().filter(|t| !t.is_comment()).collect()
    }

    fn idx_of(sig: &[Tok], text: &str) -> usize {
        sig.iter()
            .position(|t| t.text == text)
            .unwrap_or_else(|| panic!("token {text} not found"))
    }

    #[test]
    fn cfg_test_module_is_a_test_range() {
        let toks = sig("fn lib_code() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n\
             fn more_lib() {}");
        let scopes = analyze(&toks);
        let lib_unwrap = idx_of(&toks, "x") + 2;
        let test_unwrap = idx_of(&toks, "y") + 2;
        assert!(!scopes.in_test(lib_unwrap));
        assert!(scopes.in_test(test_unwrap));
        let more = idx_of(&toks, "more_lib");
        assert!(!scopes.in_test(more), "code after the test mod is live");
    }

    #[test]
    fn nested_cfg_test_blocks() {
        // a cfg(test) mod inside a live mod; braces inside must not
        // terminate the range early
        let toks = sig(
            "mod live {\n  fn a() { if x { y(); } }\n  #[cfg(test)]\n  mod t {\n    fn b() { if p { q.unwrap(); } }\n  }\n  fn c() {}\n}",
        );
        let scopes = analyze(&toks);
        assert!(scopes.in_test(idx_of(&toks, "q")));
        assert!(!scopes.in_test(idx_of(&toks, "a")));
        assert!(!scopes.in_test(idx_of(&toks, "c")));
    }

    #[test]
    fn test_attribute_on_fn() {
        let toks = sig("#[test]\nfn my_case() { z.unwrap(); }\nfn live() {}");
        let scopes = analyze(&toks);
        assert!(scopes.in_test(idx_of(&toks, "z")));
        assert!(!scopes.in_test(idx_of(&toks, "live")));
    }

    #[test]
    fn cfg_all_test_counts_and_not_test_does_not() {
        let toks = sig(
            "#[cfg(all(test, feature = \"x\"))]\nfn gated() { a.unwrap(); }\n\
             #[cfg(not(test))]\nfn shipped() { b.unwrap(); }",
        );
        let scopes = analyze(&toks);
        assert!(scopes.in_test(idx_of(&toks, "a")));
        assert!(
            !scopes.in_test(idx_of(&toks, "b")),
            "cfg(not(test)) code ships and must stay policed"
        );
    }

    #[test]
    fn stacked_attributes_before_the_item() {
        let toks = sig("#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn u() { v(); } }\nfn w() {}");
        let scopes = analyze(&toks);
        assert!(scopes.in_test(idx_of(&toks, "v")));
        assert!(!scopes.in_test(idx_of(&toks, "w")));
    }

    #[test]
    fn braceless_test_items_end_at_semicolon() {
        let toks = sig("#[cfg(test)]\nuse foo::bar;\nfn live() {}");
        let scopes = analyze(&toks);
        assert!(!scopes.in_test(idx_of(&toks, "live")));
    }

    #[test]
    fn fn_spans_cover_bodies_and_nest() {
        let toks = sig("fn outer() { fn inner() { deep(); } shallow(); }");
        let scopes = analyze(&toks);
        assert_eq!(scopes.fns.len(), 2);
        let deep = idx_of(&toks, "deep");
        let shallow = idx_of(&toks, "shallow");
        assert_eq!(scopes.enclosing_fn(deep).expect("deep").name, "inner");
        assert_eq!(scopes.enclosing_fn(shallow).expect("shallow").name, "outer");
    }

    #[test]
    fn fn_pointer_types_are_not_spans() {
        let toks = sig("fn takes(f: fn(u64) -> u64) { f(1); }");
        let scopes = analyze(&toks);
        assert_eq!(scopes.fns.len(), 1);
        assert_eq!(scopes.fns[0].name, "takes");
    }

    #[test]
    fn signature_parens_and_generics_do_not_confuse_body_detection() {
        let toks = sig(
            "fn generic<T: Into<Vec<u8>>>(xs: &[(u32, u32)], n: usize) -> Option<u64> { body(); }",
        );
        let scopes = analyze(&toks);
        assert_eq!(scopes.fns.len(), 1);
        assert!(scopes
            .enclosing_fn(idx_of(&toks, "body"))
            .is_some_and(|f| f.name == "generic"));
    }

    #[test]
    fn trait_fn_declarations_have_no_span() {
        let toks = sig("trait T { fn decl(&self) -> u64; fn with_default(&self) { d(); } }");
        let scopes = analyze(&toks);
        assert_eq!(scopes.fns.len(), 1);
        assert_eq!(scopes.fns[0].name, "with_default");
    }

    #[test]
    fn inner_cfg_test_marks_rest_of_file() {
        let toks = sig("#![cfg(test)]\nfn helper() { x.unwrap(); }");
        let scopes = analyze(&toks);
        assert!(scopes.in_test(idx_of(&toks, "x")));
    }
}
