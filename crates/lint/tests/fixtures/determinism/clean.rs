//! Deterministic twin of `firing.rs`: ordered collections, no clocks.
//! Lint fixture — never compiled.

use std::collections::BTreeMap;

pub fn count_distinct(xs: &[u32]) -> usize {
    let mut seen = BTreeMap::new();
    for &x in xs {
        seen.insert(x, ());
    }
    seen.len()
}
