//! Same pattern as `firing.rs`, but every finding carries a reasoned
//! `lint:allow` pragma. Lint fixture — never compiled.

// lint:allow(determinism, "iteration order is never observed: the map is queried point-wise only")
use std::collections::HashMap;

pub fn count_distinct(xs: &[u32]) -> usize {
    // lint:allow(determinism, "iteration order is never observed: the map is queried point-wise only")
    let mut seen: HashMap<u32, ()> = HashMap::new();
    for &x in xs {
        seen.insert(x, ());
    }
    seen.len()
}
