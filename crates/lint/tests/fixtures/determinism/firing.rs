//! Fires `determinism`: hash collections and wall-clock time in library
//! code. Lint fixture — never compiled.

use std::collections::HashMap;
use std::time::Instant;

pub fn count_distinct(xs: &[u32]) -> usize {
    let mut seen = HashMap::new();
    for &x in xs {
        seen.insert(x, ());
    }
    let _started = Instant::now();
    seen.len()
}
