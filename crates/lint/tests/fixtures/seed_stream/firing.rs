//! Fires `seed_stream`: raw arithmetic on seed values outside the
//! sanctioned derivation helpers. Lint fixture — never compiled.

pub fn stream_for(seed: u64, i: u64) -> u64 {
    seed + i
}

pub fn fork(base_seed: u64) -> u64 {
    base_seed.wrapping_add(1)
}

pub fn tagged(node_seed: u64) -> u64 {
    node_seed ^ 0xA5A5
}
