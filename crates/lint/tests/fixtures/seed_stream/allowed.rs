//! Raw seed arithmetic justified by a reasoned pragma (a bit-compatible
//! legacy stream pinned by golden tests). Lint fixture — never compiled.

pub fn stream_for(seed: u64, i: u64) -> u64 {
    // lint:allow(seed_stream, "bit-compatible legacy offset pinned by the seeded golden tests")
    seed + i
}
