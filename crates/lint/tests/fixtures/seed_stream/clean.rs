//! Sanctioned seed handling: arithmetic lives inside a derivation
//! helper, and call sites either pass the seed through untouched or tag
//! it directly inside a helper call. Lint fixture — never compiled.

pub fn derive_seed(seed: u64, tag: u64) -> u64 {
    (seed ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(tag | 1)
}

pub fn stream_for(seed: u64, i: u64) -> u64 {
    derive_seed(seed, i)
}

pub fn tagged(seed: u64, i: u64) -> u64 {
    derive_seed(seed ^ 0xA5, i)
}
