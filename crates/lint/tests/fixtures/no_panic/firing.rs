//! Fires `no_panic`: unwrap/expect and panicking macros in library code.
//! Lint fixture — never compiled.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn named(map: &std::collections::BTreeMap<String, u32>, k: &str) -> u32 {
    *map.get(k).expect("key must exist")
}

pub fn guard(flag: bool) {
    if !flag {
        panic!("flag must be set");
    }
}

pub fn dispatch(tag: u8) -> u32 {
    match tag {
        0 => 10,
        1 => 20,
        _ => unreachable!("caller validated the tag"),
    }
}
