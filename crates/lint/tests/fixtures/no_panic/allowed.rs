//! Same panics as `firing.rs`, each justified by a reasoned pragma.
//! Lint fixture — never compiled.

pub fn head(xs: &[u32]) -> u32 {
    // lint:allow(no_panic, "provably infallible: the caller asserts non-empty input")
    *xs.first().unwrap()
}

pub fn guard(flag: bool) {
    if !flag {
        // lint:allow(no_panic, "documented Panics contract: a cleared flag is a caller bug")
        panic!("flag must be set");
    }
}
