//! Panic-free twin of `firing.rs`: fallible results instead of aborts.
//! Lint fixture — never compiled.

pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn named(map: &std::collections::BTreeMap<String, u32>, k: &str) -> Result<u32, String> {
    map.get(k).copied().ok_or_else(|| format!("missing key {k}"))
}

pub fn dispatch(tag: u8) -> Result<u32, String> {
    match tag {
        0 => Ok(10),
        1 => Ok(20),
        other => Err(format!("unknown tag {other}")),
    }
}
