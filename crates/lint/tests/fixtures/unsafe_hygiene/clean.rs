//! Hygienic unsafe: every unsafe block carries a SAFETY comment, and an
//! `unsafe fn` declaration itself needs none (with
//! `unsafe_op_in_unsafe_fn` denied, its body's inner blocks are the
//! audited sites). Lint fixture — never compiled.

pub fn head(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty(), "head of empty slice");
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}

/// # Safety
/// `i` must be in bounds for `xs`.
pub unsafe fn at(xs: &[u32], i: usize) -> u32 {
    // SAFETY: in-bounds `i` is the caller's contract, restated above.
    unsafe { *xs.get_unchecked(i) }
}
