//! Fires `unsafe_hygiene`: an unsafe block with no SAFETY comment.
//! Lint fixture — never compiled.

pub fn head_unchecked(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}
