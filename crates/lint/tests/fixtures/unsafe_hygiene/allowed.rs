//! An uncommented unsafe block suppressed by a reasoned pragma (the
//! justification lives in the function doc instead of a SAFETY line).
//! Lint fixture — never compiled.

/// Reads element 0. Callers must pass a non-empty slice.
pub fn head_unchecked(xs: &[u32]) -> u32 {
    // lint:allow(unsafe_hygiene, "the doc comment above states the non-empty precondition")
    unsafe { *xs.get_unchecked(0) }
}
