//! A hot-path allocation justified by a reasoned pragma (first-call
//! warm-up that never recurs at steady state). Lint fixture — never
//! compiled.

pub fn dot(a: &[f32], b: &[f32], scratch: &mut Vec<f32>) -> f32 {
    if scratch.capacity() < a.len() {
        // lint:allow(hot_path_alloc, "one-time warm-up: capacity is retained across all later rounds")
        *scratch = Vec::with_capacity(a.len());
    }
    scratch.clear();
    for (x, y) in a.iter().zip(b) {
        scratch.push(x * y);
    }
    scratch.iter().sum()
}
