//! Fires `hot_path_alloc`: the manifest lists `dot` as a hot-path
//! function, and this version allocates inside it. Lint fixture — never
//! compiled.

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let staged: Vec<f32> = a.iter().zip(b).map(|(x, y)| x * y).collect();
    let mut scratch = Vec::new();
    scratch.extend_from_slice(&staged);
    let label = format!("dot of {} elements", scratch.len());
    let _ = label;
    scratch.iter().sum()
}
