//! Allocation-free hot path, plus a non-hot function that allocates
//! freely (the rule polices only manifest-listed functions). Lint
//! fixture — never compiled.

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

pub fn describe(a: &[f32]) -> String {
    let copy: Vec<f32> = a.to_vec();
    format!("{} elements", copy.len())
}
