//! Pragma findings are unsuppressable: the well-formed allow on the
//! first line names the `pragma` rule, yet the malformed pragma below it
//! must still fire. Lint fixture — never compiled.

// lint:allow(pragma, "attempting to silence the pragma rule itself must not work")
// lint:allow(bogus_rule, "this malformed pragma still fires")
pub fn shielded() {}
