//! Fires `pragma`: malformed suppression pragmas — a missing reason and
//! an unknown rule name. Lint fixture — never compiled.

// lint:allow(no_panic)
pub fn missing_reason() {}

// lint:allow(made_up_rule, "the rule name does not exist")
pub fn unknown_rule() {}
