//! Well-formed pragmas and prose that merely mentions the pragma
//! syntax; neither may fire. Lint fixture — never compiled.

// Prose discussing suppression — the marker `lint:allow` without a
// directly-attached argument list — is not parsed as a pragma.

pub fn plain(x: Option<u32>) -> u32 {
    // lint:allow(no_panic, "fixture call sites always pass Some")
    x.unwrap()
}
