//! Fixture corpus: every rule family has a `firing` fixture the lint
//! must flag, an `allowed` fixture where each finding carries a
//! reasoned suppression, and a `clean` fixture that must stay silent.
//! The fixtures live under `tests/fixtures/<rule>/` — a directory the
//! workspace walk skips, so deliberately-bad code never pollutes the
//! real gate.

use lint::rules::{check_file, FileClass, Finding};
use std::path::Path;

fn run(rule_dir: &str, name: &str, class: &FileClass) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule_dir)
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    check_file(&format!("fixtures/{rule_dir}/{name}"), &src, class)
}

fn lib_class() -> FileClass {
    FileClass {
        lib_rules: true,
        hot_fns: Vec::new(),
    }
}

fn hot_class() -> FileClass {
    FileClass {
        lib_rules: false,
        hot_fns: vec!["dot".to_string()],
    }
}

fn plain_class() -> FileClass {
    FileClass::default()
}

/// `firing.rs`: at least one finding, all of the expected rule, none
/// suppressed.
fn assert_fires(rule: &str, class: &FileClass) {
    let findings = run(rule, "firing.rs", class);
    assert!(
        !findings.is_empty(),
        "{rule}/firing.rs produced no findings"
    );
    for f in &findings {
        assert_eq!(f.rule, rule, "unexpected rule in {rule}/firing.rs: {f:?}");
        assert!(!f.suppressed, "finding must be unsuppressed: {f:?}");
        assert!(f.line >= 1 && f.col >= 1, "positions are 1-based: {f:?}");
    }
}

/// `allowed.rs`: at least one finding, all suppressed with a non-empty
/// reason.
fn assert_allowed(rule: &str, class: &FileClass) {
    let findings = run(rule, "allowed.rs", class);
    assert!(
        !findings.is_empty(),
        "{rule}/allowed.rs produced no findings — the pragma has nothing to justify"
    );
    for f in &findings {
        assert_eq!(f.rule, rule, "unexpected rule in {rule}/allowed.rs: {f:?}");
        assert!(f.suppressed, "finding must be suppressed: {f:?}");
        let reason = f.reason.as_deref().unwrap_or("");
        assert!(!reason.is_empty(), "suppression must carry a reason: {f:?}");
    }
}

/// `clean.rs`: zero findings of any rule.
fn assert_clean(rule: &str, class: &FileClass) {
    let findings = run(rule, "clean.rs", class);
    assert!(
        findings.is_empty(),
        "{rule}/clean.rs must be silent, got: {findings:?}"
    );
}

#[test]
fn determinism_fixtures() {
    assert_fires("determinism", &lib_class());
    assert_allowed("determinism", &lib_class());
    assert_clean("determinism", &lib_class());
}

#[test]
fn no_panic_fixtures() {
    assert_fires("no_panic", &lib_class());
    assert_allowed("no_panic", &lib_class());
    assert_clean("no_panic", &lib_class());
}

#[test]
fn hot_path_alloc_fixtures() {
    assert_fires("hot_path_alloc", &hot_class());
    assert_allowed("hot_path_alloc", &hot_class());
    assert_clean("hot_path_alloc", &hot_class());
}

#[test]
fn seed_stream_fixtures() {
    assert_fires("seed_stream", &lib_class());
    assert_allowed("seed_stream", &lib_class());
    assert_clean("seed_stream", &lib_class());
}

#[test]
fn unsafe_hygiene_fixtures() {
    assert_fires("unsafe_hygiene", &plain_class());
    assert_allowed("unsafe_hygiene", &plain_class());
    assert_clean("unsafe_hygiene", &plain_class());
}

#[test]
fn pragma_fixtures() {
    assert_fires("pragma", &plain_class());
    assert_clean("pragma", &plain_class());
}

#[test]
fn pragma_findings_are_unsuppressable() {
    // allowed.rs tries to shield a malformed pragma with a well-formed
    // allow naming the pragma rule itself; the finding must survive
    // unsuppressed.
    let findings = run("pragma", "allowed.rs", &plain_class());
    assert_eq!(
        findings.len(),
        1,
        "exactly the malformed pragma: {findings:?}"
    );
    assert_eq!(findings[0].rule, "pragma");
    assert!(!findings[0].suppressed, "pragma findings cannot be allowed");
}

#[test]
fn firing_fixtures_catch_every_pattern_variant() {
    // spot-check counts so a lexer regression that drops half the
    // patterns cannot slip through the any-finding assertions above
    assert_eq!(run("determinism", "firing.rs", &lib_class()).len(), 4);
    assert_eq!(run("no_panic", "firing.rs", &lib_class()).len(), 4);
    assert_eq!(run("hot_path_alloc", "firing.rs", &hot_class()).len(), 3);
    assert_eq!(run("seed_stream", "firing.rs", &lib_class()).len(), 3);
    assert_eq!(run("unsafe_hygiene", "firing.rs", &plain_class()).len(), 1);
    assert_eq!(run("pragma", "firing.rs", &plain_class()).len(), 2);
}

#[test]
fn fixture_corpus_is_complete() {
    // every rule directory must hold its expected fixture set, so a
    // future rule added without fixtures is caught here
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for rule in lint::rules::RULES {
        let dir = root.join(rule);
        assert!(dir.join("firing.rs").is_file(), "{rule}: missing firing.rs");
        assert!(dir.join("clean.rs").is_file(), "{rule}: missing clean.rs");
        // the unsuppressable pragma rule repurposes allowed.rs (see
        // pragma_findings_are_unsuppressable); all others suppress
        assert!(
            dir.join("allowed.rs").is_file(),
            "{rule}: missing allowed.rs"
        );
    }
}

/// Builds a throwaway one-crate workspace at `tag` whose
/// `crates/core/src/lib.rs` holds `content`, plus an empty hot-path
/// manifest, and runs the real lint binary over it. Returns the exit
/// code.
fn run_binary_on(tag: &str, content: &str) -> i32 {
    let root = std::env::temp_dir().join(format!("lint-e2e-{tag}-{}", std::process::id()));
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("create temp workspace");
    std::fs::write(src.join("lib.rs"), content).expect("write fixture source");
    let manifest = root.join("hotpaths.txt");
    std::fs::write(&manifest, "# empty manifest\n").expect("write manifest");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg("--workspace")
        .arg("--quiet")
        .arg("--root")
        .arg(&root)
        .arg("--manifest")
        .arg(&manifest)
        .arg("--out")
        .arg(root.join("LINT_report.json"))
        .output()
        .expect("run lint binary");
    let code = out.status.code().expect("lint exit code");
    std::fs::remove_dir_all(&root).ok();
    code
}

#[test]
fn binary_exits_nonzero_on_a_firing_tree_and_zero_on_a_clean_one() {
    let firing = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/determinism/firing.rs"),
    )
    .expect("read firing fixture");
    assert_eq!(run_binary_on("firing", &firing), 1);

    let clean = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/determinism/clean.rs"),
    )
    .expect("read clean fixture");
    assert_eq!(run_binary_on("clean", &clean), 0);
}
