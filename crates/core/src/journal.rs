//! Crash-safe campaign checkpoint journal.
//!
//! A resilient campaign ([`Campaign::run_resilient`](crate::Campaign::run_resilient)
//! with [`Campaign::with_checkpoint`](crate::Campaign::with_checkpoint))
//! appends one JSONL record per completed cell so a preempted sweep can
//! resume where it stopped instead of recomputing everything:
//!
//! ```text
//! {"Manifest":{"version":1,"cells":3,"digests":[...]}}   <- line 1
//! {"Cell":{"index":2,"digest":...,"attempts":1,"result":{...}}}
//! {"Cell":{"index":0,"digest":...,"attempts":2,"result":{...}}}
//! ```
//!
//! * **Config-digest keying.** The manifest pins a [`config_digest`] per
//!   cell (FNV-1a over the config's canonical JSON). Resuming against a
//!   journal whose manifest does not match the current campaign —
//!   different cell count, reordered grid, edited configs — is a typed
//!   [`JournalError::ManifestMismatch`], never a silent mix of results
//!   from two different sweeps.
//! * **Crash-safe append.** Records are written under a poison-recovering
//!   lock as one `write_all` + flush + `sync_data` each, so a crash can
//!   lose at most the record being written — and a torn *trailing* line is
//!   tolerated on load (the cell simply reruns). A torn line in the
//!   middle of the file means outside interference and is reported as
//!   [`JournalError::Corrupt`].
//! * **Completion order.** Cells are appended as workers finish, in any
//!   order; [`Journal::open`] returns restored results keyed by cell
//!   index, and the campaign reassembles input order.

use crate::experiment::{ExperimentConfig, ExperimentResult};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Journal format version; bumped on any record-shape change.
const JOURNAL_VERSION: u32 = 1;

/// Why a checkpoint journal could not be opened, read, or appended to.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The journal file could not be created, read, or written.
    Io {
        /// Path of the journal.
        path: PathBuf,
        /// Rendered `std::io::Error`.
        detail: String,
    },
    /// The journal was written by a different campaign: cell count or
    /// per-cell config digests disagree with the current configuration.
    ManifestMismatch {
        /// Cells the journal's manifest pins.
        journal_cells: usize,
        /// Cells the current campaign has.
        campaign_cells: usize,
    },
    /// The journal's first line is not a valid manifest, or a record in
    /// the *middle* of the file failed to parse (a torn trailing line is
    /// tolerated and simply reruns its cell).
    Corrupt {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, detail } => {
                write!(f, "journal {}: {detail}", path.display())
            }
            JournalError::ManifestMismatch {
                journal_cells,
                campaign_cells,
            } => write!(
                f,
                "journal belongs to a different campaign: it pins {journal_cells} cell \
                 digest(s), the current campaign has {campaign_cells} (same grid, same \
                 order, same configs required to resume)"
            ),
            JournalError::Corrupt { line, detail } => {
                write!(f, "journal line {line} is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// One journal line, externally tagged.
// Records are transient carriers (parsed or serialized, then dropped), so
// the Cell variant's inline `ExperimentResult` never sits in bulk storage;
// boxing it would need `Box` impls the vendored serde subset doesn't have.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
enum JournalRecord {
    /// First line: which campaign this journal belongs to.
    Manifest {
        /// Format version.
        version: u32,
        /// Number of cells in the campaign.
        cells: usize,
        /// Per-cell [`config_digest`]s, in input order.
        digests: Vec<u64>,
    },
    /// One completed cell.
    Cell {
        /// Cell index in the campaign's input order.
        index: usize,
        /// Digest of the cell's config (rechecked against the manifest).
        digest: u64,
        /// Attempts the cell took to succeed (1 = first try).
        attempts: usize,
        /// The cell's result.
        result: ExperimentResult,
    },
}

/// A successfully restored cell.
#[derive(Debug)]
pub(crate) struct RestoredCell {
    /// Attempts recorded for the cell when it originally completed.
    #[allow(dead_code)]
    pub attempts: usize,
    /// The restored result.
    pub result: ExperimentResult,
}

/// An open, append-ready checkpoint journal (see the module docs).
#[derive(Debug)]
pub(crate) struct Journal {
    path: PathBuf,
    writer: Mutex<File>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a campaign whose
    /// cells digest to `digests`, returning the journal and any restored
    /// results (indexed by cell; `None` = not yet completed).
    ///
    /// A fresh or empty file gets a manifest line; an existing file must
    /// carry a matching manifest. A torn trailing line is tolerated.
    pub fn open(
        path: &Path,
        digests: &[u64],
    ) -> Result<(Self, Vec<Option<RestoredCell>>), JournalError> {
        let io_err = |e: std::io::Error| JournalError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let mut restored: Vec<Option<RestoredCell>> = Vec::new();
        restored.resize_with(digests.len(), || None);

        let existing_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if existing_len > 0 {
            let reader = BufReader::new(File::open(path).map_err(io_err)?);
            let mut lines = reader.lines().enumerate().peekable();
            let (_, first) = lines.next().ok_or_else(|| JournalError::Corrupt {
                line: 1,
                detail: "journal is non-empty but has no first line".into(),
            })?;
            let first = first.map_err(io_err)?;
            match serde_json::from_str::<JournalRecord>(&first) {
                Ok(JournalRecord::Manifest {
                    version,
                    cells,
                    digests: journal_digests,
                }) => {
                    if version != JOURNAL_VERSION {
                        return Err(JournalError::Corrupt {
                            line: 1,
                            detail: format!(
                                "unsupported journal version {version} (expected {JOURNAL_VERSION})"
                            ),
                        });
                    }
                    if cells != digests.len()
                        || journal_digests.len() != digests.len()
                        || journal_digests != digests
                    {
                        return Err(JournalError::ManifestMismatch {
                            journal_cells: cells.max(journal_digests.len()),
                            campaign_cells: digests.len(),
                        });
                    }
                }
                Ok(_) => {
                    return Err(JournalError::Corrupt {
                        line: 1,
                        detail: "first record is not a manifest".into(),
                    })
                }
                Err(e) => {
                    return Err(JournalError::Corrupt {
                        line: 1,
                        detail: format!("manifest does not parse: {e}"),
                    })
                }
            }
            while let Some((idx, line)) = lines.next() {
                let line = line.map_err(io_err)?;
                let is_last = lines.peek().is_none();
                match serde_json::from_str::<JournalRecord>(&line) {
                    Ok(JournalRecord::Cell {
                        index,
                        digest,
                        attempts,
                        result,
                    }) => {
                        if index >= digests.len() || digest != digests[index] {
                            return Err(JournalError::Corrupt {
                                line: idx + 1,
                                detail: format!("cell {index} digest does not match the manifest"),
                            });
                        }
                        restored[index] = Some(RestoredCell { attempts, result });
                    }
                    Ok(JournalRecord::Manifest { .. }) => {
                        return Err(JournalError::Corrupt {
                            line: idx + 1,
                            detail: "unexpected second manifest".into(),
                        })
                    }
                    // A torn trailing line is the expected signature of a
                    // crash mid-append: drop it (the cell reruns). Anywhere
                    // else it means outside interference.
                    Err(e) if is_last => {
                        let _ = e;
                    }
                    Err(e) => {
                        return Err(JournalError::Corrupt {
                            line: idx + 1,
                            detail: format!("record does not parse: {e}"),
                        })
                    }
                }
            }
        }

        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        if existing_len == 0 {
            let manifest = JournalRecord::Manifest {
                version: JOURNAL_VERSION,
                cells: digests.len(),
                digests: digests.to_vec(),
            };
            append_record(&mut file, &manifest).map_err(io_err)?;
        }
        Ok((
            Self {
                path: path.to_path_buf(),
                writer: Mutex::new(file),
            },
            restored,
        ))
    }

    /// Appends one completed cell. Write + flush + `sync_data` under a
    /// poison-recovering lock: a concurrent cell's panic can never wedge
    /// the journal, and a crash loses at most this one record.
    pub fn record(
        &self,
        index: usize,
        digest: u64,
        attempts: usize,
        result: &ExperimentResult,
    ) -> Result<(), JournalError> {
        let record = JournalRecord::Cell {
            index,
            digest,
            attempts,
            result: result.clone(),
        };
        let mut file = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        append_record(&mut file, &record).map_err(|e| JournalError::Io {
            path: self.path.clone(),
            detail: e.to_string(),
        })
    }
}

/// One record as one line, flushed and synced before returning.
fn append_record(file: &mut File, record: &JournalRecord) -> std::io::Result<()> {
    // lint:allow(no_panic, "vendored serializer is infallible on derive-serialized structs (no foreign maps or Display impls)")
    let mut line = serde_json::to_string(record).expect("journal record serializes");
    line.push('\n');
    file.write_all(line.as_bytes())?;
    file.flush()?;
    file.sync_data()
}

/// Stable digest of one experiment configuration: FNV-1a over its
/// canonical JSON rendering (the vendored serializer emits struct fields
/// in declaration order, so equal configs always digest equally).
///
/// The digest keys checkpoint-journal records to the exact config that
/// produced them; see the module docs.
pub fn config_digest(cfg: &ExperimentConfig) -> u64 {
    // lint:allow(no_panic, "vendored serializer is infallible on derive-serialized structs (no foreign maps or Display impls)")
    let json = serde_json::to_string(cfg).expect("config serializes");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{cifar_config, Scale};

    fn tiny_result(name: &str) -> ExperimentResult {
        let mut cfg = cifar_config(Scale::Quick, 3);
        cfg.name = name.into();
        cfg.nodes = 4;
        cfg.rounds = 2;
        cfg.eval_max_samples = 40;
        cfg.data = crate::experiment::DataSpec::CifarLike {
            feature_dim: 6,
            samples_per_node: 20,
            test_samples: 60,
            shards_per_node: 2,
            separation: 1.2,
            noise: 0.8,
            modes_per_class: 1,
        };
        cfg.hidden_dim = 6;
        cfg.local_steps = 1;
        cfg.topology = crate::experiment::TopologySpec::Regular { degree: 2 };
        cfg.run()
    }

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "skiptrain-journal-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn digest_is_stable_and_config_sensitive() {
        let a = cifar_config(Scale::Quick, 1);
        let mut b = cifar_config(Scale::Quick, 1);
        assert_eq!(config_digest(&a), config_digest(&a));
        assert_eq!(config_digest(&a), config_digest(&b));
        b.rounds += 1;
        assert_ne!(config_digest(&a), config_digest(&b));
        let mut c = cifar_config(Scale::Quick, 1);
        c.seed ^= 1;
        assert_ne!(config_digest(&a), config_digest(&c));
    }

    #[test]
    fn journal_round_trips_cells() {
        let path = tmp_path("roundtrip");
        let digests = vec![11, 22, 33];
        let result = tiny_result("cell-1");
        {
            let (journal, restored) = Journal::open(&path, &digests).unwrap();
            assert!(restored.iter().all(Option::is_none));
            journal.record(1, 22, 2, &result).unwrap();
        }
        let (_, restored) = Journal::open(&path, &digests).unwrap();
        assert!(restored[0].is_none() && restored[2].is_none());
        let cell = restored[1].as_ref().unwrap();
        assert_eq!(cell.attempts, 2);
        assert_eq!(cell.result.name, "cell-1");
        assert_eq!(
            cell.result.final_test.mean_accuracy.to_bits(),
            result.final_test.mean_accuracy.to_bits()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_manifest_is_rejected() {
        let path = tmp_path("mismatch");
        {
            let _ = Journal::open(&path, &[1, 2]).unwrap();
        }
        let err = Journal::open(&path, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, JournalError::ManifestMismatch { .. }));
        // Same cell count, different digest: also a mismatch.
        let err = Journal::open(&path, &[1, 9]).unwrap_err();
        assert!(matches!(err, JournalError::ManifestMismatch { .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_tolerated_but_midfile_corruption_is_not() {
        let path = tmp_path("torn");
        let digests = vec![7, 8];
        let result = tiny_result("torn-cell");
        {
            let (journal, _) = Journal::open(&path, &digests).unwrap();
            journal.record(0, 7, 1, &result).unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let mut raw = std::fs::read_to_string(&path).unwrap();
        raw.push_str("{\"Cell\":{\"index\":1,\"dig");
        std::fs::write(&path, &raw).unwrap();
        let (_, restored) = Journal::open(&path, &digests).unwrap();
        assert!(restored[0].is_some(), "intact cell must survive the tear");
        assert!(restored[1].is_none(), "torn cell must rerun");

        // The same garbage in the middle of the file is interference.
        let torn = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = torn.lines().collect();
        lines.insert(1, "{\"Cell\":{\"index\":1,\"dig");
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = Journal::open(&path, &digests).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { line: 2, .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cell_digest_must_match_manifest_slot() {
        let path = tmp_path("celldigest");
        {
            let (journal, _) = Journal::open(&path, &[5, 6]).unwrap();
            journal.record(0, 5, 1, &tiny_result("ok")).unwrap();
        }
        // Hand-corrupt the recorded digest, then pad the file so the bad
        // record is not the tolerated trailing line.
        let raw = std::fs::read_to_string(&path).unwrap();
        let patched = raw.replace("\"digest\":5", "\"digest\":99");
        std::fs::write(&path, patched + "\n").unwrap();
        let err = Journal::open(&path, &[5, 6]).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }));
        let _ = std::fs::remove_file(&path);
    }
}
