//! Experiment configuration and results.
//!
//! An [`ExperimentConfig`] fully describes one run of the paper's evaluation
//! pipeline — dataset synthesis and partitioning, topology and mixing
//! matrix, per-node models, the algorithm (policy), energy traces. Configs
//! are built fluently via [`ExperimentBuilder`](crate::ExperimentBuilder),
//! validated into typed [`ConfigError`](crate::ConfigError)s, and executed
//! one at a time ([`ExperimentConfig::run`]) or in parallel batches over
//! shared data ([`Campaign`](crate::Campaign)).

use crate::error::ConfigError;
use crate::policy::{ConstrainedPolicy, DPsgdPolicy, GreedyPolicy, RoundPolicy, SkipTrainPolicy};
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use skiptrain_data::partition::{materialize, partition_indices};
use skiptrain_data::split::split_eval;
use skiptrain_data::synth::{cifar_like, femnist_like, MixtureSpec};
use skiptrain_data::{Dataset, Partition};
use skiptrain_energy::battery::{BatteryPolicy, BatterySetup, BatteryState};
use skiptrain_energy::device::fleet;
use skiptrain_energy::trace::{
    round_duration_s, round_energy_wh, training_budget_rounds, HarvestProfile, HarvestTrace,
    WorkloadSpec,
};
use skiptrain_engine::metrics::{AccuracyPoint, EvalStats};
use skiptrain_engine::{
    ChurnModel, CompressionPolicy, ComputeProfile, LatencyModel, ModelCodec, TransportKind,
};
use skiptrain_linalg::rng::derive_seed;
use skiptrain_nn::zoo::ModelKind;
use skiptrain_topology::regular::random_regular;
use skiptrain_topology::Graph;
use std::sync::Arc;

/// Which algorithm to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmSpec {
    /// D-PSGD (Algorithm 1) — train every round.
    DPsgd,
    /// SkipTrain (§3.1) with a coordinated schedule.
    SkipTrain(Schedule),
    /// SkipTrain-constrained (§3.2): schedule + Eq. 5 probabilities +
    /// battery budgets (requires `EnergySpec::battery_fraction`).
    SkipTrainConstrained(Schedule),
    /// Greedy baseline (§3.2): train until the budget is gone.
    Greedy,
}

impl AlgorithmSpec {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::DPsgd => "d-psgd",
            AlgorithmSpec::SkipTrain(_) => "skiptrain",
            AlgorithmSpec::SkipTrainConstrained(_) => "skiptrain-constrained",
            AlgorithmSpec::Greedy => "greedy",
        }
    }
}

/// Communication topology family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Random d-regular graph (the paper's setting).
    Regular {
        /// Node degree.
        degree: usize,
    },
    /// Fully-connected graph (all-reduce communication pattern).
    Complete,
    /// Ring.
    Ring,
}

impl TopologySpec {
    /// Builds the graph.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        match self {
            TopologySpec::Regular { degree } => random_regular(n, *degree, seed),
            TopologySpec::Complete => Graph::complete(n),
            TopologySpec::Ring => Graph::ring(n),
        }
    }
}

/// Time-varying topology schedule, in serializable configuration form.
///
/// This is the experiment-layer face of
/// [`TopologySchedule`](skiptrain_topology::TopologySchedule): every
/// variant here maps onto the topology-layer enum with per-schedule seeds
/// chained from the experiment's master seed ([`derive_seed`]), so two
/// schedules in one experiment never share a random stream. The
/// programmatic `Custom` generator (a trait object) deliberately has no
/// configuration form — drive it through the engine API directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum TopologyScheduleSpec {
    /// The configured topology every round (the paper's static setting,
    /// and the serde default — legacy JSON configs load unchanged).
    #[default]
    Static,
    /// Cycle through an explicit list of graphs: round `t` uses
    /// `graphs[t % len]`.
    Cycle(Vec<Graph>),
    /// Drop every edge of the round's base graph independently with
    /// probability `p` each round (duty-cycled radios).
    EdgeDropout {
        /// Per-edge, per-round drop probability in `[0, 1)`.
        p: f64,
    },
    /// A random maximal matching of the base graph fires each round
    /// (pairwise gossip as a graph schedule).
    PairwiseMatching,
}

impl TopologyScheduleSpec {
    /// True for the static schedule (the runner keeps the legacy
    /// byte-compatible fast path).
    pub fn is_static(&self) -> bool {
        matches!(self, TopologyScheduleSpec::Static)
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyScheduleSpec::Static => "static",
            TopologyScheduleSpec::Cycle(_) => "cycle",
            TopologyScheduleSpec::EdgeDropout { .. } => "edge-dropout",
            TopologyScheduleSpec::PairwiseMatching => "pairwise-matching",
        }
    }

    /// Checks schedule invariants against the experiment's node count.
    pub fn validate(&self, nodes: usize) -> Result<(), ConfigError> {
        match self {
            TopologyScheduleSpec::Static | TopologyScheduleSpec::PairwiseMatching => Ok(()),
            TopologyScheduleSpec::EdgeDropout { p } => {
                if p.is_finite() && (0.0..1.0).contains(p) {
                    Ok(())
                } else {
                    Err(ConfigError::InvalidEdgeDropout)
                }
            }
            TopologyScheduleSpec::Cycle(graphs) => {
                if graphs.is_empty() {
                    return Err(ConfigError::EmptyTopologyCycle);
                }
                for (index, g) in graphs.iter().enumerate() {
                    if g.len() != nodes {
                        return Err(ConfigError::TopologyCycleSizeMismatch {
                            index,
                            expected: nodes,
                            got: g.len(),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// Lowers the spec onto the topology layer, deriving per-schedule
    /// seeds from the experiment's master seed.
    pub fn build(&self, master_seed: u64) -> skiptrain_topology::TopologySchedule {
        use skiptrain_topology::TopologySchedule;
        match self {
            TopologyScheduleSpec::Static => TopologySchedule::Static,
            TopologyScheduleSpec::Cycle(graphs) => TopologySchedule::Cycle(graphs.clone()),
            TopologyScheduleSpec::EdgeDropout { p } => TopologySchedule::EdgeDropout {
                p: *p,
                seed: derive_seed(master_seed, 0x7D70),
            },
            TopologyScheduleSpec::PairwiseMatching => TopologySchedule::PairwiseMatching {
                seed: derive_seed(master_seed, 0x7D71),
            },
        }
    }

    /// Binds the schedule to a built base graph — the driver the runner
    /// (and async gossip) steps each round. Returns `None` for the static
    /// schedule, whose rounds take the engine's fast path.
    ///
    /// # Panics
    /// Panics with the schedule's own diagnosis (e.g. a mis-sized cycle
    /// graph) when the spec does not fit `base` — run
    /// [`TopologyScheduleSpec::validate`] first (the runner and campaign
    /// paths do) to get the typed [`ConfigError`] instead.
    pub fn bind(
        &self,
        base: &Graph,
        master_seed: u64,
    ) -> Option<skiptrain_topology::ScheduledTopology> {
        if self.is_static() {
            return None;
        }
        Some(
            skiptrain_topology::ScheduledTopology::try_new(base.clone(), self.build(master_seed))
                // lint:allow(no_panic, "schedule parameters were validated by cfg.validate() before this point")
                .unwrap_or_else(|e| panic!("invalid topology schedule: {e}")),
        )
    }
}

/// The error-feedback replica cap an experiment runs with: the explicit
/// setting when given, else a default sized to the base graph — enough
/// links per receiver for its maximum degree (a static or base-subset
/// schedule then never evicts, since the replica census is already
/// bounded by the actual links), floored at
/// [`skiptrain_engine::DEFAULT_REPLICA_CAP`]. A cap *below* the
/// in-degree silently downgrades error feedback toward plain masked
/// compression (most links restart cold every round), so that trade-off
/// is reserved for explicit `feedback_replica_cap` settings.
pub(crate) fn effective_replica_cap(
    explicit: Option<usize>,
    base: &Graph,
    schedule: &TopologyScheduleSpec,
) -> usize {
    explicit.unwrap_or_else(|| {
        // The in-degree bound must cover every graph the schedule can put
        // in effect: the base graph for Static/EdgeDropout/PairwiseMatching
        // (whose round graphs are subsets of it), plus each cycle graph —
        // a cycle may legally be denser than the base topology.
        let mut degree = base.degree_range().1;
        if let TopologyScheduleSpec::Cycle(graphs) = schedule {
            for g in graphs {
                degree = degree.max(g.degree_range().1);
            }
        }
        degree.max(skiptrain_engine::DEFAULT_REPLICA_CAP)
    })
}

/// Virtual-time realism knobs for the event-driven engine.
///
/// This is the experiment-layer face of the engine's
/// [`ComputeProfile`] and [`LatencyModel`]: how long each node's
/// training round takes in virtual ticks, and how long each message
/// spends in flight. The default — homogeneous compute, zero latency —
/// reproduces the legacy lockstep results bit for bit, and
/// `#[serde(default)]` keeps every pre-event JSON config loadable
/// unchanged. Under the synchronous runner's barrier semantics these
/// knobs stretch virtual time without changing learning curves; under
/// async gossip's deadline semantics they decide which messages arrive
/// too late to aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TimingSpec {
    /// Per-node training-round duration model.
    #[serde(default)]
    pub compute: ComputeProfile,
    /// Per-link message-delay model.
    #[serde(default)]
    pub latency: LatencyModel,
}

impl TimingSpec {
    /// True when this spec cannot perturb timing at all (the engine's
    /// bit-compatible fast path).
    pub fn is_trivial(&self) -> bool {
        self.compute.is_uniform() && self.latency.is_zero()
    }

    /// Checks timing invariants against the experiment's node count.
    pub fn validate(&self, nodes: usize) -> Result<(), ConfigError> {
        match &self.compute {
            ComputeProfile::Homogeneous => {}
            ComputeProfile::PerNode { factors } => {
                if factors.len() != nodes {
                    return Err(ConfigError::ComputeProfileArityMismatch {
                        expected: nodes,
                        got: factors.len(),
                    });
                }
                for &f in factors {
                    if !(f.is_finite() && f > 0.0) {
                        return Err(ConfigError::InvalidComputeProfile { value: f });
                    }
                }
            }
            ComputeProfile::StragglerTail {
                tail_prob,
                tail_factor,
            } => {
                if !(tail_prob.is_finite() && (0.0..=1.0).contains(tail_prob)) {
                    return Err(ConfigError::InvalidComputeProfile { value: *tail_prob });
                }
                if !(tail_factor.is_finite() && *tail_factor >= 1.0) {
                    return Err(ConfigError::InvalidComputeProfile {
                        value: *tail_factor,
                    });
                }
            }
        }
        if let LatencyModel::Seeded { jitter, .. } = self.latency {
            if !(jitter.is_finite() && (0.0..=1.0).contains(&jitter)) {
                return Err(ConfigError::InvalidLatencyJitter { value: jitter });
            }
        }
        Ok(())
    }
}

/// Node churn specification: seeded per-round leave/rejoin probabilities.
///
/// This is the experiment-layer face of the engine's [`ChurnModel`]. An
/// absent node freezes — no training, no messages, no energy — and its
/// mixing row collapses to identity, so the ledger's conservation
/// invariants hold exactly through arbitrary churn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Per-round probability that a present node leaves.
    pub leave_prob: f64,
    /// Per-round probability that an absent node rejoins.
    pub rejoin_prob: f64,
}

impl ChurnSpec {
    /// Checks churn invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for p in [self.leave_prob, self.rejoin_prob] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(ConfigError::InvalidChurnRate { value: p });
            }
        }
        Ok(())
    }

    /// Lowers the spec onto the engine's churn model.
    pub fn build(&self) -> ChurnModel {
        ChurnModel {
            leave_prob: self.leave_prob,
            rejoin_prob: self.rejoin_prob,
        }
    }
}

/// End-of-run event-engine totals for one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct EventSummary {
    /// Virtual time at the end of the run, in engine ticks.
    pub virtual_ticks: u64,
    /// Total events played through the queue.
    pub events: u64,
    /// Messages that missed their round deadline (always 0 under barrier
    /// semantics).
    pub late_messages: u64,
    /// Node rejoin events.
    pub joins: u64,
    /// Node leave events.
    pub leaves: u64,
}

/// Synthetic dataset family (see `skiptrain-data` for the substitution
/// rationale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataSpec {
    /// CIFAR-10-like shared pool with sort-by-label sharding (§4.2).
    CifarLike {
        /// Feature dimensionality.
        feature_dim: usize,
        /// Training samples per node.
        samples_per_node: usize,
        /// Test-pool size (split 50/50 into validation/test).
        test_samples: usize,
        /// Shards per node (2 = the paper's setting).
        shards_per_node: usize,
        /// Class-center separation (task difficulty).
        separation: f32,
        /// Within-class noise (task difficulty).
        noise: f32,
        /// Sub-clusters per class (task nonlinearity).
        modes_per_class: usize,
    },
    /// CIFAR-10-like shared pool under an arbitrary partitioner (IID /
    /// Dirichlet / shards) — used by heterogeneity ablations.
    CifarPartitioned {
        /// Feature dimensionality.
        feature_dim: usize,
        /// Training samples per node.
        samples_per_node: usize,
        /// Test-pool size (split 50/50 into validation/test).
        test_samples: usize,
        /// The partitioner.
        partition: skiptrain_data::Partition,
        /// Class-center separation (task difficulty).
        separation: f32,
        /// Within-class noise (task difficulty).
        noise: f32,
        /// Sub-clusters per class (task nonlinearity).
        modes_per_class: usize,
    },
    /// FEMNIST-like per-writer data (natural non-IID).
    FemnistLike {
        /// Feature dimensionality.
        feature_dim: usize,
        /// Training samples per writer/node.
        samples_per_node: usize,
        /// Test-pool size (split 50/50 into validation/test).
        test_samples: usize,
        /// Writer-style strength in `[0, 1]`.
        style_strength: f32,
        /// Class-center separation (task difficulty).
        separation: f32,
        /// Within-class noise (task difficulty).
        noise: f32,
        /// Sub-clusters per class (task nonlinearity).
        modes_per_class: usize,
    },
}

impl DataSpec {
    /// Number of classes in the task.
    pub fn num_classes(&self) -> usize {
        match self {
            DataSpec::CifarLike { .. } | DataSpec::CifarPartitioned { .. } => 10,
            DataSpec::FemnistLike { .. } => 47,
        }
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        match self {
            DataSpec::CifarLike { feature_dim, .. }
            | DataSpec::CifarPartitioned { feature_dim, .. }
            | DataSpec::FemnistLike { feature_dim, .. } => *feature_dim,
        }
    }

    /// Generates per-node datasets plus validation/test splits.
    pub fn build(&self, n: usize, seed: u64) -> DataBundle {
        match self {
            DataSpec::CifarLike {
                feature_dim,
                samples_per_node,
                test_samples,
                shards_per_node,
                separation,
                noise,
                modes_per_class,
            } => {
                let spec = MixtureSpec {
                    num_classes: 10,
                    feature_dim: *feature_dim,
                    modes_per_class: *modes_per_class,
                    separation: *separation,
                    noise: *noise,
                };
                let (pool, test_pool) =
                    cifar_like(&spec, n * samples_per_node, *test_samples, seed);
                let parts = partition_indices(
                    &pool,
                    n,
                    &Partition::Shards {
                        shards_per_node: *shards_per_node,
                    },
                    derive_seed(seed, 0x5A4D),
                );
                let node_datasets = materialize(&pool, &parts);
                let splits = split_eval(&test_pool, derive_seed(seed, 0xE0A1));
                DataBundle::from_parts(node_datasets, splits.validation, splits.test)
            }
            DataSpec::CifarPartitioned {
                feature_dim,
                samples_per_node,
                test_samples,
                partition,
                separation,
                noise,
                modes_per_class,
            } => {
                let spec = MixtureSpec {
                    num_classes: 10,
                    feature_dim: *feature_dim,
                    modes_per_class: *modes_per_class,
                    separation: *separation,
                    noise: *noise,
                };
                let (pool, test_pool) =
                    cifar_like(&spec, n * samples_per_node, *test_samples, seed);
                let parts = partition_indices(&pool, n, partition, derive_seed(seed, 0x5A4D));
                let node_datasets = materialize(&pool, &parts);
                let splits = split_eval(&test_pool, derive_seed(seed, 0xE0A1));
                DataBundle::from_parts(node_datasets, splits.validation, splits.test)
            }
            DataSpec::FemnistLike {
                feature_dim,
                samples_per_node,
                test_samples,
                style_strength,
                separation,
                noise,
                modes_per_class,
            } => {
                let spec = MixtureSpec {
                    num_classes: 47,
                    feature_dim: *feature_dim,
                    modes_per_class: *modes_per_class,
                    separation: *separation,
                    noise: *noise,
                };
                let (node_datasets, test_pool) = femnist_like(
                    &spec,
                    n,
                    *samples_per_node,
                    *test_samples,
                    *style_strength,
                    seed,
                );
                let splits = split_eval(&test_pool, derive_seed(seed, 0xE0A1));
                DataBundle::from_parts(node_datasets, splits.validation, splits.test)
            }
        }
    }

    /// Training samples generated per node.
    pub fn samples_per_node(&self) -> usize {
        match self {
            DataSpec::CifarLike {
                samples_per_node, ..
            }
            | DataSpec::CifarPartitioned {
                samples_per_node, ..
            }
            | DataSpec::FemnistLike {
                samples_per_node, ..
            } => *samples_per_node,
        }
    }

    /// Size of the evaluation pool (split into validation/test).
    pub fn test_samples(&self) -> usize {
        match self {
            DataSpec::CifarLike { test_samples, .. }
            | DataSpec::CifarPartitioned { test_samples, .. }
            | DataSpec::FemnistLike { test_samples, .. } => *test_samples,
        }
    }
}

/// Generated data for one experiment.
///
/// Every dataset sits behind an `Arc`: cloning a bundle reference into a
/// simulation (or sharing one bundle across all runs of a
/// [`Campaign`](crate::Campaign)) is pointer-cheap, never a deep copy.
#[derive(Debug, Clone)]
pub struct DataBundle {
    /// One private training set per node.
    pub node_datasets: Vec<Arc<Dataset>>,
    /// Validation set (hyperparameter tuning).
    pub validation: Arc<Dataset>,
    /// Test set (reported accuracy).
    pub test: Arc<Dataset>,
}

impl DataBundle {
    /// Wraps freshly materialized datasets into a shareable bundle.
    pub fn from_parts(node_datasets: Vec<Dataset>, validation: Dataset, test: Dataset) -> Self {
        Self {
            node_datasets: node_datasets.into_iter().map(Arc::new).collect(),
            validation: Arc::new(validation),
            test: Arc::new(test),
        }
    }

    /// Number of per-node datasets.
    pub fn node_count(&self) -> usize {
        self.node_datasets.len()
    }
}

/// Energy accounting setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergySpec {
    /// Nominal Table-1 workload used for energy math (decoupled from the
    /// reduced synthetic simulation models).
    pub workload: WorkloadSpec,
    /// `Some(fraction)` enables the constrained setting: per-node budgets τ
    /// equal the rounds needed to spend `fraction` of each device battery.
    pub battery_fraction: Option<f64>,
    /// Radio energy per transmitted/received byte (J). `None` keeps the
    /// paper-fit default; overriding it moves a fleet into a
    /// comm-dominated regime where per-link codec choice controls real
    /// battery spend (the adaptive-compression frontier). Absent from
    /// legacy configs, so deserialization defaults it.
    #[serde(default)]
    pub comm_joules_per_byte: Option<f64>,
}

impl EnergySpec {
    /// Unconstrained CIFAR-10 energy accounting.
    pub fn cifar10() -> Self {
        Self {
            workload: WorkloadSpec::cifar10(),
            battery_fraction: None,
            comm_joules_per_byte: None,
        }
    }

    /// Constrained CIFAR-10 (10 % battery, §4.2).
    pub fn cifar10_constrained() -> Self {
        Self {
            workload: WorkloadSpec::cifar10(),
            battery_fraction: Some(skiptrain_energy::trace::CIFAR_BATTERY_FRACTION),
            comm_joules_per_byte: None,
        }
    }

    /// Unconstrained FEMNIST energy accounting.
    pub fn femnist() -> Self {
        Self {
            workload: WorkloadSpec::femnist(),
            battery_fraction: None,
            comm_joules_per_byte: None,
        }
    }

    /// Constrained FEMNIST (50 % battery, §4.2).
    pub fn femnist_constrained() -> Self {
        Self {
            workload: WorkloadSpec::femnist(),
            battery_fraction: Some(skiptrain_energy::trace::FEMNIST_BATTERY_FRACTION),
            comm_joules_per_byte: None,
        }
    }

    /// Rescales the battery fraction so the budget-to-opportunity ratio
    /// τ/T_train at `rounds` matches what the paper's setting produces at
    /// `paper_rounds` (used when running the constrained experiments at
    /// reduced scale).
    pub fn scaled_for_rounds(&self, rounds: usize, paper_rounds: usize) -> EnergySpec {
        EnergySpec {
            workload: self.workload,
            battery_fraction: self
                .battery_fraction
                .map(|f| f * rounds as f64 / paper_rounds as f64),
            comm_joules_per_byte: self.comm_joules_per_byte,
        }
    }

    /// Per-node training-round energies (Wh) for an `n`-node fleet.
    pub fn node_energies(&self, n: usize) -> Vec<f64> {
        fleet(n)
            .iter()
            .map(|d| round_energy_wh(&d.profile(), &self.workload))
            .collect()
    }

    /// Per-node training budgets τ; `u32::MAX` when unconstrained.
    pub fn node_budgets(&self, n: usize) -> Vec<u32> {
        match self.battery_fraction {
            None => vec![u32::MAX; n],
            Some(frac) => fleet(n)
                .iter()
                .map(|d| training_budget_rounds(&d.profile(), &self.workload, frac) as u32)
                .collect(),
        }
    }
}

/// How much battery capacity each node gets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatteryCapacitySpec {
    /// Every node gets the same capacity (Wh).
    Uniform {
        /// Capacity per node, Wh.
        wh: f64,
    },
    /// Node `i` gets `fraction` of its fleet device's battery (the §4.2
    /// heterogeneous-phones setting, Wh-denominated).
    Fleet {
        /// Fraction of each device battery in `(0, 1]`.
        fraction: f64,
    },
}

/// Closed-loop battery setup, in serializable configuration form.
///
/// This is the experiment-layer face of
/// [`BatterySetup`](skiptrain_energy::battery::BatterySetup): node
/// batteries drain from the energy ledger's actual per-round spend,
/// recharge from the harvest profile, and the policy gates both training
/// *and* gossip per round (see the engine crate docs for the exact round
/// order). The harvest trace's round duration is derived from the
/// experiment's nominal workload — the fleet's *slowest* device sets the
/// wall-clock length of a lockstep round, so that is how long every
/// harvester collects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatterySpec {
    /// Per-node capacity.
    pub capacity: BatteryCapacitySpec,
    /// Initial state of charge as a fraction of capacity in `[0, 1]`
    /// (`1.0` = full).
    pub initial_fraction: f64,
    /// Energy-harvesting power profile feeding the batteries.
    pub harvest: HarvestProfile,
    /// Per-node harvest phase jitter in `[0, 1]` (fraction of the profile
    /// period; deterministic per node, derived from the master seed).
    #[serde(default)]
    pub harvest_jitter: f64,
    /// Participation policy deciding from charge fractions who trains and
    /// gossips.
    pub policy: BatteryPolicy,
    /// Optional heterogeneous fleet: one policy per node, overriding
    /// `policy` (which then only names the fleet default in reports).
    /// Must match the experiment's node count; every listed policy is
    /// validated like the fleet-wide one. `#[serde(default)]` keeps
    /// legacy JSON configs bit-compatible (absent field = uniform fleet).
    #[serde(default)]
    pub node_policies: Option<Vec<BatteryPolicy>>,
}

impl BatterySpec {
    /// Checks every battery invariant, returning the first violation.
    /// `nodes` bounds the per-node policy list when one is configured.
    pub fn validate(&self, nodes: usize) -> Result<(), ConfigError> {
        let capacity_ok = match self.capacity {
            BatteryCapacitySpec::Uniform { wh } => wh.is_finite() && wh > 0.0,
            BatteryCapacitySpec::Fleet { fraction } => {
                fraction.is_finite() && fraction > 0.0 && fraction <= 1.0
            }
        };
        if !capacity_ok {
            return Err(ConfigError::NonPositiveBatteryCapacity);
        }
        if !(self.initial_fraction.is_finite() && (0.0..=1.0).contains(&self.initial_fraction)) {
            return Err(ConfigError::InvalidBatteryInitialFraction);
        }
        if !(self.harvest_jitter.is_finite() && (0.0..=1.0).contains(&self.harvest_jitter)) {
            return Err(ConfigError::InvalidHarvestJitter);
        }
        let harvest_ok = match &self.harvest {
            HarvestProfile::None => true,
            HarvestProfile::Constant { watts } => watts.is_finite() && *watts >= 0.0,
            HarvestProfile::Diurnal {
                peak_watts,
                period_rounds,
            } => {
                peak_watts.is_finite()
                    && *peak_watts >= 0.0
                    && period_rounds.is_finite()
                    && *period_rounds > 0.0
            }
            HarvestProfile::Piecewise { watts } => {
                !watts.is_empty() && watts.iter().all(|w| w.is_finite() && *w >= 0.0)
            }
        };
        if !harvest_ok {
            return Err(ConfigError::InvalidHarvestProfile);
        }
        Self::validate_policy(&self.policy)?;
        if let Some(policies) = &self.node_policies {
            if policies.len() != nodes {
                return Err(ConfigError::BatteryPolicyArityMismatch {
                    expected: nodes,
                    got: policies.len(),
                });
            }
            for policy in policies {
                Self::validate_policy(policy)?;
            }
        }
        Ok(())
    }

    /// Checks one participation policy's invariants.
    fn validate_policy(policy: &BatteryPolicy) -> Result<(), ConfigError> {
        match *policy {
            BatteryPolicy::AlwaysOn => Ok(()),
            BatteryPolicy::Threshold { min_fraction } => {
                if min_fraction.is_finite() && min_fraction > 0.0 && min_fraction <= 1.0 {
                    Ok(())
                } else {
                    Err(ConfigError::InvalidBatteryPolicyFraction)
                }
            }
            BatteryPolicy::Hysteresis {
                suspend_fraction,
                resume_fraction,
            } => {
                if !(suspend_fraction.is_finite()
                    && resume_fraction.is_finite()
                    && suspend_fraction >= 0.0
                    && resume_fraction <= 1.0)
                {
                    return Err(ConfigError::InvertedHysteresisBands);
                }
                if suspend_fraction >= resume_fraction {
                    return Err(ConfigError::InvertedHysteresisBands);
                }
                Ok(())
            }
            BatteryPolicy::DutyCycle { target_fraction } => {
                if target_fraction.is_finite() && target_fraction > 0.0 && target_fraction <= 1.0 {
                    Ok(())
                } else {
                    Err(ConfigError::InvalidBatteryPolicyFraction)
                }
            }
        }
    }

    /// Per-node capacities (Wh) for an `n`-node fleet.
    pub fn node_capacities(&self, n: usize) -> Vec<f64> {
        match self.capacity {
            BatteryCapacitySpec::Uniform { wh } => vec![wh; n],
            BatteryCapacitySpec::Fleet { fraction } => fleet(n)
                .iter()
                .map(|d| d.profile().battery_wh * fraction)
                .collect(),
        }
    }

    /// Lowers the spec onto the energy layer for an `n`-node fleet:
    /// concrete charge states, plus a harvest trace whose per-node phase
    /// jitter is chained from the experiment's master seed and whose
    /// round duration is the slowest fleet device's training-round
    /// wall-clock under `workload` (a lockstep round lasts as long as its
    /// slowest participant).
    pub fn build(&self, n: usize, master_seed: u64, workload: &WorkloadSpec) -> BatterySetup {
        let state =
            BatteryState::with_initial_fraction(self.node_capacities(n), self.initial_fraction);
        let round_s = fleet(n)
            .iter()
            .map(|d| round_duration_s(&d.profile(), workload))
            .fold(0.0f64, f64::max);
        let trace = HarvestTrace::new(
            self.harvest.clone(),
            round_s,
            n,
            master_seed,
            self.harvest_jitter,
        );
        BatterySetup {
            state,
            trace,
            policy: self.policy,
            node_policies: self.node_policies.clone(),
        }
    }
}

/// End-of-run battery bookkeeping totals for one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BatterySummary {
    /// Total harvest energy offered across nodes and rounds (Wh).
    pub harvested_wh: f64,
    /// Harvest clipped away at full batteries (Wh).
    pub wasted_wh: f64,
    /// Energy actually drained from batteries (Wh).
    pub drained_wh: f64,
    /// Sum of final node charges (Wh).
    pub final_charge_wh: f64,
    /// Node-rounds that participated (trained/gossiped).
    pub node_participations: u64,
    /// Node-rounds that browned out (intended to train, could not afford
    /// it, burned their remaining charge).
    pub brownouts: u64,
}

impl BatterySummary {
    /// Accuracy-per-harvest denominator: harvested Wh, floored at the
    /// drained total so zero-harvest runs still normalize.
    pub fn harvest_denominator_wh(&self) -> f64 {
        self.harvested_wh.max(self.drained_wh)
    }
}

/// The compression subsystem's experiment-level spec: a per-directed-link
/// codec selection policy, the consensus stepsize γ, and optional
/// CHOCO-SGD error feedback — the first-class replacement for the legacy
/// flat `codec` / `feedback_beta` / `feedback_replica_cap` fields of
/// [`ExperimentConfig`]. Every field is serde-defaulted so partial JSON
/// specs load, and [`ExperimentConfig::effective_compression`] merges a
/// spec with the legacy fields (spec wins where set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionSpec {
    /// Per-directed-link codec selection policy (defaults to uniform
    /// lossless dense — the legacy behaviour).
    #[serde(default)]
    pub policy: CompressionPolicy,
    /// Consensus stepsize γ ∈ (0, 1]:
    /// `x^t = x^{t−½} + γ (Σ_j W_ji x_j^{t−½} − x^{t−½})`. `1.0` (the
    /// default) is the paper's plain mixing update, bit-identical to the
    /// pre-γ executor; γ < 1 damps consensus for extreme sparsity.
    #[serde(default = "default_consensus_gamma")]
    pub gamma: f32,
    /// CHOCO-SGD error-feedback β (`None` = feedback off). Unset falls
    /// back to the legacy top-level `feedback_beta`.
    #[serde(default)]
    pub feedback_beta: Option<f32>,
    /// Per-receiver replica cap override for error feedback. Unset falls
    /// back to the legacy top-level `feedback_replica_cap` (and from
    /// there to the graph-derived default).
    #[serde(default)]
    pub feedback_replica_cap: Option<usize>,
}

fn default_consensus_gamma() -> f32 {
    1.0
}

impl Default for CompressionSpec {
    fn default() -> Self {
        Self {
            policy: CompressionPolicy::default(),
            gamma: default_consensus_gamma(),
            feedback_beta: None,
            feedback_replica_cap: None,
        }
    }
}

impl CompressionSpec {
    /// A spec equivalent to the legacy global-codec configuration: every
    /// link uses `codec`, γ = 1, feedback inherited from the legacy
    /// fields.
    pub fn uniform(codec: ModelCodec) -> Self {
        Self {
            policy: CompressionPolicy::Uniform(codec),
            ..Self::default()
        }
    }

    /// Checks every compression invariant, returning the first violation.
    pub fn validate(&self, nodes: usize) -> Result<(), ConfigError> {
        let gamma = self.gamma;
        if !(gamma.is_finite() && gamma > 0.0 && gamma <= 1.0) {
            return Err(ConfigError::InvalidConsensusGamma {
                value: gamma as f64,
            });
        }
        if let Some(beta) = self.feedback_beta {
            if !(beta.is_finite() && beta > 0.0 && beta <= 1.0) {
                return Err(ConfigError::InvalidFeedbackBeta);
            }
        }
        if self.feedback_replica_cap == Some(0) {
            return Err(ConfigError::ZeroReplicaCap);
        }
        let check_codec = |codec: ModelCodec| -> Result<(), ConfigError> {
            if matches!(codec, ModelCodec::TopK { k: 0 }) {
                return Err(ConfigError::ZeroTopK);
            }
            Ok(())
        };
        match &self.policy {
            CompressionPolicy::Uniform(codec) => check_codec(*codec)?,
            CompressionPolicy::PerLink { default, links } => {
                check_codec(*default)?;
                for link in links {
                    check_codec(link.codec)?;
                    if link.src == link.dst
                        || link.src as usize >= nodes
                        || link.dst as usize >= nodes
                    {
                        return Err(ConfigError::LinkCodecOutOfRange {
                            src: link.src,
                            dst: link.dst,
                            nodes,
                        });
                    }
                }
                let mut keys: Vec<(u32, u32)> = links.iter().map(|l| (l.src, l.dst)).collect();
                keys.sort_unstable();
                for pair in keys.windows(2) {
                    if pair[0] == pair[1] {
                        return Err(ConfigError::DuplicateLinkCodec {
                            src: pair[0].0,
                            dst: pair[0].1,
                        });
                    }
                }
            }
            CompressionPolicy::RarityAdaptive { base_k, max_k } => {
                if *base_k == 0 || max_k < base_k {
                    return Err(ConfigError::InvalidRarityBounds {
                        base_k: *base_k,
                        max_k: *max_k,
                    });
                }
            }
            CompressionPolicy::EnergyAdaptive { tiers } => {
                if tiers.is_empty() {
                    return Err(ConfigError::InvalidEnergyTiers);
                }
                for tier in tiers {
                    check_codec(tier.codec)?;
                    let t = tier.min_charge_fraction;
                    if !(t.is_finite() && (0.0..=1.0).contains(&t)) {
                        return Err(ConfigError::InvalidEnergyTiers);
                    }
                }
                for pair in tiers.windows(2) {
                    if pair[0].min_charge_fraction <= pair[1].min_charge_fraction {
                        return Err(ConfigError::InvalidEnergyTiers);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Complete description of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Label used in reports.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Total rounds `T`.
    pub rounds: usize,
    /// Algorithm under test.
    pub algorithm: AlgorithmSpec,
    /// Communication topology.
    pub topology: TopologySpec,
    /// Round→graph schedule over the topology (defaults to the paper's
    /// static setting; `#[serde(default)]` keeps legacy JSON configs
    /// loadable unchanged). Non-static schedules regenerate
    /// Metropolis–Hastings mixing weights per scheduled round, so every
    /// effective round stays symmetric and doubly stochastic, and the
    /// energy ledger charges only the edges that actually fired.
    #[serde(default)]
    pub topology_schedule: TopologyScheduleSpec,
    /// Dataset family and scale.
    pub data: DataSpec,
    /// Hidden width of the per-node MLP (0 = softmax regression).
    pub hidden_dim: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Local SGD steps per training round.
    pub local_steps: usize,
    /// SGD learning rate η.
    pub learning_rate: f32,
    /// Master seed.
    pub seed: u64,
    /// Evaluate every this many rounds (the paper uses Γ_train + Γ_sync).
    pub eval_every: usize,
    /// Cap on evaluation samples per eval point (`usize::MAX` = full set).
    pub eval_max_samples: usize,
    /// Energy accounting / budgets.
    pub energy: EnergySpec,
    /// Message transport.
    pub transport: TransportKind,
    /// Model-compression codec for the share phase (defaults to lossless
    /// dense f32; `#[serde(default)]` keeps older JSON configs loadable).
    #[serde(default)]
    pub codec: ModelCodec,
    /// `Some(β)` enables CHOCO-SGD-style error-feedback compression: each
    /// directed link accumulates the residual its codec discarded and
    /// re-injects `β ·` that residual into its next payload (`β ∈ (0, 1]`).
    /// Sender-local state, zero extra wire bytes; a no-op for the lossless
    /// dense codec. `#[serde(default)]` keeps older JSON configs
    /// bit-compatible (absent field = feedback off).
    #[serde(default)]
    pub feedback_beta: Option<f32>,
    /// Per-receiver replica cap for error feedback: bounds feedback
    /// memory at `nodes × cap` model vectors under time-varying
    /// topologies by evicting the stalest link (which restarts cold on
    /// its next delivery). `None` derives a never-evicting default from
    /// the base graph — `max(max degree,`
    /// [`skiptrain_engine::DEFAULT_REPLICA_CAP`]`)` — because a cap
    /// below the in-degree silently degrades feedback toward plain
    /// masked compression; set it explicitly to trade residual memory
    /// for a hard bound. `#[serde(default)]` keeps older JSON configs
    /// bit-compatible.
    #[serde(default)]
    pub feedback_replica_cap: Option<usize>,
    /// First-class compression subsystem spec: per-link codec policy,
    /// consensus stepsize γ, error feedback. `None` (and the serde
    /// default, so every pre-policy JSON config loads bit-compatibly)
    /// falls back to the legacy flat fields above — `codec` as a uniform
    /// policy, γ = 1, `feedback_beta` / `feedback_replica_cap` as-is.
    /// When set, its unset feedback fields still inherit the legacy ones
    /// (see [`ExperimentConfig::effective_compression`]).
    #[serde(default)]
    pub compression: Option<CompressionSpec>,
    /// Also record the accuracy of the averaged (all-reduced) model at each
    /// evaluation point — the hypothetical curve of Figure 1.
    pub record_mean_model: bool,
    /// Closed-loop battery setup: per-node charge states drained by the
    /// ledger's actual spend, recharged by a harvest profile, with a
    /// participation policy gating training *and* gossip per round.
    /// `None` (and the serde default — legacy JSON configs load
    /// bit-compatibly) runs the paper's plug-powered setting.
    #[serde(default)]
    pub battery: Option<BatterySpec>,
    /// Virtual-time realism: per-node compute speed and per-link latency
    /// for the event-driven engine. The default (homogeneous, zero
    /// latency — also the serde default, so legacy JSON configs load
    /// bit-compatibly) reproduces the lockstep results bit for bit.
    #[serde(default)]
    pub timing: TimingSpec,
    /// Node churn: seeded per-round leave/rejoin probabilities. `None`
    /// (and the serde default) keeps every node present all run.
    #[serde(default)]
    pub churn: Option<ChurnSpec>,
}

impl ExperimentConfig {
    /// The per-node model architecture.
    pub fn model_kind(&self) -> ModelKind {
        let classes = self.data.num_classes();
        let input = self.data.feature_dim();
        if self.hidden_dim == 0 {
            ModelKind::Logistic {
                input_dim: input,
                classes,
            }
        } else {
            ModelKind::Mlp {
                dims: vec![input, self.hidden_dim, classes],
            }
        }
    }

    /// Builds the policy for this config, reporting missing battery budgets
    /// as a typed error.
    pub fn try_build_policy(&self) -> Result<Box<dyn RoundPolicy>, ConfigError> {
        let needs_budget = matches!(
            self.algorithm,
            AlgorithmSpec::SkipTrainConstrained(_) | AlgorithmSpec::Greedy
        );
        if needs_budget && self.energy.battery_fraction.is_none() {
            return Err(ConfigError::MissingBatteryFraction {
                algorithm: self.algorithm.name().to_string(),
            });
        }
        // Budgeted policies carry the per-node training cost so their
        // trackers report Wh-consistent views of the integer τ budgets.
        Ok(match &self.algorithm {
            AlgorithmSpec::DPsgd => Box::new(DPsgdPolicy),
            AlgorithmSpec::SkipTrain(schedule) => Box::new(SkipTrainPolicy::new(*schedule)),
            AlgorithmSpec::SkipTrainConstrained(schedule) => {
                Box::new(ConstrainedPolicy::with_round_costs(
                    *schedule,
                    self.energy.node_budgets(self.nodes),
                    self.energy.node_energies(self.nodes),
                    self.rounds,
                    derive_seed(self.seed, 0x70C1),
                ))
            }
            AlgorithmSpec::Greedy => Box::new(GreedyPolicy::with_round_costs(
                self.energy.node_budgets(self.nodes),
                self.energy.node_energies(self.nodes),
            )),
        })
    }

    /// Builds the policy for this config.
    ///
    /// # Panics
    /// Panics when a budget-constrained algorithm lacks a battery fraction;
    /// prefer [`ExperimentConfig::try_build_policy`] or the validating
    /// [`Experiment`](crate::Experiment) API.
    pub fn build_policy(&self) -> Box<dyn RoundPolicy> {
        // lint:allow(no_panic, "documented '# Panics' contract; try_build_policy is the typed-error path")
        self.try_build_policy().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The compression configuration this experiment actually runs: the
    /// first-class [`CompressionSpec`] when one is set (with unset
    /// feedback fields inherited from the legacy flat fields), or the
    /// legacy `codec` / `feedback_beta` / `feedback_replica_cap` fields
    /// lifted into a uniform-policy spec with γ = 1. Every consumer
    /// (validation, the runner's engine lowering) goes through this one
    /// merge, so the two configuration surfaces cannot diverge.
    pub fn effective_compression(&self) -> CompressionSpec {
        match &self.compression {
            Some(spec) => CompressionSpec {
                policy: spec.policy.clone(),
                gamma: spec.gamma,
                feedback_beta: spec.feedback_beta.or(self.feedback_beta),
                feedback_replica_cap: spec.feedback_replica_cap.or(self.feedback_replica_cap),
            },
            None => CompressionSpec {
                policy: CompressionPolicy::Uniform(self.codec),
                gamma: 1.0,
                feedback_beta: self.feedback_beta,
                feedback_replica_cap: self.feedback_replica_cap,
            },
        }
    }

    /// Checks every configuration invariant, returning the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        if self.rounds == 0 {
            return Err(ConfigError::ZeroRounds);
        }
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if self.local_steps == 0 {
            return Err(ConfigError::ZeroLocalSteps);
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(ConfigError::NonPositiveLearningRate);
        }
        if let TopologySpec::Regular { degree } = self.topology {
            if degree >= self.nodes {
                return Err(ConfigError::DegreeTooLarge {
                    degree,
                    nodes: self.nodes,
                });
            }
            if !(degree * self.nodes).is_multiple_of(2) {
                return Err(ConfigError::OddDegreeProduct {
                    degree,
                    nodes: self.nodes,
                });
            }
        }
        if self.data.samples_per_node() == 0 {
            return Err(ConfigError::EmptyNodeData);
        }
        if self.data.test_samples() == 0 {
            return Err(ConfigError::EmptyEvalData);
        }
        if let Some(fraction) = self.energy.battery_fraction {
            if !(fraction > 0.0 && fraction <= 1.0) {
                return Err(ConfigError::InvalidBatteryFraction);
            }
        }
        if let Some(j) = self.energy.comm_joules_per_byte {
            if !(j.is_finite() && j > 0.0) {
                return Err(ConfigError::InvalidCommJoulesPerByte);
            }
        }
        // Compression invariants are checked on the *effective* spec, so
        // the legacy flat fields and a first-class `CompressionSpec` pass
        // through one validator.
        self.effective_compression().validate(self.nodes)?;
        if let TransportKind::Serialized {
            drop_prob,
            corrupt_prob,
        } = self.transport
        {
            let unit = |p: f64| p.is_finite() && (0.0..1.0).contains(&p);
            if !unit(drop_prob) || !unit(corrupt_prob) || drop_prob + corrupt_prob >= 1.0 {
                return Err(ConfigError::InvalidTransportLoss {
                    drop_prob,
                    corrupt_prob,
                });
            }
        }
        if let Some(beta) = self.feedback_beta {
            if !(beta.is_finite() && beta > 0.0 && beta <= 1.0) {
                return Err(ConfigError::InvalidFeedbackBeta);
            }
        }
        if self.feedback_replica_cap == Some(0) {
            return Err(ConfigError::ZeroReplicaCap);
        }
        if let Some(battery) = &self.battery {
            battery.validate(self.nodes)?;
        }
        self.timing.validate(self.nodes)?;
        if let Some(churn) = &self.churn {
            churn.validate()?;
        }
        self.topology_schedule.validate(self.nodes)?;
        let needs_budget = matches!(
            self.algorithm,
            AlgorithmSpec::SkipTrainConstrained(_) | AlgorithmSpec::Greedy
        );
        if needs_budget && self.energy.battery_fraction.is_none() {
            return Err(ConfigError::MissingBatteryFraction {
                algorithm: self.algorithm.name().to_string(),
            });
        }
        Ok(())
    }

    /// Runs this experiment end to end: generates data, executes every
    /// round, returns the collected result.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use
    /// [`Experiment`](crate::Experiment) for the fallible, pre-validated
    /// path.
    pub fn run(&self) -> ExperimentResult {
        self.validate()
            // lint:allow(no_panic, "documented '# Panics' contract; Experiment is the validating path")
            .unwrap_or_else(|e| panic!("invalid experiment config: {e}"));
        let data = self.data.build(self.nodes, self.seed);
        // lint:allow(no_panic, "documented '# Panics' contract; Experiment is the validating path")
        crate::runner::execute(self, &data, &mut []).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs this experiment on pre-built data (sweeps and multi-algorithm
    /// comparisons reuse one generated bundle).
    ///
    /// # Panics
    /// Panics on an invalid configuration or a mismatched bundle; see
    /// [`ExperimentConfig::run`].
    pub fn run_on(&self, data: &DataBundle) -> ExperimentResult {
        crate::runner::run_with_observers(self, data, &mut [])
            // lint:allow(no_panic, "documented '# Panics' contract; Experiment is the validating path")
            .unwrap_or_else(|e| panic!("invalid experiment config: {e}"))
    }
}

/// Everything a figure needs from one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Config label.
    pub name: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Node count.
    pub nodes: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Test-accuracy learning curve.
    pub test_curve: Vec<AccuracyPoint>,
    /// `(round, accuracy)` of the averaged model, when enabled.
    pub mean_model_curve: Vec<(usize, f32)>,
    /// Final test statistics.
    pub final_test: EvalStats,
    /// Final mean validation accuracy (hyperparameter-tuning metric).
    pub final_val_accuracy: f32,
    /// Total training energy (Wh), Eq. 3 restricted to training.
    pub total_training_wh: f64,
    /// Total communication energy (Wh).
    pub total_comm_wh: f64,
    /// Total node-round training events executed.
    pub node_train_events: u64,
    /// The element-wise mean of all node models at the end of the run (the
    /// consensus model used by fairness analysis, §5.1).
    pub final_mean_model: Vec<f32>,
    /// Distinct classes held locally by each node (fairness analysis).
    pub node_class_sets: Vec<Vec<u32>>,
    /// Battery bookkeeping totals, when the run was battery-gated
    /// (`#[serde(default)]` keeps pre-battery result JSON loadable).
    #[serde(default)]
    pub battery: Option<BatterySummary>,
    /// Event-engine totals: virtual time, event counts, late messages,
    /// churn (`#[serde(default)]` keeps pre-event result JSON loadable).
    #[serde(default)]
    pub events: EventSummary,
    /// Messages the transport corrupted in flight: each failed the
    /// receive-side frame checksum and was degraded to a drop
    /// (`#[serde(default)]` keeps pre-corruption result JSON loadable).
    #[serde(default)]
    pub corrupted_messages: u64,
    /// Total bytes the fleet put on the wire (sum of every transmit
    /// event's charged bytes — the ledger's cumulative tx total). Under
    /// adaptive compression policies this is the frontier's byte axis
    /// (`#[serde(default)]` keeps pre-policy result JSON loadable).
    #[serde(default)]
    pub total_wire_bytes: u64,
}

impl ExperimentResult {
    /// Accuracy (%) convenience for report printing.
    pub fn final_test_accuracy_pct(&self) -> f64 {
        self.final_test.mean_accuracy as f64 * 100.0
    }
}

/// Runs one experiment end to end.
///
/// # Panics
/// Panics on invalid configuration (mismatched sizes, missing budgets for
/// constrained algorithms).
#[deprecated(
    since = "0.2.0",
    note = "use `ExperimentConfig::run`, the validating `Experiment` builder, \
            or `Campaign` for multi-run execution"
)]
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    cfg.run()
}

/// Runs one experiment on pre-built data (lets sweeps and multi-algorithm
/// comparisons reuse one generated dataset).
///
/// # Panics
/// Panics on invalid configuration or a mismatched bundle.
#[deprecated(
    since = "0.2.0",
    note = "use `ExperimentConfig::run_on`, `Experiment::run_on`, or `Campaign`"
)]
pub fn run_experiment_on(cfg: &ExperimentConfig, data: &DataBundle) -> ExperimentResult {
    cfg.run_on(data)
}
