//! End-to-end experiment driver.
//!
//! An [`ExperimentConfig`] fully describes one run of the paper's evaluation
//! pipeline — dataset synthesis and partitioning, topology and mixing
//! matrix, per-node models, the algorithm (policy), energy traces — and
//! [`run_experiment`] executes it, returning learning curves and energy
//! totals. Every figure/table harness in `skiptrain-bench` is a thin loop
//! over these configs.

use crate::policy::{ConstrainedPolicy, DPsgdPolicy, GreedyPolicy, RoundPolicy, SkipTrainPolicy};
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use skiptrain_data::partition::{materialize, partition_indices};
use skiptrain_data::split::split_eval;
use skiptrain_data::synth::{cifar_like, femnist_like, MixtureSpec};
use skiptrain_data::{Dataset, Partition};
use skiptrain_energy::device::fleet;
use skiptrain_energy::trace::{round_energy_wh, training_budget_rounds, WorkloadSpec};
use skiptrain_engine::metrics::{AccuracyPoint, EvalStats, MetricsRecorder};
use skiptrain_engine::{RoundAction, Simulation, SimulationConfig, TransportKind};
use skiptrain_linalg::rng::derive_seed;
use skiptrain_nn::sgd::SgdConfig;
use skiptrain_nn::zoo::ModelKind;
use skiptrain_topology::regular::random_regular;
use skiptrain_topology::{Graph, MixingMatrix};

/// Which algorithm to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmSpec {
    /// D-PSGD (Algorithm 1) — train every round.
    DPsgd,
    /// SkipTrain (§3.1) with a coordinated schedule.
    SkipTrain(Schedule),
    /// SkipTrain-constrained (§3.2): schedule + Eq. 5 probabilities +
    /// battery budgets (requires `EnergySpec::battery_fraction`).
    SkipTrainConstrained(Schedule),
    /// Greedy baseline (§3.2): train until the budget is gone.
    Greedy,
}

impl AlgorithmSpec {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::DPsgd => "d-psgd",
            AlgorithmSpec::SkipTrain(_) => "skiptrain",
            AlgorithmSpec::SkipTrainConstrained(_) => "skiptrain-constrained",
            AlgorithmSpec::Greedy => "greedy",
        }
    }
}

/// Communication topology family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Random d-regular graph (the paper's setting).
    Regular {
        /// Node degree.
        degree: usize,
    },
    /// Fully-connected graph (all-reduce communication pattern).
    Complete,
    /// Ring.
    Ring,
}

impl TopologySpec {
    /// Builds the graph.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        match self {
            TopologySpec::Regular { degree } => random_regular(n, *degree, seed),
            TopologySpec::Complete => Graph::complete(n),
            TopologySpec::Ring => Graph::ring(n),
        }
    }
}

/// Synthetic dataset family (see `skiptrain-data` for the substitution
/// rationale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataSpec {
    /// CIFAR-10-like shared pool with sort-by-label sharding (§4.2).
    CifarLike {
        /// Feature dimensionality.
        feature_dim: usize,
        /// Training samples per node.
        samples_per_node: usize,
        /// Test-pool size (split 50/50 into validation/test).
        test_samples: usize,
        /// Shards per node (2 = the paper's setting).
        shards_per_node: usize,
        /// Class-center separation (task difficulty).
        separation: f32,
        /// Within-class noise (task difficulty).
        noise: f32,
        /// Sub-clusters per class (task nonlinearity).
        modes_per_class: usize,
    },
    /// CIFAR-10-like shared pool under an arbitrary partitioner (IID /
    /// Dirichlet / shards) — used by heterogeneity ablations.
    CifarPartitioned {
        /// Feature dimensionality.
        feature_dim: usize,
        /// Training samples per node.
        samples_per_node: usize,
        /// Test-pool size (split 50/50 into validation/test).
        test_samples: usize,
        /// The partitioner.
        partition: skiptrain_data::Partition,
        /// Class-center separation (task difficulty).
        separation: f32,
        /// Within-class noise (task difficulty).
        noise: f32,
        /// Sub-clusters per class (task nonlinearity).
        modes_per_class: usize,
    },
    /// FEMNIST-like per-writer data (natural non-IID).
    FemnistLike {
        /// Feature dimensionality.
        feature_dim: usize,
        /// Training samples per writer/node.
        samples_per_node: usize,
        /// Test-pool size (split 50/50 into validation/test).
        test_samples: usize,
        /// Writer-style strength in `[0, 1]`.
        style_strength: f32,
        /// Class-center separation (task difficulty).
        separation: f32,
        /// Within-class noise (task difficulty).
        noise: f32,
        /// Sub-clusters per class (task nonlinearity).
        modes_per_class: usize,
    },
}

impl DataSpec {
    /// Number of classes in the task.
    pub fn num_classes(&self) -> usize {
        match self {
            DataSpec::CifarLike { .. } | DataSpec::CifarPartitioned { .. } => 10,
            DataSpec::FemnistLike { .. } => 47,
        }
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        match self {
            DataSpec::CifarLike { feature_dim, .. }
            | DataSpec::CifarPartitioned { feature_dim, .. }
            | DataSpec::FemnistLike { feature_dim, .. } => *feature_dim,
        }
    }

    /// Generates per-node datasets plus validation/test splits.
    pub fn build(&self, n: usize, seed: u64) -> DataBundle {
        match self {
            DataSpec::CifarLike {
                feature_dim,
                samples_per_node,
                test_samples,
                shards_per_node,
                separation,
                noise,
                modes_per_class,
            } => {
                let spec = MixtureSpec {
                    num_classes: 10,
                    feature_dim: *feature_dim,
                    modes_per_class: *modes_per_class,
                    separation: *separation,
                    noise: *noise,
                };
                let (pool, test_pool) =
                    cifar_like(&spec, n * samples_per_node, *test_samples, seed);
                let parts = partition_indices(
                    &pool,
                    n,
                    &Partition::Shards { shards_per_node: *shards_per_node },
                    derive_seed(seed, 0x5A4D),
                );
                let node_datasets = materialize(&pool, &parts);
                let splits = split_eval(&test_pool, derive_seed(seed, 0xE0A1));
                DataBundle { node_datasets, validation: splits.validation, test: splits.test }
            }
            DataSpec::CifarPartitioned {
                feature_dim,
                samples_per_node,
                test_samples,
                partition,
                separation,
                noise,
                modes_per_class,
            } => {
                let spec = MixtureSpec {
                    num_classes: 10,
                    feature_dim: *feature_dim,
                    modes_per_class: *modes_per_class,
                    separation: *separation,
                    noise: *noise,
                };
                let (pool, test_pool) =
                    cifar_like(&spec, n * samples_per_node, *test_samples, seed);
                let parts =
                    partition_indices(&pool, n, partition, derive_seed(seed, 0x5A4D));
                let node_datasets = materialize(&pool, &parts);
                let splits = split_eval(&test_pool, derive_seed(seed, 0xE0A1));
                DataBundle { node_datasets, validation: splits.validation, test: splits.test }
            }
            DataSpec::FemnistLike {
                feature_dim,
                samples_per_node,
                test_samples,
                style_strength,
                separation,
                noise,
                modes_per_class,
            } => {
                let spec = MixtureSpec {
                    num_classes: 47,
                    feature_dim: *feature_dim,
                    modes_per_class: *modes_per_class,
                    separation: *separation,
                    noise: *noise,
                };
                let (node_datasets, test_pool) = femnist_like(
                    &spec,
                    n,
                    *samples_per_node,
                    *test_samples,
                    *style_strength,
                    seed,
                );
                let splits = split_eval(&test_pool, derive_seed(seed, 0xE0A1));
                DataBundle { node_datasets, validation: splits.validation, test: splits.test }
            }
        }
    }
}

/// Generated data for one experiment.
pub struct DataBundle {
    /// One private training set per node.
    pub node_datasets: Vec<Dataset>,
    /// Validation set (hyperparameter tuning).
    pub validation: Dataset,
    /// Test set (reported accuracy).
    pub test: Dataset,
}

/// Energy accounting setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergySpec {
    /// Nominal Table-1 workload used for energy math (decoupled from the
    /// reduced synthetic simulation models).
    pub workload: WorkloadSpec,
    /// `Some(fraction)` enables the constrained setting: per-node budgets τ
    /// equal the rounds needed to spend `fraction` of each device battery.
    pub battery_fraction: Option<f64>,
}

impl EnergySpec {
    /// Unconstrained CIFAR-10 energy accounting.
    pub fn cifar10() -> Self {
        Self { workload: WorkloadSpec::cifar10(), battery_fraction: None }
    }

    /// Constrained CIFAR-10 (10 % battery, §4.2).
    pub fn cifar10_constrained() -> Self {
        Self {
            workload: WorkloadSpec::cifar10(),
            battery_fraction: Some(skiptrain_energy::trace::CIFAR_BATTERY_FRACTION),
        }
    }

    /// Unconstrained FEMNIST energy accounting.
    pub fn femnist() -> Self {
        Self { workload: WorkloadSpec::femnist(), battery_fraction: None }
    }

    /// Constrained FEMNIST (50 % battery, §4.2).
    pub fn femnist_constrained() -> Self {
        Self {
            workload: WorkloadSpec::femnist(),
            battery_fraction: Some(skiptrain_energy::trace::FEMNIST_BATTERY_FRACTION),
        }
    }

    /// Rescales the battery fraction so the budget-to-opportunity ratio
    /// τ/T_train at `rounds` matches what the paper's setting produces at
    /// `paper_rounds` (used when running the constrained experiments at
    /// reduced scale).
    pub fn scaled_for_rounds(&self, rounds: usize, paper_rounds: usize) -> EnergySpec {
        EnergySpec {
            workload: self.workload,
            battery_fraction: self
                .battery_fraction
                .map(|f| f * rounds as f64 / paper_rounds as f64),
        }
    }

    /// Per-node training-round energies (Wh) for an `n`-node fleet.
    pub fn node_energies(&self, n: usize) -> Vec<f64> {
        fleet(n).iter().map(|d| round_energy_wh(&d.profile(), &self.workload)).collect()
    }

    /// Per-node training budgets τ; `u32::MAX` when unconstrained.
    pub fn node_budgets(&self, n: usize) -> Vec<u32> {
        match self.battery_fraction {
            None => vec![u32::MAX; n],
            Some(frac) => fleet(n)
                .iter()
                .map(|d| training_budget_rounds(&d.profile(), &self.workload, frac) as u32)
                .collect(),
        }
    }
}

/// Complete description of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Label used in reports.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Total rounds `T`.
    pub rounds: usize,
    /// Algorithm under test.
    pub algorithm: AlgorithmSpec,
    /// Communication topology.
    pub topology: TopologySpec,
    /// Dataset family and scale.
    pub data: DataSpec,
    /// Hidden width of the per-node MLP (0 = softmax regression).
    pub hidden_dim: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Local SGD steps per training round.
    pub local_steps: usize,
    /// SGD learning rate η.
    pub learning_rate: f32,
    /// Master seed.
    pub seed: u64,
    /// Evaluate every this many rounds (the paper uses Γ_train + Γ_sync).
    pub eval_every: usize,
    /// Cap on evaluation samples per eval point (`usize::MAX` = full set).
    pub eval_max_samples: usize,
    /// Energy accounting / budgets.
    pub energy: EnergySpec,
    /// Message transport.
    pub transport: TransportKind,
    /// Also record the accuracy of the averaged (all-reduced) model at each
    /// evaluation point — the hypothetical curve of Figure 1.
    pub record_mean_model: bool,
}

impl ExperimentConfig {
    /// The per-node model architecture.
    pub fn model_kind(&self) -> ModelKind {
        let classes = self.data.num_classes();
        let input = self.data.feature_dim();
        if self.hidden_dim == 0 {
            ModelKind::Logistic { input_dim: input, classes }
        } else {
            ModelKind::Mlp { dims: vec![input, self.hidden_dim, classes] }
        }
    }

    /// Builds the policy for this config.
    pub fn build_policy(&self) -> Box<dyn RoundPolicy> {
        match &self.algorithm {
            AlgorithmSpec::DPsgd => Box::new(DPsgdPolicy),
            AlgorithmSpec::SkipTrain(schedule) => Box::new(SkipTrainPolicy::new(*schedule)),
            AlgorithmSpec::SkipTrainConstrained(schedule) => {
                assert!(
                    self.energy.battery_fraction.is_some(),
                    "SkipTrain-constrained requires a battery fraction"
                );
                Box::new(ConstrainedPolicy::new(
                    *schedule,
                    self.energy.node_budgets(self.nodes),
                    self.rounds,
                    derive_seed(self.seed, 0x70C1),
                ))
            }
            AlgorithmSpec::Greedy => {
                assert!(
                    self.energy.battery_fraction.is_some(),
                    "Greedy requires a battery fraction"
                );
                Box::new(GreedyPolicy::new(self.energy.node_budgets(self.nodes)))
            }
        }
    }
}

/// Everything a figure needs from one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Config label.
    pub name: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Node count.
    pub nodes: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Test-accuracy learning curve.
    pub test_curve: Vec<AccuracyPoint>,
    /// `(round, accuracy)` of the averaged model, when enabled.
    pub mean_model_curve: Vec<(usize, f32)>,
    /// Final test statistics.
    pub final_test: EvalStats,
    /// Final mean validation accuracy (hyperparameter-tuning metric).
    pub final_val_accuracy: f32,
    /// Total training energy (Wh), Eq. 3 restricted to training.
    pub total_training_wh: f64,
    /// Total communication energy (Wh).
    pub total_comm_wh: f64,
    /// Total node-round training events executed.
    pub node_train_events: u64,
    /// The element-wise mean of all node models at the end of the run (the
    /// consensus model used by fairness analysis, §5.1).
    pub final_mean_model: Vec<f32>,
    /// Distinct classes held locally by each node (fairness analysis).
    pub node_class_sets: Vec<Vec<u32>>,
}

impl ExperimentResult {
    /// Accuracy (%) convenience for report printing.
    pub fn final_test_accuracy_pct(&self) -> f64 {
        self.final_test.mean_accuracy as f64 * 100.0
    }
}

/// Runs one experiment end to end.
///
/// # Panics
/// Panics on invalid configuration (mismatched sizes, missing budgets for
/// constrained algorithms).
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let data = cfg.data.build(cfg.nodes, cfg.seed);
    run_experiment_on(cfg, &data)
}

/// Runs one experiment on pre-built data (lets sweeps and multi-algorithm
/// comparisons reuse one generated dataset).
pub fn run_experiment_on(cfg: &ExperimentConfig, data: &DataBundle) -> ExperimentResult {
    assert_eq!(data.node_datasets.len(), cfg.nodes, "data bundle does not match node count");
    let kind = cfg.model_kind();
    let models: Vec<_> = (0..cfg.nodes)
        .map(|i| kind.build(derive_seed(cfg.seed, 0x4000 + i as u64)))
        .collect();

    let graph = cfg.topology.build(cfg.nodes, derive_seed(cfg.seed, 0x7090));
    let mixing = MixingMatrix::metropolis_hastings(&graph);

    let sim_config = SimulationConfig {
        seed: cfg.seed,
        batch_size: cfg.batch_size,
        local_steps: cfg.local_steps,
        sgd: SgdConfig::plain(cfg.learning_rate),
        transport: cfg.transport,
        training_energy_wh: cfg.energy.node_energies(cfg.nodes),
        comm_energy: skiptrain_energy::comm::CommEnergyModel::paper_fit(),
        nominal_params: Some(cfg.energy.workload.model_params),
    };
    let mut sim =
        Simulation::new(models, data.node_datasets.clone(), graph, mixing, sim_config);

    let mut policy = cfg.build_policy();
    let mut actions = vec![RoundAction::SyncOnly; cfg.nodes];
    let mut recorder = MetricsRecorder::new();
    let mut mean_model_curve = Vec::new();
    let mut node_train_events = 0u64;

    for t in 0..cfg.rounds {
        policy.decide(t, &mut actions);
        node_train_events +=
            actions.iter().filter(|&&a| a == RoundAction::Train).count() as u64;
        sim.run_round(&actions);

        let at_eval = (t + 1) % cfg.eval_every.max(1) == 0 || t + 1 == cfg.rounds;
        if at_eval {
            let stats = sim.evaluate(&data.test, cfg.eval_max_samples);
            recorder.record(
                &stats,
                sim.ledger().total_wh(),
                sim.ledger().total_training_wh(),
            );
            if cfg.record_mean_model {
                let (acc, _) = sim.evaluate_mean_model(&data.test, cfg.eval_max_samples);
                mean_model_curve.push((t + 1, acc));
            }
        }
    }

    let final_test = sim.evaluate(&data.test, cfg.eval_max_samples);
    let final_val = sim.evaluate(&data.validation, cfg.eval_max_samples);
    let final_mean_model = sim.mean_params();
    let node_class_sets = data
        .node_datasets
        .iter()
        .map(|d| {
            d.class_histogram()
                .iter()
                .enumerate()
                .filter(|&(_, c)| *c > 0)
                .map(|(class, _)| class as u32)
                .collect()
        })
        .collect();

    ExperimentResult {
        name: cfg.name.clone(),
        algorithm: cfg.algorithm.name().to_string(),
        nodes: cfg.nodes,
        rounds: cfg.rounds,
        test_curve: recorder.points().to_vec(),
        mean_model_curve,
        final_test,
        final_val_accuracy: final_val.mean_accuracy,
        total_training_wh: sim.ledger().total_training_wh(),
        total_comm_wh: sim.ledger().total_comm_wh(),
        node_train_events,
        final_mean_model,
        node_class_sets,
    }
}
