//! Training probabilities for the constrained setting (Eq. 5, §3.2).

use crate::schedule::Schedule;

/// Eq. 5: the training probability of a node with budget τ under a schedule
/// that offers `t_train` training opportunities: `p = min(τ / T_train, 1)`.
///
/// # Panics
/// Panics if `t_train <= 0`.
pub fn training_probability(budget: u32, t_train: f64) -> f64 {
    assert!(t_train > 0.0, "T_train must be positive");
    (budget as f64 / t_train).min(1.0)
}

/// Per-node training probabilities for a full deployment (Eq. 5 applied to
/// every budget, with `T_train` from Eq. 4).
pub fn training_probabilities(
    budgets: &[u32],
    schedule: &Schedule,
    total_rounds: usize,
) -> Vec<f64> {
    let t_train = schedule.t_train(total_rounds);
    budgets
        .iter()
        .map(|&b| training_probability(b, t_train))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ample_budget_gives_probability_one() {
        // §3.2: τ ≥ T_train ⇒ p = 1 (equivalent to unconstrained SkipTrain)
        assert_eq!(training_probability(500, 500.0), 1.0);
        assert_eq!(training_probability(900, 500.0), 1.0);
    }

    #[test]
    fn scarce_budget_scales_linearly() {
        assert!((training_probability(250, 500.0) - 0.5).abs() < 1e-12);
        assert!((training_probability(50, 500.0) - 0.1).abs() < 1e-12);
        assert_eq!(training_probability(0, 500.0), 0.0);
    }

    #[test]
    fn per_node_probabilities_use_eq4() {
        let s = Schedule::new(4, 4); // T_train = 500 over 1000 rounds
        let p = training_probabilities(&[250, 500, 1000], &s, 1000);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
        assert_eq!(p[2], 1.0);
    }

    #[test]
    fn paper_cifar_budgets() {
        // Table 2 budgets against the 6-regular schedule (4,4), T = 1000:
        // T_train = 500, so the OnePlus Nord 2 (τ=681) trains always while
        // the Xiaomi 12 Pro (τ=272) trains with p ≈ 0.544.
        let s = Schedule::new(4, 4);
        let p = training_probabilities(&[272, 324, 681, 272], &s, 1000);
        assert!((p[0] - 0.544).abs() < 1e-9);
        assert!((p[1] - 0.648).abs() < 1e-9);
        assert_eq!(p[2], 1.0);
    }

    proptest! {
        #[test]
        fn prop_probability_in_unit_interval(budget in 0u32..100_000, t in 1.0f64..10_000.0) {
            let p = training_probability(budget, t);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_monotone_in_budget(b1 in 0u32..5_000, b2 in 0u32..5_000, t in 1.0f64..10_000.0) {
            let (lo, hi) = (b1.min(b2), b1.max(b2));
            prop_assert!(training_probability(lo, t) <= training_probability(hi, t));
        }
    }
}
