//! Fairness analysis for energy-aware scheduling (§5.1 of the paper).
//!
//! The paper warns that energy-aware participation "can inadvertently bias
//! the system towards high-energy-capacity devices": nodes with small
//! budgets skip more training rounds, so the consensus model may represent
//! their data worse. This module quantifies that effect:
//!
//! * per-class recall of the consensus model,
//! * recall aggregated over the classes *owned* by each device group
//!   (low-budget vs high-budget devices under label sharding),
//! * the budget–recall correlation across nodes.
//!
//! The paper leaves this exploration to future work; the `ablation_fairness`
//! bench binary runs it end to end.

use crate::experiment::{EnergySpec, ExperimentResult};
use serde::{Deserialize, Serialize};
use skiptrain_data::Dataset;
use skiptrain_energy::device::{fleet, DeviceKind};
use skiptrain_nn::zoo::ModelKind;

/// Per-class recall of one model on a test set.
pub fn per_class_recall(model_kind: &ModelKind, params: &[f32], test: &Dataset) -> Vec<f32> {
    let mut model = model_kind.build(0);
    model.load_params(params);
    let logits = model.forward(test.features(), false).clone();
    let classes = test.num_classes();
    let mut correct = vec![0usize; classes];
    let mut total = vec![0usize; classes];
    for (r, &label) in test.labels().iter().enumerate() {
        total[label as usize] += 1;
        if skiptrain_linalg::reduce::argmax(logits.row(r)) == Some(label as usize) {
            correct[label as usize] += 1;
        }
    }
    correct
        .iter()
        .zip(&total)
        .map(|(&c, &t)| if t == 0 { 0.0 } else { c as f32 / t as f32 })
        .collect()
}

/// Fairness statistics for one device group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupFairness {
    /// Device name.
    pub device: String,
    /// Number of nodes with this device.
    pub nodes: usize,
    /// Mean training budget τ of the group (`None` when unconstrained).
    pub mean_budget: Option<f64>,
    /// Mean consensus-model recall over the classes owned by this group's
    /// nodes.
    pub mean_owned_class_recall: f32,
}

/// Full fairness report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Per-class recall of the consensus model.
    pub class_recall: Vec<f32>,
    /// Per device group statistics, in `DeviceKind::ALL` order.
    pub groups: Vec<GroupFairness>,
    /// Recall gap between the best and worst device group.
    pub group_gap: f32,
    /// Pearson correlation between a node's budget and the mean recall of
    /// its owned classes (`None` when budgets are constant).
    pub budget_recall_correlation: Option<f64>,
}

/// Analyzes representation fairness of a finished experiment.
///
/// Under label sharding, each node "owns" the classes of its local shard;
/// a node's data is well represented if the consensus model's recall on its
/// owned classes is high. Grouping nodes by device (the budget proxy)
/// reveals the §5.1 bias.
pub fn analyze(
    result: &ExperimentResult,
    model_kind: &ModelKind,
    test: &Dataset,
    energy: &EnergySpec,
) -> FairnessReport {
    let n = result.nodes;
    let class_recall = per_class_recall(model_kind, &result.final_mean_model, test);
    let budgets = energy.node_budgets(n);
    let devices = fleet(n);

    // per-node mean recall over owned classes
    let node_recall: Vec<f32> = result
        .node_class_sets
        .iter()
        .map(|classes| {
            if classes.is_empty() {
                0.0
            } else {
                classes
                    .iter()
                    .map(|&c| class_recall[c as usize])
                    .sum::<f32>()
                    / classes.len() as f32
            }
        })
        .collect();

    let constrained = energy.battery_fraction.is_some();
    let mut groups = Vec::new();
    for kind in DeviceKind::ALL {
        let members: Vec<usize> = (0..n).filter(|&i| devices[i] == kind).collect();
        if members.is_empty() {
            continue;
        }
        let mean_owned =
            members.iter().map(|&i| node_recall[i]).sum::<f32>() / members.len() as f32;
        let mean_budget = constrained.then(|| {
            members.iter().map(|&i| budgets[i] as f64).sum::<f64>() / members.len() as f64
        });
        groups.push(GroupFairness {
            device: kind.profile().name,
            nodes: members.len(),
            mean_budget,
            mean_owned_class_recall: mean_owned,
        });
    }

    let best = groups
        .iter()
        .map(|g| g.mean_owned_class_recall)
        .fold(f32::MIN, f32::max);
    let worst = groups
        .iter()
        .map(|g| g.mean_owned_class_recall)
        .fold(f32::MAX, f32::min);

    let budget_recall_correlation = constrained
        .then(|| {
            pearson(
                &budgets.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                &node_recall,
            )
        })
        .flatten();

    FairnessReport {
        class_recall,
        groups,
        group_gap: best - worst,
        budget_recall_correlation,
    }
}

/// Pearson correlation; `None` when either side is constant.
fn pearson(x: &[f64], y: &[f32]) -> Option<f64> {
    let n = x.len() as f64;
    if x.is_empty() {
        return None;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b as f64 - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx < 1e-12 || syy < 1e-12 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_linalg::Matrix;

    #[test]
    fn per_class_recall_of_perfect_logistic() {
        // 2-feature, 2-class: class = sign of feature 0. Weights chosen to
        // classify perfectly.
        let features = Matrix::from_vec(4, 2, vec![1.0, 0.0, -1.0, 0.0, 2.0, 0.0, -2.0, 0.0]);
        let test = Dataset::new(features, vec![0, 1, 0, 1], 2);
        let kind = ModelKind::Logistic {
            input_dim: 2,
            classes: 2,
        };
        // params: W (2x2 row-major) then b (2): class0 score = +x0, class1 = -x0
        let params = vec![1.0, -1.0, 0.0, 0.0, 0.0, 0.0];
        let recall = per_class_recall(&kind, &params, &test);
        assert_eq!(recall, vec![1.0, 1.0]);
    }

    #[test]
    fn pearson_detects_positive_and_constant() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![0.1f32, 0.2, 0.3, 0.4];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-9);
        let constant = vec![0.5f32; 4];
        assert!(pearson(&x, &constant).is_none());
    }

    #[test]
    fn analyze_runs_on_a_small_experiment() {
        use crate::experiment::AlgorithmSpec;
        use crate::presets::{cifar_config, Scale};
        let mut cfg = cifar_config(Scale::Quick, 3);
        cfg.nodes = 8;
        cfg.rounds = 16;
        cfg.eval_every = 16;
        cfg.eval_max_samples = 200;
        cfg.energy = EnergySpec::cifar10_constrained().scaled_for_rounds(cfg.rounds, 1000);
        cfg.algorithm = AlgorithmSpec::SkipTrainConstrained(crate::Schedule::new(2, 2));
        let result = cfg.run();
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let report = analyze(&result, &cfg.model_kind(), &data.test, &cfg.energy);
        assert_eq!(report.class_recall.len(), 10);
        assert_eq!(report.groups.len(), 4);
        assert!(report.group_gap >= 0.0);
        assert!(report.budget_recall_correlation.is_some());
    }
}
