//! The (Γ_train, Γ_sync) grid search of §4.3 / Figure 3.
//!
//! Implemented as a [`Campaign`]: all |Γ|² cells share one materialized
//! data bundle and run in parallel across worker threads, which is the
//! single biggest wall-clock win in the harness (the legacy implementation
//! ran cells serially). Results are deterministic and identical to serial
//! execution, cell for cell.

use crate::campaign::Campaign;
use crate::experiment::{AlgorithmSpec, ExperimentConfig};
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// One cell of the Figure-3 grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Γ_train of this cell.
    pub gamma_train: usize,
    /// Γ_sync of this cell.
    pub gamma_sync: usize,
    /// Final mean validation accuracy (the tuning metric, §4.3).
    pub val_accuracy: f32,
    /// Final mean test accuracy.
    pub test_accuracy: f32,
    /// Total training energy spent (Wh).
    pub training_energy_wh: f64,
}

/// Result of a full grid search over one base configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Grid cells in row-major `(Γ_sync, Γ_train)` order.
    pub cells: Vec<SweepCell>,
    /// Γ values swept (both axes).
    pub gammas: Vec<usize>,
}

impl SweepResult {
    /// The best cell: highest validation accuracy, ties broken by lower
    /// energy (§4.3's tie-break rule).
    pub fn best(&self) -> &SweepCell {
        self.cells
            .iter()
            .max_by(|a, b| {
                a.val_accuracy
                    .total_cmp(&b.val_accuracy)
                    .then(b.training_energy_wh.total_cmp(&a.training_energy_wh))
            })
            // lint:allow(no_panic, "grid_search asserts a non-empty gamma grid, so every SweepResult holds at least one cell")
            .expect("sweep has at least one cell")
    }

    /// Cell lookup.
    pub fn cell(&self, gamma_train: usize, gamma_sync: usize) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.gamma_train == gamma_train && c.gamma_sync == gamma_sync)
    }
}

/// Builds the campaign behind [`grid_search`]: one run per
/// `(Γ_sync, Γ_train)` cell in row-major order, every cell sharing the base
/// config's `(data, nodes, seed)` bundle.
pub fn grid_campaign(base: &ExperimentConfig, gammas: &[usize]) -> Campaign {
    let mut configs = Vec::with_capacity(gammas.len() * gammas.len());
    for &gs in gammas {
        for &gt in gammas {
            let mut cfg = base.clone();
            let schedule = Schedule::new(gt, gs);
            cfg.algorithm = AlgorithmSpec::SkipTrain(schedule);
            cfg.name = format!("{}/sweep-gt{gt}-gs{gs}", base.name);
            cfg.eval_every = usize::MAX; // only final evaluation matters
            configs.push(cfg);
        }
    }
    Campaign::from_configs(configs)
}

/// Runs the grid search over `gammas × gammas` on a shared dataset built
/// once from `base`, with cells executing in parallel.
///
/// The base config's algorithm is replaced by `SkipTrain(Γt, Γs)` per cell.
///
/// # Panics
/// Panics when `gammas` is empty or the base configuration is invalid.
pub fn grid_search(base: &ExperimentConfig, gammas: &[usize]) -> SweepResult {
    assert!(!gammas.is_empty(), "empty gamma grid");
    let results = grid_campaign(base, gammas)
        .run()
        // lint:allow(no_panic, "documented '# Panics' contract for the convenience grid API")
        .unwrap_or_else(|e| panic!("invalid sweep configuration: {e}"));
    let cells = results
        .iter()
        .enumerate()
        .map(|(i, result)| SweepCell {
            gamma_train: gammas[i % gammas.len()],
            gamma_sync: gammas[i / gammas.len()],
            val_accuracy: result.final_val_accuracy,
            test_accuracy: result.final_test.mean_accuracy,
            training_energy_wh: result.total_training_wh,
        })
        .collect();
    SweepResult {
        cells,
        gammas: gammas.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_prefers_accuracy_then_energy() {
        let sweep = SweepResult {
            cells: vec![
                SweepCell {
                    gamma_train: 1,
                    gamma_sync: 1,
                    val_accuracy: 0.6,
                    test_accuracy: 0.6,
                    training_energy_wh: 100.0,
                },
                SweepCell {
                    gamma_train: 2,
                    gamma_sync: 1,
                    val_accuracy: 0.6,
                    test_accuracy: 0.59,
                    training_energy_wh: 50.0,
                },
                SweepCell {
                    gamma_train: 3,
                    gamma_sync: 1,
                    val_accuracy: 0.5,
                    test_accuracy: 0.65,
                    training_energy_wh: 10.0,
                },
            ],
            gammas: vec![1, 2, 3],
        };
        let best = sweep.best();
        assert_eq!(
            (best.gamma_train, best.gamma_sync),
            (2, 1),
            "tie must break toward low energy"
        );
    }

    #[test]
    fn cell_lookup() {
        let sweep = SweepResult {
            cells: vec![SweepCell {
                gamma_train: 4,
                gamma_sync: 2,
                val_accuracy: 0.1,
                test_accuracy: 0.1,
                training_energy_wh: 1.0,
            }],
            gammas: vec![4],
        };
        assert!(sweep.cell(4, 2).is_some());
        assert!(sweep.cell(2, 4).is_none());
    }
}
