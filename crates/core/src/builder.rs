//! Fluent, validating construction of experiments.
//!
//! [`ExperimentBuilder`] assembles an
//! [`ExperimentConfig`](crate::ExperimentConfig) field by field from
//! sensible quick-scale defaults (or from an existing config), and
//! [`ExperimentBuilder::build`] validates every cross-field invariant into
//! a typed [`ConfigError`] instead of letting an `assert!` fire mid-run.
//! The output is an [`Experiment`]: a proof-of-validity wrapper whose run
//! methods cannot panic on configuration mistakes.
//!
//! ```
//! use skiptrain_core::{AlgorithmSpec, Experiment, Schedule, TopologySpec};
//!
//! let experiment = Experiment::builder()
//!     .name("quick-demo")
//!     .nodes(16)
//!     .rounds(24)
//!     .algorithm(AlgorithmSpec::SkipTrain(Schedule::new(4, 4)))
//!     .topology(TopologySpec::Regular { degree: 4 })
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(experiment.config().nodes, 16);
//! ```

use crate::error::ConfigError;
use crate::experiment::{
    AlgorithmSpec, BatterySpec, ChurnSpec, CompressionSpec, DataBundle, DataSpec, EnergySpec,
    ExperimentConfig, ExperimentResult, TimingSpec, TopologyScheduleSpec, TopologySpec,
};
use crate::runner;
use skiptrain_engine::observer::RoundObserver;
use skiptrain_engine::{CompressionPolicy, ModelCodec, TransportKind};

/// Fluent builder for [`ExperimentConfig`] (see the module docs).
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    config: ExperimentConfig,
}

impl Default for ExperimentBuilder {
    /// Quick-scale CIFAR-like defaults: 24 nodes, 64 rounds, D-PSGD on a
    /// 6-regular graph.
    fn default() -> Self {
        Self {
            config: crate::presets::cifar_config(crate::presets::Scale::Quick, 42),
        }
    }
}

macro_rules! setter {
    ($(#[$doc:meta] $name:ident: $ty:ty),* $(,)?) => {$(
        #[$doc]
        pub fn $name(mut self, $name: $ty) -> Self {
            self.config.$name = $name;
            self
        }
    )*};
}

impl ExperimentBuilder {
    /// Starts from the quick-scale defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration (e.g. a preset).
    pub fn from_config(config: ExperimentConfig) -> Self {
        Self { config }
    }

    /// Sets the report label.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    setter! {
        /// Sets the node count.
        nodes: usize,
        /// Sets the total round count `T`.
        rounds: usize,
        /// Sets the algorithm under test.
        algorithm: AlgorithmSpec,
        /// Sets the communication topology.
        topology: TopologySpec,
        /// Sets the dataset family and scale.
        data: DataSpec,
        /// Sets the hidden width of the per-node MLP (0 = softmax regression).
        hidden_dim: usize,
        /// Sets the mini-batch size.
        batch_size: usize,
        /// Sets the local SGD steps per training round.
        local_steps: usize,
        /// Sets the SGD learning rate.
        learning_rate: f32,
        /// Sets the master seed.
        seed: u64,
        /// Sets the evaluation cadence (every N rounds).
        eval_every: usize,
        /// Caps evaluation samples per eval point (`usize::MAX` = full set).
        eval_max_samples: usize,
        /// Sets the energy accounting / budget model.
        energy: EnergySpec,
        /// Sets the message transport.
        transport: TransportKind,
        /// Enables/disables the averaged-model curve of Figure 1.
        record_mean_model: bool,
    }

    /// Enables the closed-loop battery subsystem: per-node charge states
    /// drained by the energy ledger's actual spend, recharged by the
    /// spec's harvest profile, with a participation policy gating both
    /// training and gossip per round. Validation rejects non-positive
    /// capacities ([`ConfigError::NonPositiveBatteryCapacity`]), inverted
    /// hysteresis bands ([`ConfigError::InvertedHysteresisBands`]),
    /// out-of-range thresholds, malformed harvest profiles, and
    /// out-of-range phase jitter.
    pub fn battery(mut self, spec: BatterySpec) -> Self {
        self.config.battery = Some(spec);
        self
    }

    /// Sets the virtual-time realism knobs for the event-driven engine:
    /// a per-node compute profile (homogeneous / per-node speed factors /
    /// straggler tail) and a per-link latency model (zero / constant /
    /// seeded jitter). The default is trivial timing, which reproduces
    /// the legacy lockstep results bit for bit. Validation rejects
    /// mis-sized or non-positive per-node factors
    /// ([`ConfigError::ComputeProfileArityMismatch`],
    /// [`ConfigError::InvalidComputeProfile`]) and out-of-range latency
    /// jitter ([`ConfigError::InvalidLatencyJitter`]).
    pub fn timing(mut self, timing: TimingSpec) -> Self {
        self.config.timing = timing;
        self
    }

    /// Enables node churn: each round, present nodes leave with
    /// probability `leave_prob` and absent nodes rejoin with probability
    /// `rejoin_prob` (seeded, deterministic). Absent nodes freeze — no
    /// training, messages, or energy — and their mixing rows collapse to
    /// identity, so ledger conservation holds exactly. Validation rejects
    /// probabilities outside `[0, 1]`
    /// ([`ConfigError::InvalidChurnRate`]).
    pub fn churn(mut self, leave_prob: f64, rejoin_prob: f64) -> Self {
        self.config.churn = Some(ChurnSpec {
            leave_prob,
            rejoin_prob,
        });
        self
    }

    /// Sets the round→graph topology schedule (time-varying topologies).
    /// Non-static schedules regenerate doubly stochastic
    /// Metropolis–Hastings weights per scheduled round and charge energy
    /// only for the edges that fired. Validation rejects out-of-range
    /// dropout probabilities ([`ConfigError::InvalidEdgeDropout`]) and
    /// cycles that are empty or mis-sized for the node count
    /// ([`ConfigError::EmptyTopologyCycle`],
    /// [`ConfigError::TopologyCycleSizeMismatch`]).
    pub fn topology_schedule(mut self, schedule: TopologyScheduleSpec) -> Self {
        self.config.topology_schedule = schedule;
        self
    }

    /// Sets the model-compression codec for the share phase (quantization
    /// or top-k sparsification trade accuracy for communication energy).
    ///
    /// Thin legacy shim: writes the flat `codec` field, which
    /// [`ExperimentConfig::effective_compression`] lifts into a
    /// [`CompressionPolicy::Uniform`] spec — bit-identical to the
    /// pre-policy behaviour. New code should state the policy explicitly
    /// via [`ExperimentBuilder::compression_policy`] or
    /// [`ExperimentBuilder::compression_spec`].
    #[deprecated(
        since = "0.3.0",
        note = "use `compression_policy(CompressionPolicy::Uniform(codec))` or \
                `compression_spec` for the full per-link policy surface"
    )]
    pub fn compression(mut self, codec: ModelCodec) -> Self {
        self.config.codec = codec;
        // Write through to an already-started uniform spec so the shim
        // stays order-independent with the new knobs (an adaptive policy
        // is never silently overwritten).
        if let Some(spec) = &mut self.config.compression {
            if spec.policy.is_uniform() {
                spec.policy = CompressionPolicy::Uniform(codec);
            }
        }
        self
    }

    /// Sets the per-directed-link codec selection policy. Uniform
    /// policies reproduce the legacy global codec bit for bit; adaptive
    /// policies ([`CompressionPolicy::PerLink`],
    /// [`CompressionPolicy::RarityAdaptive`],
    /// [`CompressionPolicy::EnergyAdaptive`]) resolve a codec per link
    /// per round and charge each link's ledger bytes from the codec it
    /// actually used. Keeps any previously configured γ and feedback
    /// settings.
    pub fn compression_policy(mut self, policy: CompressionPolicy) -> Self {
        let legacy = self.config.codec;
        self.config
            .compression
            .get_or_insert_with(|| CompressionSpec::uniform(legacy))
            .policy = policy;
        self
    }

    /// Replaces the whole compression subsystem spec: policy, consensus
    /// stepsize γ, and error-feedback settings in one value. Validation
    /// checks the spec's invariants (γ ∈ (0, 1], well-formed tier/link
    /// tables, nonzero top-k everywhere).
    pub fn compression_spec(mut self, spec: CompressionSpec) -> Self {
        self.config.compression = Some(spec);
        self
    }

    /// Sets the consensus stepsize γ ∈ (0, 1] applied after aggregation:
    /// `x^t = x^{t−½} + γ (Σ_j W_ji x_j^{t−½} − x^{t−½})`. The default
    /// `1.0` is the paper's plain mixing update; γ < 1 damps consensus,
    /// which keeps extreme sparsity stable. Validation rejects values
    /// outside `(0, 1]` with [`ConfigError::InvalidConsensusGamma`].
    pub fn consensus_gamma(mut self, gamma: f32) -> Self {
        let legacy = self.config.codec;
        self.config
            .compression
            .get_or_insert_with(|| CompressionSpec::uniform(legacy))
            .gamma = gamma;
        self
    }

    /// Caps the per-receiver error-feedback replica count (bounds
    /// feedback memory at `nodes × cap` model vectors under time-varying
    /// topologies; the stalest link is evicted and restarts cold). The
    /// unset default adapts to the base graph (`max(max degree, 16)`)
    /// and never evicts; an explicit cap below the in-degree trades
    /// residual memory for a hard bound — at the extreme, feedback
    /// degrades toward plain masked compression. Validation rejects
    /// `cap == 0` with [`ConfigError::ZeroReplicaCap`].
    pub fn feedback_replica_cap(mut self, cap: usize) -> Self {
        self.config.feedback_replica_cap = Some(cap);
        self
    }

    /// Enables CHOCO-SGD-style error-feedback compression with residual
    /// retention `beta ∈ (0, 1]` (`1.0` = full error feedback). Each
    /// directed link accumulates what its codec discarded and re-injects
    /// `beta ·` that residual next round, recovering most of the accuracy
    /// an aggressive top-k would otherwise lose — at zero extra wire
    /// bytes. Validation rejects `beta` outside `(0, 1]` with
    /// [`ConfigError::InvalidFeedbackBeta`].
    ///
    /// Thin legacy shim: writes the flat `feedback_beta` field, which
    /// [`ExperimentConfig::effective_compression`] merges into the
    /// effective [`CompressionSpec`] (a spec's own `feedback_beta` wins
    /// when set). New code should carry feedback in the spec via
    /// [`ExperimentBuilder::compression_spec`].
    #[deprecated(
        since = "0.3.0",
        note = "set `feedback_beta` on a `CompressionSpec` via `compression_spec`"
    )]
    pub fn compression_feedback(mut self, beta: f32) -> Self {
        self.config.feedback_beta = Some(beta);
        self
    }

    /// Validates and builds the raw configuration.
    pub fn build_config(self) -> Result<ExperimentConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Validates and builds a runnable [`Experiment`].
    pub fn build(self) -> Result<Experiment, ConfigError> {
        Ok(Experiment {
            config: self.build_config()?,
        })
    }
}

/// A validated experiment: the only way to obtain one is through
/// validation, so its run methods never panic on configuration errors.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Starts a fluent builder with quick-scale defaults.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::new()
    }

    /// Validates an existing configuration into an `Experiment`.
    pub fn from_config(config: ExperimentConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Unwraps the configuration (e.g. to hand to a [`Campaign`](crate::Campaign)).
    pub fn into_config(self) -> ExperimentConfig {
        self.config
    }

    /// Generates this experiment's data bundle.
    pub fn build_data(&self) -> DataBundle {
        self.config.data.build(self.config.nodes, self.config.seed)
    }

    /// Runs end to end: generates data, executes every round, returns the
    /// collected result.
    ///
    /// # Panics
    /// Panics if the engine fails mid-run (an internal scheduling bug);
    /// use [`Campaign::run_resilient`](crate::Campaign::run_resilient)
    /// for the fault-isolating path.
    pub fn run(&self) -> ExperimentResult {
        let data = self.build_data();
        // lint:allow(no_panic, "documented '# Panics' contract: run_resilient is the fault-isolating path")
        runner::execute(&self.config, &data, &mut []).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs on a pre-built bundle (campaigns and sweeps share bundles
    /// across runs).
    pub fn run_on(&self, data: &DataBundle) -> Result<ExperimentResult, ConfigError> {
        runner::run_with_observers(&self.config, data, &mut [])
    }

    /// Runs with caller-supplied observers hooked into the round loop.
    pub fn run_observed(
        &self,
        data: &DataBundle,
        observers: &mut [&mut dyn RoundObserver],
    ) -> Result<ExperimentResult, ConfigError> {
        runner::run_with_observers(&self.config, data, observers)
    }
}

#[cfg(test)]
mod tests {
    // The deprecated compression shims are exercised on purpose.
    #![allow(deprecated)]
    use super::*;
    use crate::schedule::Schedule;

    #[test]
    fn builder_defaults_are_valid() {
        let experiment = Experiment::builder()
            .build()
            .expect("defaults must validate");
        assert!(experiment.config().nodes > 0);
    }

    #[test]
    fn constrained_without_battery_fraction_is_a_typed_error() {
        let err = Experiment::builder()
            .algorithm(AlgorithmSpec::SkipTrainConstrained(Schedule::new(4, 4)))
            .energy(EnergySpec::cifar10()) // no battery fraction
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::MissingBatteryFraction {
                algorithm: "skiptrain-constrained".into()
            }
        );
    }

    #[test]
    fn greedy_without_battery_fraction_is_a_typed_error() {
        let err = Experiment::builder()
            .algorithm(AlgorithmSpec::Greedy)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::MissingBatteryFraction { .. }));
    }

    #[test]
    fn zero_rounds_and_nodes_are_rejected() {
        assert_eq!(
            Experiment::builder().rounds(0).build().unwrap_err(),
            ConfigError::ZeroRounds
        );
        assert_eq!(
            Experiment::builder().nodes(0).build().unwrap_err(),
            ConfigError::ZeroNodes
        );
    }

    #[test]
    fn impossible_regular_topology_is_rejected() {
        let err = Experiment::builder()
            .nodes(6)
            .topology(TopologySpec::Regular { degree: 6 })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::DegreeTooLarge {
                degree: 6,
                nodes: 6
            }
        );

        let err = Experiment::builder()
            .nodes(7)
            .topology(TopologySpec::Regular { degree: 3 })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::OddDegreeProduct {
                degree: 3,
                nodes: 7
            }
        );
    }

    #[test]
    fn zero_top_k_compression_is_a_typed_error() {
        let err = Experiment::builder()
            .compression(ModelCodec::TopK { k: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroTopK);
        let ok = Experiment::builder()
            .compression(ModelCodec::TopK { k: 64 })
            .build()
            .expect("positive k validates");
        assert_eq!(ok.config().codec, ModelCodec::TopK { k: 64 });
    }

    #[test]
    fn out_of_range_feedback_beta_is_a_typed_error() {
        for bad in [0.0f32, -0.5, 1.5, f32::NAN, f32::INFINITY] {
            let err = Experiment::builder()
                .compression(ModelCodec::TopK { k: 64 })
                .compression_feedback(bad)
                .build()
                .unwrap_err();
            assert_eq!(err, ConfigError::InvalidFeedbackBeta, "beta {bad}");
        }
        for good in [1.0f32, 0.5, 1e-3] {
            let ok = Experiment::builder()
                .compression(ModelCodec::TopK { k: 64 })
                .compression_feedback(good)
                .build()
                .expect("beta in (0,1] validates");
            assert_eq!(ok.config().feedback_beta, Some(good));
        }
    }

    #[test]
    fn bad_topology_schedules_are_typed_errors() {
        use crate::experiment::TopologyScheduleSpec;
        use skiptrain_topology::Graph;

        for bad_p in [1.0f64, 1.5, -0.1, f64::NAN] {
            let err = Experiment::builder()
                .topology_schedule(TopologyScheduleSpec::EdgeDropout { p: bad_p })
                .build()
                .unwrap_err();
            assert_eq!(err, ConfigError::InvalidEdgeDropout, "p = {bad_p}");
        }
        let err = Experiment::builder()
            .topology_schedule(TopologyScheduleSpec::Cycle(vec![]))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyTopologyCycle);

        let err = Experiment::builder()
            .nodes(16)
            .topology_schedule(TopologyScheduleSpec::Cycle(vec![
                Graph::ring(16),
                Graph::ring(12),
            ]))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::TopologyCycleSizeMismatch {
                index: 1,
                expected: 16,
                got: 12
            }
        );

        let ok = Experiment::builder()
            .nodes(16)
            .topology_schedule(TopologyScheduleSpec::EdgeDropout { p: 0.5 })
            .build()
            .expect("valid dropout schedule");
        assert_eq!(
            ok.config().topology_schedule,
            TopologyScheduleSpec::EdgeDropout { p: 0.5 }
        );
    }

    #[test]
    fn zero_replica_cap_is_a_typed_error() {
        let err = Experiment::builder()
            .compression(ModelCodec::TopK { k: 64 })
            .compression_feedback(1.0)
            .feedback_replica_cap(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroReplicaCap);
        let ok = Experiment::builder()
            .compression(ModelCodec::TopK { k: 64 })
            .compression_feedback(1.0)
            .feedback_replica_cap(4)
            .build()
            .expect("positive cap validates");
        assert_eq!(ok.config().feedback_replica_cap, Some(4));
    }

    #[test]
    fn default_replica_cap_adapts_to_the_base_graph_and_cycle() {
        use crate::experiment::{effective_replica_cap, TopologyScheduleSpec};
        use skiptrain_topology::Graph;
        let sched = TopologyScheduleSpec::Static;
        // dense graph: the default must cover the in-degree so an
        // unconfigured run never evicts (a sub-degree cap silently
        // degrades feedback toward plain masked compression)
        let dense = Graph::complete(40);
        assert_eq!(effective_replica_cap(None, &dense, &sched), 39);
        // sparse graph: floored at the engine default
        let sparse = Graph::ring(10);
        assert_eq!(
            effective_replica_cap(None, &sparse, &sched),
            skiptrain_engine::DEFAULT_REPLICA_CAP
        );
        // a cycle graph denser than the base must raise the default too
        let cycle = TopologyScheduleSpec::Cycle(vec![Graph::ring(40), Graph::complete(40)]);
        assert_eq!(effective_replica_cap(None, &sparse, &cycle), 39);
        // explicit settings are taken verbatim — the memory/accuracy
        // trade-off is the user's call
        assert_eq!(effective_replica_cap(Some(3), &dense, &sched), 3);
    }

    #[test]
    fn engine_default_cap_never_evicts_on_dense_static_graphs() {
        // Direct-engine users with an unset cap must keep full residual
        // memory on their own topology, even above DEFAULT_REPLICA_CAP
        // in-degrees — the adaptive default covers the graph.
        let mut cfg = crate::presets::cifar_config(crate::presets::Scale::Quick, 5);
        cfg.nodes = 20;
        cfg.rounds = 3;
        cfg.eval_max_samples = 50;
        cfg.topology = TopologySpec::Complete; // in-degree 19 > 16
        cfg.codec = ModelCodec::TopK { k: 32 };
        cfg.feedback_beta = Some(1.0);
        let result = cfg.run();
        assert_eq!(result.rounds, 3);
        assert!(result.final_mean_model.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn configs_without_schedule_fields_stay_loadable() {
        // serde-default bit-compatibility: a pre-schedule JSON config
        // (no `topology_schedule` / `feedback_replica_cap` keys) must
        // deserialize to the static schedule with the default cap.
        let base = crate::presets::cifar_config(crate::presets::Scale::Quick, 3);
        let mut json = serde_json::to_value(&base);
        match &mut json {
            serde_json::Value::Object(entries) => {
                let before = entries.len();
                entries.retain(|(k, _)| k != "topology_schedule" && k != "feedback_replica_cap");
                assert_eq!(
                    entries.len(),
                    before - 2,
                    "both fields must serialize by default"
                );
            }
            other => panic!("config must serialize to an object, got {other:?}"),
        }
        let legacy: crate::ExperimentConfig =
            serde_json::from_str(&serde_json::to_string(&json).unwrap()).unwrap();
        assert!(legacy.topology_schedule.is_static());
        assert_eq!(legacy.feedback_replica_cap, None);
        legacy.validate().expect("legacy config still validates");
    }

    #[test]
    fn configs_without_feedback_field_stay_loadable() {
        // serde-default bit-compatibility: a pre-feedback JSON config
        // (no `feedback_beta` key) must deserialize with feedback off and
        // produce the same validated config as before.
        let base = crate::presets::cifar_config(crate::presets::Scale::Quick, 3);
        let mut json = serde_json::to_value(&base);
        match &mut json {
            serde_json::Value::Object(entries) => {
                let before = entries.len();
                entries.retain(|(k, _)| k != "feedback_beta");
                assert_eq!(entries.len(), before - 1, "field must serialize by default");
            }
            other => panic!("config must serialize to an object, got {other:?}"),
        }
        let legacy: crate::ExperimentConfig =
            serde_json::from_str(&serde_json::to_string(&json).unwrap()).unwrap();
        assert_eq!(legacy.feedback_beta, None);
        legacy.validate().expect("legacy config still validates");
        assert_eq!(legacy.nodes, base.nodes);
    }

    #[test]
    fn bad_battery_specs_are_typed_errors() {
        use crate::experiment::{BatteryCapacitySpec, BatterySpec};
        use skiptrain_energy::battery::BatteryPolicy;
        use skiptrain_energy::trace::HarvestProfile;

        let valid = BatterySpec {
            capacity: BatteryCapacitySpec::Uniform { wh: 2.0 },
            initial_fraction: 0.5,
            harvest: HarvestProfile::Constant { watts: 1.0 },
            harvest_jitter: 0.0,
            policy: BatteryPolicy::Threshold { min_fraction: 0.2 },
            node_policies: None,
        };
        Experiment::builder()
            .battery(valid.clone())
            .build()
            .expect("valid battery spec must validate");

        for bad_wh in [0.0f64, -1.0, f64::NAN, f64::INFINITY] {
            let err = Experiment::builder()
                .battery(BatterySpec {
                    capacity: BatteryCapacitySpec::Uniform { wh: bad_wh },
                    ..valid.clone()
                })
                .build()
                .unwrap_err();
            assert_eq!(err, ConfigError::NonPositiveBatteryCapacity, "wh {bad_wh}");
        }
        let err = Experiment::builder()
            .battery(BatterySpec {
                capacity: BatteryCapacitySpec::Fleet { fraction: 1.5 },
                ..valid.clone()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::NonPositiveBatteryCapacity);

        for (suspend, resume) in [(0.5, 0.5), (0.6, 0.4), (-0.1, 0.5), (0.2, 1.1)] {
            let err = Experiment::builder()
                .battery(BatterySpec {
                    policy: BatteryPolicy::Hysteresis {
                        suspend_fraction: suspend,
                        resume_fraction: resume,
                    },
                    ..valid.clone()
                })
                .build()
                .unwrap_err();
            assert_eq!(
                err,
                ConfigError::InvertedHysteresisBands,
                "bands ({suspend}, {resume})"
            );
        }
        // ordered bands validate
        Experiment::builder()
            .battery(BatterySpec {
                policy: BatteryPolicy::Hysteresis {
                    suspend_fraction: 0.2,
                    resume_fraction: 0.4,
                },
                ..valid.clone()
            })
            .build()
            .expect("ordered hysteresis bands validate");

        let err = Experiment::builder()
            .battery(BatterySpec {
                policy: BatteryPolicy::Threshold { min_fraction: 0.0 },
                ..valid.clone()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidBatteryPolicyFraction);

        let err = Experiment::builder()
            .battery(BatterySpec {
                initial_fraction: 1.5,
                ..valid.clone()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidBatteryInitialFraction);

        let err = Experiment::builder()
            .battery(BatterySpec {
                harvest: HarvestProfile::Piecewise { watts: vec![] },
                ..valid.clone()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidHarvestProfile);

        let err = Experiment::builder()
            .battery(BatterySpec {
                harvest: HarvestProfile::Diurnal {
                    peak_watts: 1.0,
                    period_rounds: 0.0,
                },
                ..valid.clone()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidHarvestProfile);

        let err = Experiment::builder()
            .battery(BatterySpec {
                harvest_jitter: 2.0,
                ..valid
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidHarvestJitter);
    }

    #[test]
    fn configs_without_battery_field_stay_loadable() {
        // serde-default bit-compatibility: a pre-battery JSON config (no
        // `battery` key) must deserialize with the battery off.
        let base = crate::presets::cifar_config(crate::presets::Scale::Quick, 3);
        let mut json = serde_json::to_value(&base);
        match &mut json {
            serde_json::Value::Object(entries) => {
                let before = entries.len();
                entries.retain(|(k, _)| k != "battery");
                assert_eq!(entries.len(), before - 1, "field must serialize by default");
            }
            other => panic!("config must serialize to an object, got {other:?}"),
        }
        let legacy: crate::ExperimentConfig =
            serde_json::from_str(&serde_json::to_string(&json).unwrap()).unwrap();
        assert!(legacy.battery.is_none());
        legacy.validate().expect("legacy config still validates");
        assert_eq!(legacy.nodes, base.nodes);
    }

    #[test]
    fn bad_timing_and_churn_specs_are_typed_errors() {
        use skiptrain_engine::{ComputeProfile, LatencyModel};

        let err = Experiment::builder()
            .nodes(16)
            .timing(TimingSpec {
                compute: ComputeProfile::PerNode {
                    factors: vec![1.0; 4],
                },
                latency: LatencyModel::Zero,
            })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ComputeProfileArityMismatch {
                expected: 16,
                got: 4
            }
        );

        let err = Experiment::builder()
            .nodes(16)
            .timing(TimingSpec {
                compute: ComputeProfile::PerNode {
                    factors: vec![
                        1.0, -2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
                        1.0,
                    ],
                },
                latency: LatencyModel::Zero,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidComputeProfile { value: -2.0 });

        let err = Experiment::builder()
            .timing(TimingSpec {
                compute: ComputeProfile::StragglerTail {
                    tail_prob: 1.5,
                    tail_factor: 4.0,
                },
                latency: LatencyModel::Zero,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidComputeProfile { value: 1.5 });

        let err = Experiment::builder()
            .timing(TimingSpec {
                compute: ComputeProfile::Homogeneous,
                latency: LatencyModel::Seeded {
                    mean_ticks: 1000,
                    jitter: 2.0,
                },
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidLatencyJitter { value: 2.0 });

        let err = Experiment::builder().churn(1.2, 0.5).build().unwrap_err();
        assert_eq!(err, ConfigError::InvalidChurnRate { value: 1.2 });
        let err = Experiment::builder().churn(0.1, -0.5).build().unwrap_err();
        assert_eq!(err, ConfigError::InvalidChurnRate { value: -0.5 });

        let ok = Experiment::builder()
            .timing(TimingSpec {
                compute: ComputeProfile::StragglerTail {
                    tail_prob: 0.2,
                    tail_factor: 4.0,
                },
                latency: LatencyModel::Constant { ticks: 500 },
            })
            .churn(0.05, 0.5)
            .build()
            .expect("valid timing and churn validate");
        assert!(!ok.config().timing.is_trivial());
        assert_eq!(ok.config().churn.unwrap().leave_prob, 0.05);
    }

    #[test]
    fn mis_sized_per_node_battery_policies_are_a_typed_error() {
        use crate::experiment::{BatteryCapacitySpec, BatterySpec};
        use skiptrain_energy::battery::BatteryPolicy;
        use skiptrain_energy::trace::HarvestProfile;

        let spec = BatterySpec {
            capacity: BatteryCapacitySpec::Uniform { wh: 2.0 },
            initial_fraction: 0.5,
            harvest: HarvestProfile::Constant { watts: 1.0 },
            harvest_jitter: 0.0,
            policy: BatteryPolicy::AlwaysOn,
            node_policies: Some(vec![BatteryPolicy::AlwaysOn; 4]),
        };
        let err = Experiment::builder()
            .nodes(16)
            .battery(spec.clone())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BatteryPolicyArityMismatch {
                expected: 16,
                got: 4
            }
        );

        // each listed policy is validated like the fleet-wide one
        let mut bad_entry = spec.clone();
        bad_entry.node_policies = Some(
            std::iter::once(BatteryPolicy::Threshold { min_fraction: 2.0 })
                .chain(std::iter::repeat_n(BatteryPolicy::AlwaysOn, 15))
                .collect(),
        );
        let err = Experiment::builder()
            .nodes(16)
            .battery(bad_entry)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidBatteryPolicyFraction);

        let mut ok = spec;
        ok.node_policies = Some(vec![BatteryPolicy::AlwaysOn; 16]);
        Experiment::builder()
            .nodes(16)
            .battery(ok)
            .build()
            .expect("matched per-node policy list validates");
    }

    #[test]
    fn configs_without_timing_or_churn_fields_stay_loadable() {
        // serde-default bit-compatibility: a pre-event JSON config (no
        // `timing` / `churn` keys) must deserialize to trivial timing and
        // no churn.
        let base = crate::presets::cifar_config(crate::presets::Scale::Quick, 3);
        let mut json = serde_json::to_value(&base);
        match &mut json {
            serde_json::Value::Object(entries) => {
                let before = entries.len();
                entries.retain(|(k, _)| k != "timing" && k != "churn");
                assert_eq!(
                    entries.len(),
                    before - 2,
                    "both fields must serialize by default"
                );
            }
            other => panic!("config must serialize to an object, got {other:?}"),
        }
        let legacy: crate::ExperimentConfig =
            serde_json::from_str(&serde_json::to_string(&json).unwrap()).unwrap();
        assert!(legacy.timing.is_trivial());
        assert!(legacy.churn.is_none());
        legacy.validate().expect("legacy config still validates");
    }

    #[test]
    fn compression_knob_reaches_the_config() {
        let experiment = Experiment::builder()
            .compression(ModelCodec::QuantizedU8)
            .build()
            .unwrap();
        assert_eq!(experiment.config().codec, ModelCodec::QuantizedU8);
    }

    #[test]
    fn builder_round_trips_an_existing_config() {
        let base = crate::presets::cifar_config(crate::presets::Scale::Quick, 7);
        let rebuilt = ExperimentBuilder::from_config(base.clone())
            .seed(9)
            .build_config()
            .unwrap();
        assert_eq!(rebuilt.nodes, base.nodes);
        assert_eq!(rebuilt.seed, 9);
    }

    #[test]
    fn run_on_reports_arity_mismatch() {
        let experiment = Experiment::builder().nodes(12).rounds(2).build().unwrap();
        let other = Experiment::builder().nodes(10).rounds(2).build().unwrap();
        let bundle = other.build_data();
        let err = experiment.run_on(&bundle).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::ArityMismatch {
                expected: 12,
                got: 10,
                ..
            }
        ));
    }
}
