//! The observer-driven experiment runner, compiled onto the event core.
//!
//! One experiment = build per-node models and topology, loop rounds under a
//! [`RoundPolicy`](crate::policy::RoundPolicy), and notify
//! [`RoundObserver`]s at the hook points. Everything the legacy
//! `run_experiment` hard-coded — learning-curve recording, the mean-model
//! curve, energy tallies — now flows through the same observer interface
//! external callers use, so a figure harness can add its own recording (or
//! stop the run early) without touching this loop.
//!
//! Both public drivers — this synchronous runner and the async pairwise
//! gossip in [`crate::asyncgossip`] — are *schedules compiled onto one
//! event-driven loop* ([`execute_on_events`]): each picks its round
//! semantics (barrier vs deadline), an action source, and how rounds mix
//! (the static/scheduled topology vs a fresh pairwise matching), and the
//! shared loop drives a [`skiptrain_engine::EventEngine`] per round. With
//! trivial timing (homogeneous compute, zero latency, no churn) the
//! engine's fast path makes the loop structure, seed derivations, and
//! evaluation cadence byte-compatible with the legacy lockstep driver: a
//! run with no extra observers produces an identical
//! [`ExperimentResult`], pinned by an equivalence test.

use crate::error::{ConfigError, RunError};
use crate::experiment::{
    BatterySummary, ChurnSpec, DataBundle, EventSummary, ExperimentConfig, ExperimentResult,
};
use skiptrain_engine::observer::{EvalReport, RoundCtx, RoundObserver, RoundReport};
use skiptrain_engine::{
    CurveObserver, EventEngine, MeanModelObserver, RoundAction, RoundSemantics, Simulation,
    SimulationConfig, BASE_TRAIN_TICKS,
};
use skiptrain_linalg::rng::derive_seed;
use skiptrain_nn::sgd::SgdConfig;
use skiptrain_topology::matching::random_maximal_matching;
use skiptrain_topology::schedule::round_seed;
use skiptrain_topology::{Graph, MixingMatrix, ScheduledTopology};
use std::sync::Arc;

/// Deadline slack for async-gossip ticks, in virtual ticks: a message may
/// trail the tick's slowest completion by a quarter of a nominal training
/// round before it is dropped as late. Zero-latency uniform-speed runs
/// never produce late edges under this slack, keeping the legacy async
/// results bit-compatible.
pub(crate) const GOSSIP_SLACK_TICKS: u64 = BASE_TRAIN_TICKS / 4;

/// The simulation a config builds, plus the round-loop companions both the
/// synchronous runner and the async-gossip loop need.
pub(crate) struct BuiltSimulation {
    /// The engine, fully configured (transport, codec, feedback, energy,
    /// and — when specified — the battery runtime).
    pub sim: Simulation,
    /// The bound topology schedule; `None` for the static fast path.
    pub schedule: Option<ScheduledTopology>,
    /// The base communication graph (async gossip matches over it).
    pub graph: Graph,
}

/// The shared round-loop prologue: per-node models, topology and mixing,
/// engine configuration (including the battery runtime lowered from
/// `cfg.battery`), and schedule binding. Factored out of the synchronous
/// runner and the async-gossip loop so battery gating and energy wiring
/// cannot diverge between the two paths. Assumes `cfg` is valid and
/// `data` matches it.
pub(crate) fn build_simulation(cfg: &ExperimentConfig, data: &DataBundle) -> BuiltSimulation {
    let kind = cfg.model_kind();
    let models: Vec<_> = (0..cfg.nodes)
        .map(|i| kind.build(derive_seed(cfg.seed, 0x4000 + i as u64)))
        .collect();

    let graph = cfg.topology.build(cfg.nodes, derive_seed(cfg.seed, 0x7090));
    let mixing = MixingMatrix::metropolis_hastings(&graph);

    // One merge point for the legacy flat codec fields and the
    // first-class `CompressionSpec`; the engine only ever sees the
    // effective spec.
    let compression = cfg.effective_compression();
    let sim_config = SimulationConfig {
        seed: cfg.seed,
        batch_size: cfg.batch_size,
        local_steps: cfg.local_steps,
        sgd: SgdConfig::plain(cfg.learning_rate),
        transport: cfg.transport,
        compression: compression.policy,
        consensus_gamma: compression.gamma,
        feedback_beta: compression.feedback_beta,
        feedback_replica_cap: Some(crate::experiment::effective_replica_cap(
            compression.feedback_replica_cap,
            &graph,
            &cfg.topology_schedule,
        )),
        training_energy_wh: cfg.energy.node_energies(cfg.nodes),
        comm_energy: match cfg.energy.comm_joules_per_byte {
            Some(j) => skiptrain_energy::comm::CommEnergyModel {
                tx_joules_per_byte: j,
                rx_joules_per_byte: j,
            },
            None => skiptrain_energy::comm::CommEnergyModel::paper_fit(),
        },
        nominal_params: Some(cfg.energy.workload.model_params),
        battery: cfg
            .battery
            .as_ref()
            .map(|spec| spec.build(cfg.nodes, cfg.seed, &cfg.energy.workload)),
    };
    // A non-static topology schedule regenerates (cached) doubly
    // stochastic mixing per round; the static default keeps the legacy
    // byte-compatible fast path through `run_round`.
    let schedule = cfg.topology_schedule.bind(&graph, cfg.seed);
    let sim = Simulation::with_shared_data(
        models,
        data.node_datasets.clone(),
        graph.clone(),
        mixing,
        sim_config,
    );
    BuiltSimulation {
        sim,
        schedule,
        graph,
    }
}

/// End-of-run battery totals, when the simulation was battery-gated.
pub(crate) fn battery_summary(sim: &Simulation) -> Option<BatterySummary> {
    sim.battery_state().map(|state| BatterySummary {
        harvested_wh: state.total_harvested_wh(),
        wasted_wh: state.total_wasted_wh(),
        drained_wh: state.total_drained_wh(),
        final_charge_wh: state.total_charge_wh(),
        node_participations: sim.battery_participations().unwrap_or(0),
        brownouts: sim.battery_brownouts().unwrap_or(0),
    })
}

/// Runs `cfg` on a pre-built bundle with caller-supplied observers, after
/// validating both.
///
/// This is the validated entry point used by
/// [`Experiment`](crate::Experiment) and [`Campaign`](crate::Campaign).
/// Configuration problems surface as [`ConfigError`]s before any work
/// starts; a mid-run engine failure (an internal scheduling bug) still
/// panics here with the typed [`RunError`]'s message — the resilient
/// campaign path ([`Campaign::run_resilient`](crate::Campaign::run_resilient))
/// is the API that converts those into typed cell failures instead.
pub fn run_with_observers(
    cfg: &ExperimentConfig,
    data: &DataBundle,
    observers: &mut [&mut dyn RoundObserver],
) -> Result<ExperimentResult, ConfigError> {
    cfg.validate()?;
    if data.node_datasets.len() != cfg.nodes {
        return Err(ConfigError::ArityMismatch {
            what: "node datasets".into(),
            expected: cfg.nodes,
            got: data.node_datasets.len(),
        });
    }
    // lint:allow(no_panic, "legacy infallible contract: config was validated above, an engine failure here is a scheduling bug")
    Ok(execute(cfg, data, observers).unwrap_or_else(|e| panic!("{e}")))
}

/// The synchronous round loop: the configured policy decides actions and
/// every round runs under barrier semantics (the round waits for all
/// messages — timing realism stretches virtual time, never results).
/// Assumes `cfg` is valid and `data` matches it; a mid-run engine failure
/// is reported as a typed [`RunError`] naming the broken round.
pub(crate) fn execute(
    cfg: &ExperimentConfig,
    data: &DataBundle,
    extra_observers: &mut [&mut dyn RoundObserver],
) -> Result<ExperimentResult, RunError> {
    let mut policy = cfg.build_policy();
    execute_on_events(
        cfg,
        data,
        extra_observers,
        cfg.name.clone(),
        cfg.algorithm.name().to_string(),
        RoundSemantics::Barrier,
        false,
        &mut |t, actions| policy.decide(t, actions),
    )
}

/// One schedule compiled onto the event core. Both drivers are thin
/// instances: the synchronous runner picks barrier semantics and the
/// static/scheduled topology mixing; async gossip picks deadline
/// semantics and a fresh random maximal matching per tick
/// (`pairwise_gossip`). The loop builds the fully configured simulation,
/// drives an [`EventEngine`] round by round (compute/latency/churn from
/// `cfg.timing` and `cfg.churn`), and records curves through the same
/// observers in both shapes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_on_events(
    cfg: &ExperimentConfig,
    data: &DataBundle,
    extra_observers: &mut [&mut dyn RoundObserver],
    name: String,
    algorithm: String,
    semantics: RoundSemantics,
    pairwise_gossip: bool,
    decide: &mut dyn FnMut(usize, &mut [RoundAction]),
) -> Result<ExperimentResult, RunError> {
    let built = build_simulation(cfg, data);
    let mut sim = built.sim;
    let mut schedule = built.schedule;
    let graph_for_matching = built.graph;

    let mut engine = EventEngine::new(
        cfg.nodes,
        cfg.seed,
        cfg.timing.compute.clone(),
        cfg.timing.latency,
        cfg.churn.as_ref().map(ChurnSpec::build),
        semantics,
    );

    let mut actions = vec![RoundAction::SyncOnly; cfg.nodes];

    // Built-in observers reimplement the legacy driver's recording; they run
    // before caller observers so callers see a fully recorded state.
    let mut curve = CurveObserver::new();
    let mut mean_model = cfg
        .record_mean_model
        .then(|| MeanModelObserver::new(Arc::clone(&data.test), cfg.eval_max_samples));
    {
        let mut observers: Vec<&mut dyn RoundObserver> = Vec::new();
        observers.push(&mut curve);
        if let Some(mean) = mean_model.as_mut() {
            observers.push(mean);
        }
        for obs in extra_observers.iter_mut() {
            observers.push(&mut **obs);
        }

        let mut node_train_events = 0u64;
        let mut executed_rounds = 0usize;
        let mut prev_training_wh = 0.0f64;
        let mut prev_comm_wh = 0.0f64;

        for t in 0..cfg.rounds {
            decide(t, &mut actions);
            let trained_nodes = actions.iter().filter(|&&a| a == RoundAction::Train).count();
            node_train_events += trained_nodes as u64;

            {
                let ctx = RoundCtx {
                    round: t,
                    actions: &actions,
                };
                for obs in observers.iter_mut() {
                    obs.on_round_start(&sim, &ctx);
                }
            }

            // Sizes were validated with the config; a mismatch here would
            // be an internal scheduling bug, reported with the typed
            // engine error's diagnosis (and the round it broke on) so a
            // resilient campaign can fail this one cell and keep going.
            let round_outcome = if pairwise_gossip {
                // Per-tick matching seeds are chained over (schedule id,
                // round) like every other per-round stream; matchings
                // compose with a configured topology schedule by pairing
                // over the *scheduled* round graph.
                let matching_seed = round_seed(
                    cfg.seed ^ 0x3A7C,
                    crate::asyncgossip::GOSSIP_MATCHING_STREAM,
                    t,
                );
                let pairs = match schedule.as_mut() {
                    None => random_maximal_matching(&graph_for_matching, matching_seed),
                    Some(sched) => {
                        random_maximal_matching(&sched.graph_for_round(t), matching_seed)
                    }
                };
                let round_mixing = MixingMatrix::pairwise(cfg.nodes, &pairs);
                sim.try_run_round_event(&actions, Some(&round_mixing), &mut engine)
            } else {
                match schedule.as_mut() {
                    None => sim.try_run_round_event(&actions, None, &mut engine),
                    Some(sched) => {
                        let mixing = sched.mixing_for_round(t);
                        sim.try_run_round_event(&actions, Some(mixing), &mut engine)
                    }
                }
            };
            round_outcome.map_err(|source| RunError { round: t, source })?;
            executed_rounds = t + 1;

            let training_wh = sim.ledger().total_training_wh();
            let comm_wh = sim.ledger().total_comm_wh();
            let report = RoundReport {
                round: t,
                actions: &actions,
                trained_nodes,
                train_loss: sim.last_train_loss(),
                round_training_wh: training_wh - prev_training_wh,
                round_comm_wh: comm_wh - prev_comm_wh,
                cumulative_wh: training_wh + comm_wh,
            };
            prev_training_wh = training_wh;
            prev_comm_wh = comm_wh;

            let mut stop = false;
            for obs in observers.iter_mut() {
                if obs.on_round_end(&mut sim, &report).is_break() {
                    stop = true;
                }
            }

            let at_eval = (t + 1) % cfg.eval_every.max(1) == 0 || t + 1 == cfg.rounds || stop;
            if at_eval {
                let stats = sim.evaluate(&data.test, cfg.eval_max_samples);
                let eval = EvalReport {
                    round: t + 1,
                    stats: &stats,
                    total_wh: sim.ledger().total_wh(),
                    training_wh: sim.ledger().total_training_wh(),
                };
                for obs in observers.iter_mut() {
                    if obs.on_eval(&mut sim, &eval).is_break() {
                        stop = true;
                    }
                }
            }
            if stop {
                break;
            }
        }

        let final_test = sim.evaluate(&data.test, cfg.eval_max_samples);
        let final_val = sim.evaluate(&data.validation, cfg.eval_max_samples);
        let final_mean_model = sim.mean_params();
        let node_class_sets = data
            .node_datasets
            .iter()
            .map(|d| {
                d.class_histogram()
                    .iter()
                    .enumerate()
                    .filter(|&(_, c)| *c > 0)
                    .map(|(class, _)| class as u32)
                    .collect()
            })
            .collect();
        drop(observers);

        let stats = engine.stats();
        Ok(ExperimentResult {
            name,
            algorithm,
            nodes: cfg.nodes,
            rounds: executed_rounds,
            test_curve: curve.into_recorder().points().to_vec(),
            mean_model_curve: mean_model
                .map(MeanModelObserver::into_curve)
                .unwrap_or_default(),
            final_test,
            final_val_accuracy: final_val.mean_accuracy,
            total_training_wh: sim.ledger().total_training_wh(),
            total_comm_wh: sim.ledger().total_comm_wh(),
            node_train_events,
            final_mean_model,
            node_class_sets,
            battery: battery_summary(&sim),
            events: EventSummary {
                virtual_ticks: engine.now(),
                events: stats.events,
                late_messages: stats.late_messages,
                joins: stats.joins,
                leaves: stats.leaves,
            },
            corrupted_messages: sim.corrupted_frames(),
            total_wire_bytes: sim.ledger().total_tx_bytes(),
        })
    }
}
