//! The SkipTrain round schedule (§3.1).
//!
//! SkipTrain alternates batches of Γ_train coordinated training rounds with
//! Γ_sync coordinated synchronization rounds. Rounds are counted 0-based
//! here; round `t` is a training round iff `t mod (Γ_train + Γ_sync) <
//! Γ_train` (Line 5 of Algorithm 2, shifted so each period opens with its
//! training block).

use serde::{Deserialize, Serialize};

/// A coordinated train/sync schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule {
    /// Γ_train: consecutive training rounds per period.
    pub gamma_train: usize,
    /// Γ_sync: consecutive synchronization rounds per period.
    pub gamma_sync: usize,
    /// Phase offset into the period at round 0. With offset 0 each period
    /// opens with its training block (the paper's convention); offset
    /// `gamma_train` opens with the synchronization block — an ablation of
    /// the block ordering.
    #[serde(default)]
    pub phase_offset: usize,
}

impl Schedule {
    /// Creates a train-first schedule.
    ///
    /// # Panics
    /// Panics if `gamma_train == 0` (a schedule that never trains cannot
    /// learn).
    pub fn new(gamma_train: usize, gamma_sync: usize) -> Self {
        assert!(gamma_train > 0, "Γ_train must be positive");
        Self {
            gamma_train,
            gamma_sync,
            phase_offset: 0,
        }
    }

    /// The same schedule starting `offset` slots into the period (e.g.
    /// `offset = gamma_train` gives a sync-first ordering).
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.phase_offset = offset % self.period();
        self
    }

    /// The D-PSGD schedule: train every round, never sync-only.
    pub fn dpsgd() -> Self {
        Self {
            gamma_train: 1,
            gamma_sync: 0,
            phase_offset: 0,
        }
    }

    /// The paper's tuned schedules per topology degree (§4.3: (4,4) for
    /// 6-regular, (3,3) for 8-regular, (4,2) for 10-regular).
    pub fn tuned_for_degree(degree: usize) -> Self {
        match degree {
            0..=6 => Self::new(4, 4),
            7..=8 => Self::new(3, 3),
            _ => Self::new(4, 2),
        }
    }

    /// Period length Γ_train + Γ_sync.
    pub fn period(&self) -> usize {
        self.gamma_train + self.gamma_sync
    }

    /// Whether round `t` (0-based) is a coordinated training round.
    pub fn is_train_round(&self, t: usize) -> bool {
        (t + self.phase_offset) % self.period() < self.gamma_train
    }

    /// Eq. 4: the (real-valued) maximum number of training rounds in `total`
    /// rounds, `T_train = Γ_train / (Γ_train + Γ_sync) · T`.
    pub fn t_train(&self, total_rounds: usize) -> f64 {
        self.gamma_train as f64 / self.period() as f64 * total_rounds as f64
    }

    /// Exact count of training rounds among `0..total_rounds`.
    pub fn count_train_rounds(&self, total_rounds: usize) -> usize {
        let period = self.period();
        let full = total_rounds / period;
        let mut count = full * self.gamma_train;
        for t in full * period..total_rounds {
            if self.is_train_round(t) {
                count += 1;
            }
        }
        count
    }

    /// Fraction of rounds spent training (the energy-reduction factor
    /// relative to D-PSGD).
    pub fn train_fraction(&self) -> f64 {
        self.gamma_train as f64 / self.period() as f64
    }

    /// Renders the first `rounds` schedule slots as a `T`/`S` string —
    /// the Figure-2 illustration.
    pub fn render(&self, rounds: usize) -> String {
        (0..rounds)
            .map(|t| if self.is_train_round(t) { 'T' } else { 'S' })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dpsgd_always_trains() {
        let s = Schedule::dpsgd();
        assert!((0..100).all(|t| s.is_train_round(t)));
        assert_eq!(s.count_train_rounds(100), 100);
        assert_eq!(s.train_fraction(), 1.0);
    }

    #[test]
    fn four_four_pattern() {
        let s = Schedule::new(4, 4);
        assert_eq!(s.render(16), "TTTTSSSSTTTTSSSS");
        assert_eq!(s.count_train_rounds(16), 8);
        assert!((s.t_train(1000) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn paper_tuned_schedules() {
        assert_eq!(Schedule::tuned_for_degree(6), Schedule::new(4, 4));
        assert_eq!(Schedule::tuned_for_degree(8), Schedule::new(3, 3));
        assert_eq!(Schedule::tuned_for_degree(10), Schedule::new(4, 2));
    }

    #[test]
    fn ten_regular_trains_666_of_1000() {
        // §4.3 reports T_train = 666 on the 10-regular graph (Γ = (4, 2)),
        // the real-valued Eq. 4 value ⌊4/6 · 1000⌋; exact enumeration of the
        // TTTTSS pattern over 1000 rounds gives 668 executed training rounds.
        let s = Schedule::tuned_for_degree(10);
        assert_eq!(s.count_train_rounds(1000), 668);
        assert!((s.t_train(1000) - 666.67).abs() < 0.01);
    }

    #[test]
    fn partial_period_counts() {
        let s = Schedule::new(2, 3);
        // pattern TTSSS | TT...
        assert_eq!(s.count_train_rounds(0), 0);
        assert_eq!(s.count_train_rounds(1), 1);
        assert_eq!(s.count_train_rounds(2), 2);
        assert_eq!(s.count_train_rounds(3), 2);
        assert_eq!(s.count_train_rounds(7), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_gamma_train() {
        let _ = Schedule::new(0, 4);
    }

    #[test]
    fn offset_shifts_the_pattern() {
        let sync_first = Schedule::new(4, 4).with_offset(4);
        assert_eq!(sync_first.render(16), "SSSSTTTTSSSSTTTT");
        // over whole periods the train count is unchanged
        assert_eq!(sync_first.count_train_rounds(16), 8);
        // but a partial window sees the shift
        assert_eq!(sync_first.count_train_rounds(4), 0);
        assert_eq!(Schedule::new(4, 4).count_train_rounds(4), 4);
    }

    #[test]
    fn offset_wraps_modulo_period() {
        let s = Schedule::new(2, 2).with_offset(5);
        assert_eq!(s.phase_offset, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_count_matches_enumeration(gt in 1usize..6, gs in 0usize..6, total in 0usize..200) {
            let s = Schedule::new(gt, gs);
            let brute = (0..total).filter(|&t| s.is_train_round(t)).count();
            prop_assert_eq!(s.count_train_rounds(total), brute);
        }

        #[test]
        fn prop_eq4_bounds_exact_count(gt in 1usize..6, gs in 0usize..6, total in 0usize..200) {
            let s = Schedule::new(gt, gs);
            let exact = s.count_train_rounds(total) as f64;
            // the real-valued Eq. 4 is within one period of the exact count
            prop_assert!((exact - s.t_train(total)).abs() <= s.gamma_train as f64);
        }

        #[test]
        fn prop_offset_shifts_phase_without_dropping_partial_periods(
            gt in 1usize..6, gs in 0usize..6, offset in 0usize..16, total in 0usize..120
        ) {
            // Issue-4 satellite: `with_offset` must *shift* the activation
            // phase — round t of the offset schedule behaves like round
            // t + offset of the base schedule — and the first (partial)
            // period stays fully populated rather than being dropped.
            let base = Schedule::new(gt, gs);
            let shifted = base.with_offset(offset);
            for t in 0..total {
                prop_assert_eq!(
                    shifted.is_train_round(t),
                    base.is_train_round(t + offset),
                    "round {} with offset {}", t, offset
                );
            }
            // count_train_rounds' full-period shortcut must agree with
            // brute enumeration at every offset (a dropped first partial
            // period would show up here)
            let brute = (0..total).filter(|&t| shifted.is_train_round(t)).count();
            prop_assert_eq!(shifted.count_train_rounds(total), brute);
            // any full-period window contains exactly gamma_train training
            // rounds regardless of phase
            let period = base.period();
            if total >= period {
                let window = (0..period).filter(|&t| shifted.is_train_round(t)).count();
                prop_assert_eq!(window, gt);
            }
        }
    }
}
