//! Parallel multi-run experiment execution.
//!
//! The paper's evaluation is inherently *many runs over shared data*: the
//! §4.3 grid alone is |Γ|² full experiments on one dataset, and every
//! figure compares several algorithms on identical bundles. A [`Campaign`]
//! executes N validated configurations with:
//!
//! * **data deduplication** — bundles are keyed by
//!   `(DataSpec, nodes, seed)` and materialized once behind `Arc`, so a
//!   16-cell sweep synthesizes its dataset a single time and shares it
//!   zero-copy across runs;
//! * **run-level parallelism** — independent runs execute on worker
//!   threads (each run's internal node loop stays sequential on its
//!   worker, which is the right grain for multi-run workloads);
//! * **deterministic results in input order** — every run is
//!   self-contained and seeded, so the output is identical to serial
//!   execution, cell for cell;
//! * **observability** — an optional observer factory hooks
//!   [`RoundObserver`]s into every run, and an `on_result` callback
//!   streams completions as they happen.
//!
//! ```
//! use skiptrain_core::presets::{cifar_config, Scale};
//! use skiptrain_core::Campaign;
//!
//! let mut base = cifar_config(Scale::Quick, 1);
//! base.nodes = 10;
//! base.rounds = 4;
//! base.eval_max_samples = 50;
//! let campaign = Campaign::replicates(&base, 3);
//! assert_eq!(campaign.len(), 3);
//! ```

use crate::error::CampaignError;
use crate::experiment::{DataBundle, DataSpec, ExperimentConfig, ExperimentResult};
use crate::runner;
use rayon::prelude::*;
use skiptrain_engine::observer::RoundObserver;
use skiptrain_linalg::rng::derive_seed;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Factory producing per-run observers (run index, config → observers).
type ObserverFactory = dyn Fn(usize, &ExperimentConfig) -> Vec<Box<dyn RoundObserver>> + Sync;

/// Streaming completion callback (run index, result).
type ResultCallback = dyn Fn(usize, &ExperimentResult) + Sync;

/// A batch of experiment runs executed in parallel over shared data
/// (see the module docs).
#[derive(Default)]
pub struct Campaign {
    configs: Vec<ExperimentConfig>,
    threads: Option<usize>,
    observer_factory: Option<Box<ObserverFactory>>,
    on_result: Option<Box<ResultCallback>>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Self::default()
    }

    /// A campaign over an explicit list of configurations.
    pub fn from_configs(configs: Vec<ExperimentConfig>) -> Self {
        Self {
            configs,
            ..Self::default()
        }
    }

    /// A campaign of `n` seed-replicates of `base`: run `i` gets the
    /// deterministically derived seed `derive_seed(base.seed, i)` and a
    /// `name/rep{i}` label.
    pub fn replicates(base: &ExperimentConfig, n: usize) -> Self {
        let configs = (0..n)
            .map(|i| {
                let mut cfg = base.clone();
                cfg.seed = derive_seed(base.seed, i as u64);
                cfg.name = format!("{}/rep{i}", base.name);
                cfg
            })
            .collect();
        Self {
            configs,
            ..Self::default()
        }
    }

    /// Appends one run.
    pub fn push(mut self, config: ExperimentConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Caps the worker threads used for run-level parallelism
    /// (default: all available cores; `1` forces serial execution).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Installs a factory that builds [`RoundObserver`]s for every run.
    ///
    /// Observers are created per run and dropped when it finishes; to
    /// extract data from them, capture a shared sink (`Arc<Mutex<_>>`,
    /// channel, ...) in the observer at construction time.
    pub fn observe_with(
        mut self,
        factory: impl Fn(usize, &ExperimentConfig) -> Vec<Box<dyn RoundObserver>> + Sync + 'static,
    ) -> Self {
        self.observer_factory = Some(Box::new(factory));
        self
    }

    /// Installs a callback invoked as each run completes (from worker
    /// threads, in completion order).
    pub fn on_result(
        mut self,
        callback: impl Fn(usize, &ExperimentResult) + Sync + 'static,
    ) -> Self {
        self.on_result = Some(Box::new(callback));
        self
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the campaign holds no runs.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configured runs, in input order.
    pub fn configs(&self) -> &[ExperimentConfig] {
        &self.configs
    }

    /// Validates every run up front (first failure wins, with its index).
    pub fn validate(&self) -> Result<(), CampaignError> {
        for (run, cfg) in self.configs.iter().enumerate() {
            cfg.validate().map_err(|source| CampaignError {
                run,
                name: cfg.name.clone(),
                source,
            })?;
        }
        Ok(())
    }

    /// Executes every run and returns results in input order.
    ///
    /// Equal `(DataSpec, nodes, seed)` triples share one materialized
    /// [`DataBundle`]. Bundles are built lazily by the first run that needs
    /// them (so peak memory is bounded by the worker count, not the number
    /// of distinct bundles) and freed as soon as their last dependent run
    /// finishes.
    pub fn run(&self) -> Result<Vec<ExperimentResult>, CampaignError> {
        self.validate()?;
        if self.configs.is_empty() {
            return Ok(Vec::new());
        }
        let slots = self.bundle_slots();
        let execute_all = || {
            let indices: Vec<usize> = (0..self.configs.len()).collect();
            indices
                .par_iter()
                .map(|&run| {
                    let cfg = &self.configs[run];
                    let slot = &slots[&data_key(&cfg.data, cfg.nodes, cfg.seed)];
                    let bundle = slot.acquire(cfg);
                    let result = self.execute_one(run, cfg, &bundle);
                    drop(bundle);
                    slot.release();
                    if let Some(callback) = &self.on_result {
                        callback(run, &result);
                    }
                    result
                })
                .collect()
        };
        let results: Vec<ExperimentResult> = match self.threads {
            Some(threads) => rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool")
                .install(execute_all),
            None => execute_all(),
        };
        Ok(results)
    }

    fn execute_one(
        &self,
        run: usize,
        cfg: &ExperimentConfig,
        bundle: &DataBundle,
    ) -> ExperimentResult {
        match &self.observer_factory {
            None => runner::execute(cfg, bundle, &mut []),
            Some(factory) => {
                let mut boxed = factory(run, cfg);
                let mut refs: Vec<&mut dyn RoundObserver> = Vec::with_capacity(boxed.len());
                for observer in &mut boxed {
                    refs.push(observer.as_mut());
                }
                runner::execute(cfg, bundle, &mut refs)
            }
        }
    }

    /// One lazy cache slot per distinct `(DataSpec, nodes, seed)` triple,
    /// pre-counted with how many runs will use it.
    fn bundle_slots(&self) -> HashMap<String, BundleSlot> {
        let mut slots: HashMap<String, BundleSlot> = HashMap::new();
        for cfg in &self.configs {
            slots
                .entry(data_key(&cfg.data, cfg.nodes, cfg.seed))
                .or_default()
                .expected_uses += 1;
        }
        slots
    }
}

/// A lazily materialized, use-counted data bundle shared by every run with
/// the same data key. The bundle is built under the slot lock by the first
/// run that needs it (runs on *other* keys proceed concurrently) and freed
/// once the last dependent run releases it, so campaign peak memory is
/// bounded by the bundles in active use, not by the number of distinct
/// keys.
#[derive(Default)]
struct BundleSlot {
    bundle: Mutex<Option<Arc<DataBundle>>>,
    expected_uses: usize,
    released: AtomicUsize,
}

impl BundleSlot {
    /// The shared bundle, materializing it on first use.
    fn acquire(&self, cfg: &ExperimentConfig) -> Arc<DataBundle> {
        let mut guard = self.bundle.lock().expect("bundle slot poisoned");
        guard
            .get_or_insert_with(|| Arc::new(cfg.data.build(cfg.nodes, cfg.seed)))
            .clone()
    }

    /// Signals that one dependent run finished; the last release drops the
    /// cached bundle.
    fn release(&self) {
        if self.released.fetch_add(1, Ordering::AcqRel) + 1 == self.expected_uses {
            *self.bundle.lock().expect("bundle slot poisoned") = None;
        }
    }
}

/// Cache key for data deduplication. `DataSpec` holds floats, so the key is
/// its full `Debug` rendering (shortest-roundtrip float formatting makes
/// distinct values render distinctly) plus the node count and seed.
fn data_key(spec: &DataSpec, nodes: usize, seed: u64) -> String {
    format!("{spec:?}|n={nodes}|s={seed}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ConfigError;
    use crate::experiment::AlgorithmSpec;
    use crate::presets::{cifar_config, Scale};
    use crate::schedule::Schedule;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn micro(seed: u64) -> ExperimentConfig {
        let mut cfg = cifar_config(Scale::Quick, seed);
        cfg.nodes = 8;
        cfg.rounds = 6;
        cfg.eval_every = 3;
        cfg.eval_max_samples = 80;
        cfg.data = DataSpec::CifarLike {
            feature_dim: 8,
            samples_per_node: 30,
            test_samples: 200,
            shards_per_node: 2,
            separation: 1.2,
            noise: 0.8,
            modes_per_class: 1,
        };
        cfg.hidden_dim = 8;
        cfg.local_steps = 2;
        cfg.topology = crate::experiment::TopologySpec::Regular { degree: 3 };
        cfg
    }

    #[test]
    fn results_come_back_in_input_order() {
        let configs: Vec<ExperimentConfig> = (0..4)
            .map(|i| {
                let mut cfg = micro(5);
                cfg.name = format!("run-{i}");
                cfg.algorithm = if i % 2 == 0 {
                    AlgorithmSpec::DPsgd
                } else {
                    AlgorithmSpec::SkipTrain(Schedule::new(2, 2))
                };
                cfg
            })
            .collect();
        let results = Campaign::from_configs(configs).run().unwrap();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.name, format!("run-{i}"));
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let campaign = |threads: usize| {
            Campaign::from_configs(vec![micro(1), micro(2), micro(3)])
                .threads(threads)
                .run()
                .unwrap()
        };
        let serial = campaign(1);
        let parallel = campaign(4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.final_test.mean_accuracy.to_bits(),
                b.final_test.mean_accuracy.to_bits()
            );
            assert_eq!(a.final_mean_model, b.final_mean_model);
            assert_eq!(a.node_train_events, b.node_train_events);
        }
    }

    #[test]
    fn equal_data_specs_share_one_bundle() {
        // Two runs, same (data, nodes, seed) but different algorithms:
        // exactly one bundle slot, used twice.
        let mut a = micro(9);
        a.algorithm = AlgorithmSpec::DPsgd;
        let mut b = micro(9);
        b.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(2, 2));
        let campaign = Campaign::from_configs(vec![a, b]);
        let slots = campaign.bundle_slots();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots.values().next().unwrap().expected_uses, 2);
        // A changed seed produces a second slot.
        let campaign = Campaign::from_configs(vec![micro(9), micro(10)]);
        assert_eq!(campaign.bundle_slots().len(), 2);
    }

    #[test]
    fn bundle_slots_free_after_last_release() {
        let cfg = micro(21);
        let slot = BundleSlot {
            expected_uses: 2,
            ..BundleSlot::default()
        };
        let first = slot.acquire(&cfg);
        let second = slot.acquire(&cfg);
        assert!(
            Arc::ptr_eq(&first, &second),
            "same slot must share one bundle"
        );
        slot.release();
        assert!(
            slot.bundle.lock().unwrap().is_some(),
            "freed before last user"
        );
        slot.release();
        assert!(
            slot.bundle.lock().unwrap().is_none(),
            "not freed after last user"
        );
    }

    #[test]
    fn invalid_run_is_rejected_with_its_index() {
        let mut bad = micro(1);
        bad.rounds = 0;
        bad.name = "broken".into();
        let err = Campaign::from_configs(vec![micro(1), bad])
            .run()
            .unwrap_err();
        assert_eq!(err.run, 1);
        assert_eq!(err.name, "broken");
        assert_eq!(err.source, ConfigError::ZeroRounds);
    }

    #[test]
    fn replicates_derive_distinct_deterministic_seeds() {
        let base = micro(7);
        let campaign = Campaign::replicates(&base, 3);
        let seeds: Vec<u64> = campaign.configs().iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0], derive_seed(7, 0));
        assert_eq!(seeds[1], derive_seed(7, 1));
        assert!(seeds[0] != seeds[1] && seeds[1] != seeds[2]);
        // Re-deriving gives the same seeds.
        let again: Vec<u64> = Campaign::replicates(&base, 3)
            .configs()
            .iter()
            .map(|c| c.seed)
            .collect();
        assert_eq!(seeds, again);
    }

    #[test]
    fn on_result_streams_every_completion() {
        // The callback must be 'static, so move a counter behind an Arc.
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let c2 = std::sync::Arc::clone(&counter);
        let results = Campaign::from_configs(vec![micro(1), micro(2)])
            .on_result(move |_, _| {
                c2.fetch_add(1, Ordering::SeqCst);
            })
            .run()
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn observer_factory_hooks_into_every_run() {
        use skiptrain_engine::observer::{EvalReport, RoundObserver};
        use skiptrain_engine::Simulation;
        use std::ops::ControlFlow;

        struct CountEvals(std::sync::Arc<Mutex<Vec<usize>>>);
        impl RoundObserver for CountEvals {
            fn on_eval(
                &mut self,
                _sim: &mut Simulation,
                report: &EvalReport<'_>,
            ) -> ControlFlow<()> {
                self.0.lock().unwrap().push(report.round);
                ControlFlow::Continue(())
            }
        }

        let sink = std::sync::Arc::new(Mutex::new(Vec::new()));
        let s2 = std::sync::Arc::clone(&sink);
        let results = Campaign::from_configs(vec![micro(4)])
            .observe_with(move |_, _| vec![Box::new(CountEvals(std::sync::Arc::clone(&s2)))])
            .run()
            .unwrap();
        // rounds=6, eval_every=3 -> evals after rounds 3 and 6
        assert_eq!(results[0].test_curve.len(), 2);
        let mut rounds = sink.lock().unwrap().clone();
        rounds.sort_unstable();
        assert_eq!(rounds, vec![3, 6]);
    }
}
