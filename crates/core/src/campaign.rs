//! Parallel, fault-tolerant multi-run experiment execution.
//!
//! The paper's evaluation is inherently *many runs over shared data*: the
//! §4.3 grid alone is |Γ|² full experiments on one dataset, and every
//! figure compares several algorithms on identical bundles. A [`Campaign`]
//! executes N validated configurations with:
//!
//! * **data deduplication** — bundles are keyed by
//!   `(DataSpec, nodes, seed)` and materialized once behind `Arc`, so a
//!   16-cell sweep synthesizes its dataset a single time and shares it
//!   zero-copy across runs;
//! * **run-level parallelism** — independent runs execute on worker
//!   threads (each run's internal node loop stays sequential on its
//!   worker, which is the right grain for multi-run workloads);
//! * **deterministic results in input order** — every run is
//!   self-contained and seeded, so the output is identical to serial
//!   execution, cell for cell;
//! * **observability** — an optional observer factory hooks
//!   [`RoundObserver`]s into every run, and `on_result` / `on_failure`
//!   callbacks stream completions and terminal failures as they happen.
//!
//! # Strict vs. resilient execution
//!
//! [`Campaign::run`] is the strict path: any cell panicking or hitting an
//! engine error aborts the campaign. [`Campaign::run_resilient`] instead
//! isolates every cell behind `catch_unwind` and returns a
//! [`CampaignReport`] where cell-level trouble is *data*:
//!
//! * a failing cell becomes a typed [`CellFailure`] (index, config
//!   digest, attempt count, [`FailureCause`]) instead of taking its
//!   siblings down;
//! * a [`RetrySpec`] re-runs failed cells with the chain-derived
//!   [`retry_seed`] — attempt 1 is the configured seed, attempt *k* > 1
//!   is `derive_seed(seed ^ salt, k-1)` — so a retried cell is
//!   bit-identical to a fresh run configured with that seed;
//! * [`Campaign::with_checkpoint`] journals every completed cell to a
//!   crash-safe JSONL file (see [`crate::journal`]); re-running the same
//!   campaign against the journal restores completed cells without
//!   re-executing them, and the resumed campaign's results are
//!   bit-identical to an uninterrupted run.
//!
//! ```
//! use skiptrain_core::presets::{cifar_config, Scale};
//! use skiptrain_core::{Campaign, RetrySpec};
//!
//! let mut base = cifar_config(Scale::Quick, 1);
//! base.nodes = 10;
//! base.rounds = 4;
//! base.eval_max_samples = 50;
//! let campaign = Campaign::replicates(&base, 3).retry(RetrySpec::attempts(2));
//! assert_eq!(campaign.len(), 3);
//! ```

use crate::error::{CampaignError, RunError};
use crate::experiment::{DataBundle, DataSpec, ExperimentConfig, ExperimentResult};
use crate::journal::{config_digest, Journal, JournalError};
use crate::runner;
use rayon::prelude::*;
use skiptrain_engine::observer::RoundObserver;
use skiptrain_linalg::rng::derive_seed;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Factory producing per-run observers (run index, config → observers).
type ObserverFactory = dyn Fn(usize, &ExperimentConfig) -> Vec<Box<dyn RoundObserver>> + Sync;

/// Streaming completion callback (run index, result).
type ResultCallback = dyn Fn(usize, &ExperimentResult) + Sync;

/// Streaming failure callback (final, post-retry cell failures).
type FailureCallback = dyn Fn(&CellFailure) + Sync;

/// Retry policy for failed campaign cells under
/// [`Campaign::run_resilient`].
///
/// Attempt 1 runs the cell's configured seed; every further attempt
/// re-runs it with the chain-derived [`retry_seed`], so retried cells are
/// exactly as deterministic as fresh runs (pinned by a bit-equivalence
/// test) while still escaping seed-dependent failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySpec {
    /// Total attempts per cell, including the first (minimum 1).
    pub max_attempts: usize,
    /// Pause between attempts (applied on the failing worker thread).
    pub backoff: Duration,
}

impl RetrySpec {
    /// No retries: one attempt, no backoff (the default).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// `max_attempts` total attempts with no backoff.
    pub fn attempts(max_attempts: usize) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            backoff: Duration::ZERO,
        }
    }
}

impl Default for RetrySpec {
    fn default() -> Self {
        Self::none()
    }
}

/// The seed a failed cell is re-run with on `attempt` (1-based; attempt 1
/// is the configured seed itself).
///
/// Chained off the cell's own seed with a dedicated salt, so the retry
/// stream never collides with any of the experiment's internal
/// `derive_seed` streams and a retried cell is bit-identical to a fresh
/// run configured with this seed directly.
pub fn retry_seed(base: u64, attempt: usize) -> u64 {
    if attempt <= 1 {
        base
    } else {
        derive_seed(base ^ 0x9E7A_D10C, attempt as u64 - 1)
    }
}

/// Why a campaign cell ultimately failed (after retries).
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// The cell panicked; the payload's message, when it carried one.
    Panic(String),
    /// The engine reported a typed mid-run error.
    Engine(RunError),
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

/// One campaign cell that failed every attempt under
/// [`Campaign::run_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Cell index in the campaign's input order.
    pub index: usize,
    /// The cell's config name.
    pub name: String,
    /// [`config_digest`] of the cell's config (matches the checkpoint
    /// journal's manifest entry).
    pub config_digest: u64,
    /// Attempts made (`>= 1`).
    pub attempts: usize,
    /// The last attempt's failure.
    pub cause: FailureCause,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell #{} (`{}`) failed after {} attempt(s): {}",
            self.index, self.name, self.attempts, self.cause
        )
    }
}

/// What a resilient campaign produced: per-cell results in input order
/// (`None` where the cell failed every attempt) plus the typed failures.
#[derive(Debug)]
pub struct CampaignReport {
    /// Results in input order; `None` marks a failed cell.
    pub results: Vec<Option<ExperimentResult>>,
    /// Every cell that failed all its attempts, in input order.
    pub failures: Vec<CellFailure>,
    /// Cells restored from the checkpoint journal instead of re-run.
    pub restored: usize,
}

impl CampaignReport {
    /// True when every cell has a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.results.iter().all(Option::is_some)
    }

    /// The results, unwrapped — only valid when [`Self::is_complete`].
    ///
    /// # Panics
    /// Panics if any cell failed.
    pub fn into_results(self) -> Vec<ExperimentResult> {
        self.results
            .into_iter()
            .enumerate()
            // lint:allow(no_panic, "documented '# Panics' API contract: caller asserted every cell succeeded")
            .map(|(i, r)| r.unwrap_or_else(|| panic!("cell #{i} has no result")))
            .collect()
    }
}

/// Why [`Campaign::run_resilient`] could not start (distinct from cell
/// failures, which it reports *inside* the [`CampaignReport`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignRunError {
    /// A configuration failed validation.
    Config(CampaignError),
    /// The checkpoint journal could not be opened, resumed, or written.
    Journal(JournalError),
}

impl std::fmt::Display for CampaignRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignRunError::Config(e) => e.fmt(f),
            CampaignRunError::Journal(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CampaignRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignRunError::Config(e) => Some(e),
            CampaignRunError::Journal(e) => Some(e),
        }
    }
}

impl From<CampaignError> for CampaignRunError {
    fn from(e: CampaignError) -> Self {
        CampaignRunError::Config(e)
    }
}

impl From<JournalError> for CampaignRunError {
    fn from(e: JournalError) -> Self {
        CampaignRunError::Journal(e)
    }
}

/// A batch of experiment runs executed in parallel over shared data
/// (see the module docs).
#[derive(Default)]
pub struct Campaign {
    configs: Vec<ExperimentConfig>,
    threads: Option<usize>,
    observer_factory: Option<Box<ObserverFactory>>,
    on_result: Option<Box<ResultCallback>>,
    on_failure: Option<Box<FailureCallback>>,
    retry: RetrySpec,
    checkpoint: Option<PathBuf>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Self::default()
    }

    /// A campaign over an explicit list of configurations.
    pub fn from_configs(configs: Vec<ExperimentConfig>) -> Self {
        Self {
            configs,
            ..Self::default()
        }
    }

    /// A campaign of `n` seed-replicates of `base`: run `i` gets the
    /// deterministically derived seed `derive_seed(base.seed, i)` and a
    /// `name/rep{i}` label.
    pub fn replicates(base: &ExperimentConfig, n: usize) -> Self {
        let configs = (0..n)
            .map(|i| {
                let mut cfg = base.clone();
                cfg.seed = derive_seed(base.seed, i as u64);
                cfg.name = format!("{}/rep{i}", base.name);
                cfg
            })
            .collect();
        Self {
            configs,
            ..Self::default()
        }
    }

    /// Appends one run.
    pub fn push(mut self, config: ExperimentConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Caps the worker threads used for run-level parallelism
    /// (default: all available cores; `1` forces serial execution).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Installs a factory that builds [`RoundObserver`]s for every run.
    ///
    /// Observers are created per run and dropped when it finishes; to
    /// extract data from them, capture a shared sink (`Arc<Mutex<_>>`,
    /// channel, ...) in the observer at construction time.
    pub fn observe_with(
        mut self,
        factory: impl Fn(usize, &ExperimentConfig) -> Vec<Box<dyn RoundObserver>> + Sync + 'static,
    ) -> Self {
        self.observer_factory = Some(Box::new(factory));
        self
    }

    /// Installs a callback invoked as each run completes (from worker
    /// threads, in completion order).
    ///
    /// Under [`Campaign::run_resilient`] the callback fires for freshly
    /// computed cells only — cells restored from a checkpoint journal
    /// already streamed in the interrupted run and are not re-delivered.
    pub fn on_result(
        mut self,
        callback: impl Fn(usize, &ExperimentResult) + Sync + 'static,
    ) -> Self {
        self.on_result = Some(Box::new(callback));
        self
    }

    /// Installs a callback invoked as each cell *fails terminally* (all
    /// attempts exhausted) under [`Campaign::run_resilient`] — the
    /// failure-side counterpart of [`Campaign::on_result`] streaming.
    pub fn on_failure(mut self, callback: impl Fn(&CellFailure) + Sync + 'static) -> Self {
        self.on_failure = Some(Box::new(callback));
        self
    }

    /// Sets the retry policy for failed cells under
    /// [`Campaign::run_resilient`] (default: no retries).
    pub fn retry(mut self, retry: RetrySpec) -> Self {
        self.retry = retry;
        self
    }

    /// Enables checkpoint/resume through a JSONL journal at `path` for
    /// [`Campaign::run_resilient`]: every completed cell is appended
    /// crash-safely, and a re-run against an existing journal skips the
    /// cells it already holds (manifest-checked — see
    /// [`crate::journal`]).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the campaign holds no runs.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configured runs, in input order.
    pub fn configs(&self) -> &[ExperimentConfig] {
        &self.configs
    }

    /// Validates every run up front (first failure wins, with its index).
    pub fn validate(&self) -> Result<(), CampaignError> {
        for (run, cfg) in self.configs.iter().enumerate() {
            cfg.validate().map_err(|source| CampaignError {
                run,
                name: cfg.name.clone(),
                source,
            })?;
        }
        Ok(())
    }

    /// Executes every run and returns results in input order.
    ///
    /// Equal `(DataSpec, nodes, seed)` triples share one materialized
    /// [`DataBundle`]. Bundles are built lazily by the first run that needs
    /// them (so peak memory is bounded by the worker count, not the number
    /// of distinct bundles) and freed as soon as their last dependent run
    /// finishes.
    ///
    /// This is the *strict* path: one panicking or engine-failing cell
    /// aborts the whole campaign. Long or flaky sweeps should prefer
    /// [`Campaign::run_resilient`].
    pub fn run(&self) -> Result<Vec<ExperimentResult>, CampaignError> {
        self.validate()?;
        if self.configs.is_empty() {
            return Ok(Vec::new());
        }
        let slots = self.bundle_slots();
        let execute_all = || {
            let indices: Vec<usize> = (0..self.configs.len()).collect();
            indices
                .par_iter()
                .map(|&run| {
                    let cfg = &self.configs[run];
                    let slot = &slots[&data_key(&cfg.data, cfg.nodes, cfg.seed)];
                    let bundle = slot.acquire(cfg);
                    let result = self
                        .execute_one(run, cfg, &bundle)
                        // lint:allow(no_panic, "strict path's documented abort-on-first-failure semantics; run_resilient is the typed-error path")
                        .unwrap_or_else(|e| panic!("campaign cell #{run}: {e}"));
                    drop(bundle);
                    slot.release();
                    if let Some(callback) = &self.on_result {
                        callback(run, &result);
                    }
                    result
                })
                .collect()
        };
        let results: Vec<ExperimentResult> = match self.threads {
            Some(threads) => rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap_or_else(|infallible| match infallible {})
                .install(execute_all),
            None => execute_all(),
        };
        Ok(results)
    }

    /// Executes every run with per-cell failure isolation, seeded retry,
    /// and (when [`Campaign::with_checkpoint`] is set) journal-backed
    /// checkpoint/resume.
    ///
    /// Each cell runs inside `catch_unwind`: a panicking or
    /// engine-failing cell becomes a typed [`CellFailure`] in the report
    /// instead of aborting its siblings. Failed cells are re-attempted
    /// per the [`RetrySpec`] with the chain-derived [`retry_seed`]
    /// (attempt 1 = configured seed; retried cells are bit-identical to
    /// fresh runs at the derived seed). Successes stream through
    /// [`Campaign::on_result`], terminal failures through
    /// [`Campaign::on_failure`]; results come back in input order with
    /// `None` holes where a cell failed every attempt.
    ///
    /// Returns an error only when the campaign cannot *start* (invalid
    /// config, unusable journal) or when the journal broke mid-run —
    /// cell-level trouble is data, not an error.
    pub fn run_resilient(&self) -> Result<CampaignReport, CampaignRunError> {
        self.validate()?;
        let digests: Vec<u64> = self.configs.iter().map(config_digest).collect();

        let mut results: Vec<Option<ExperimentResult>> = Vec::new();
        results.resize_with(self.configs.len(), || None);
        let journal = match &self.checkpoint {
            Some(path) => {
                let (journal, restored_cells) = Journal::open(path, &digests)?;
                for (slot, cell) in results.iter_mut().zip(restored_cells) {
                    *slot = cell.map(|c| c.result);
                }
                Some(journal)
            }
            None => None,
        };
        let restored = results.iter().filter(|r| r.is_some()).count();
        let pending: Vec<usize> = (0..self.configs.len())
            .filter(|&i| results[i].is_none())
            .collect();
        if pending.is_empty() {
            return Ok(CampaignReport {
                results,
                failures: Vec::new(),
                restored,
            });
        }

        // Bundle slots count only the cells actually running this time;
        // restored cells never acquire, so counting them would leak the
        // bundle until process exit.
        let slots = self.bundle_slots_for(&pending);
        let journal_error: Mutex<Option<JournalError>> = Mutex::new(None);
        let execute_all = || {
            pending
                .par_iter()
                .map(|&run| {
                    let outcome = self.execute_cell_with_retry(run, &slots);
                    match outcome {
                        Ok((result, attempts)) => {
                            if let Some(journal) = &journal {
                                if let Err(e) = journal.record(run, digests[run], attempts, &result)
                                {
                                    let mut slot = journal_error
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner);
                                    slot.get_or_insert(e);
                                }
                            }
                            if let Some(callback) = &self.on_result {
                                callback(run, &result);
                            }
                            (run, Ok(result))
                        }
                        Err(failure) => {
                            if let Some(callback) = &self.on_failure {
                                callback(&failure);
                            }
                            (run, Err(failure))
                        }
                    }
                })
                .collect::<Vec<_>>()
        };
        let outcomes = match self.threads {
            Some(threads) => rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap_or_else(|infallible| match infallible {})
                .install(execute_all),
            None => execute_all(),
        };

        if let Some(e) = journal_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            return Err(CampaignRunError::Journal(e));
        }

        let mut failures = Vec::new();
        for (run, outcome) in outcomes {
            match outcome {
                Ok(result) => results[run] = Some(result),
                Err(failure) => failures.push(failure),
            }
        }
        failures.sort_by_key(|f| f.index);
        Ok(CampaignReport {
            results,
            failures,
            restored,
        })
    }

    /// Runs one cell under `catch_unwind`, retrying per the campaign's
    /// [`RetrySpec`]. Attempt 1 uses the shared bundle slot; retries run
    /// a reseeded config ([`retry_seed`]), whose data bundle is private
    /// by construction (the seed differs), exactly like a fresh run.
    fn execute_cell_with_retry(
        &self,
        run: usize,
        slots: &BTreeMap<String, BundleSlot>,
    ) -> Result<(ExperimentResult, usize), CellFailure> {
        let cfg = &self.configs[run];
        let max_attempts = self.retry.max_attempts.max(1);
        let mut last_cause = None;
        for attempt in 1..=max_attempts {
            if attempt > 1 && !self.retry.backoff.is_zero() {
                std::thread::sleep(self.retry.backoff);
            }
            let outcome = if attempt == 1 {
                let slot = &slots[&data_key(&cfg.data, cfg.nodes, cfg.seed)];
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let bundle = slot.acquire(cfg);
                    self.execute_one(run, cfg, &bundle)
                }));
                // Balance the slot's use count even when the cell
                // panicked (possibly mid-build while holding the lock —
                // acquire/release recover the poison), so healthy
                // sibling cells still free the bundle on time.
                slot.release();
                outcome
            } else {
                let mut reseeded = cfg.clone();
                reseeded.seed = retry_seed(cfg.seed, attempt);
                catch_unwind(AssertUnwindSafe(|| {
                    let bundle = reseeded.data.build(reseeded.nodes, reseeded.seed);
                    self.execute_one(run, &reseeded, &bundle)
                }))
            };
            match outcome {
                Ok(Ok(result)) => return Ok((result, attempt)),
                Ok(Err(run_error)) => last_cause = Some(FailureCause::Engine(run_error)),
                Err(payload) => {
                    last_cause = Some(FailureCause::Panic(panic_message(payload.as_ref())))
                }
            }
        }
        Err(CellFailure {
            index: run,
            name: cfg.name.clone(),
            config_digest: config_digest(cfg),
            attempts: max_attempts,
            // lint:allow(no_panic, "max_attempts.max(1) forces at least one loop iteration, which either returns Ok or sets last_cause")
            cause: last_cause.expect("at least one attempt ran"),
        })
    }

    fn execute_one(
        &self,
        run: usize,
        cfg: &ExperimentConfig,
        bundle: &DataBundle,
    ) -> Result<ExperimentResult, RunError> {
        match &self.observer_factory {
            None => runner::execute(cfg, bundle, &mut []),
            Some(factory) => {
                let mut boxed = factory(run, cfg);
                let mut refs: Vec<&mut dyn RoundObserver> = Vec::with_capacity(boxed.len());
                for observer in &mut boxed {
                    refs.push(observer.as_mut());
                }
                runner::execute(cfg, bundle, &mut refs)
            }
        }
    }

    /// One lazy cache slot per distinct `(DataSpec, nodes, seed)` triple,
    /// pre-counted with how many runs will use it.
    fn bundle_slots(&self) -> BTreeMap<String, BundleSlot> {
        let all: Vec<usize> = (0..self.configs.len()).collect();
        self.bundle_slots_for(&all)
    }

    /// Bundle slots counted over a subset of cells (resumed campaigns
    /// only count the cells that actually run).
    fn bundle_slots_for(&self, cells: &[usize]) -> BTreeMap<String, BundleSlot> {
        let mut slots: BTreeMap<String, BundleSlot> = BTreeMap::new();
        for &run in cells {
            let cfg = &self.configs[run];
            slots
                .entry(data_key(&cfg.data, cfg.nodes, cfg.seed))
                .or_default()
                .expected_uses += 1;
        }
        slots
    }
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A lazily materialized, use-counted data bundle shared by every run with
/// the same data key. The bundle is built under the slot lock by the first
/// run that needs it (runs on *other* keys proceed concurrently) and freed
/// once the last dependent run releases it, so campaign peak memory is
/// bounded by the bundles in active use, not by the number of distinct
/// keys.
#[derive(Default)]
struct BundleSlot {
    bundle: Mutex<Option<Arc<DataBundle>>>,
    expected_uses: usize,
    released: AtomicUsize,
}

impl BundleSlot {
    /// The shared bundle, materializing it on first use.
    ///
    /// A poisoned lock is recovered, not propagated: poisoning means a
    /// sibling cell panicked (isolated by `run_resilient`), and the slot
    /// state is a plain `Option` cache that is either intact or `None` —
    /// rebuilding it is always safe.
    fn acquire(&self, cfg: &ExperimentConfig) -> Arc<DataBundle> {
        let mut guard = self.bundle.lock().unwrap_or_else(PoisonError::into_inner);
        guard
            .get_or_insert_with(|| Arc::new(cfg.data.build(cfg.nodes, cfg.seed)))
            .clone()
    }

    /// Signals that one dependent run finished; the last release drops the
    /// cached bundle. Recovers a poisoned lock (see [`Self::acquire`]).
    fn release(&self) {
        if self.released.fetch_add(1, Ordering::AcqRel) + 1 == self.expected_uses {
            *self.bundle.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
    }
}

/// Cache key for data deduplication. `DataSpec` holds floats, so the key is
/// its full `Debug` rendering (shortest-roundtrip float formatting makes
/// distinct values render distinctly) plus the node count and seed.
fn data_key(spec: &DataSpec, nodes: usize, seed: u64) -> String {
    format!("{spec:?}|n={nodes}|s={seed}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ConfigError;
    use crate::experiment::AlgorithmSpec;
    use crate::presets::{cifar_config, Scale};
    use crate::schedule::Schedule;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn micro(seed: u64) -> ExperimentConfig {
        let mut cfg = cifar_config(Scale::Quick, seed);
        cfg.nodes = 8;
        cfg.rounds = 6;
        cfg.eval_every = 3;
        cfg.eval_max_samples = 80;
        cfg.data = DataSpec::CifarLike {
            feature_dim: 8,
            samples_per_node: 30,
            test_samples: 200,
            shards_per_node: 2,
            separation: 1.2,
            noise: 0.8,
            modes_per_class: 1,
        };
        cfg.hidden_dim = 8;
        cfg.local_steps = 2;
        cfg.topology = crate::experiment::TopologySpec::Regular { degree: 3 };
        cfg
    }

    #[test]
    fn results_come_back_in_input_order() {
        let configs: Vec<ExperimentConfig> = (0..4)
            .map(|i| {
                let mut cfg = micro(5);
                cfg.name = format!("run-{i}");
                cfg.algorithm = if i % 2 == 0 {
                    AlgorithmSpec::DPsgd
                } else {
                    AlgorithmSpec::SkipTrain(Schedule::new(2, 2))
                };
                cfg
            })
            .collect();
        let results = Campaign::from_configs(configs).run().unwrap();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.name, format!("run-{i}"));
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let campaign = |threads: usize| {
            Campaign::from_configs(vec![micro(1), micro(2), micro(3)])
                .threads(threads)
                .run()
                .unwrap()
        };
        let serial = campaign(1);
        let parallel = campaign(4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.final_test.mean_accuracy.to_bits(),
                b.final_test.mean_accuracy.to_bits()
            );
            assert_eq!(a.final_mean_model, b.final_mean_model);
            assert_eq!(a.node_train_events, b.node_train_events);
        }
    }

    #[test]
    fn equal_data_specs_share_one_bundle() {
        // Two runs, same (data, nodes, seed) but different algorithms:
        // exactly one bundle slot, used twice.
        let mut a = micro(9);
        a.algorithm = AlgorithmSpec::DPsgd;
        let mut b = micro(9);
        b.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(2, 2));
        let campaign = Campaign::from_configs(vec![a, b]);
        let slots = campaign.bundle_slots();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots.values().next().unwrap().expected_uses, 2);
        // A changed seed produces a second slot.
        let campaign = Campaign::from_configs(vec![micro(9), micro(10)]);
        assert_eq!(campaign.bundle_slots().len(), 2);
    }

    #[test]
    fn bundle_slots_free_after_last_release() {
        let cfg = micro(21);
        let slot = BundleSlot {
            expected_uses: 2,
            ..BundleSlot::default()
        };
        let first = slot.acquire(&cfg);
        let second = slot.acquire(&cfg);
        assert!(
            Arc::ptr_eq(&first, &second),
            "same slot must share one bundle"
        );
        slot.release();
        assert!(
            slot.bundle.lock().unwrap().is_some(),
            "freed before last user"
        );
        slot.release();
        assert!(
            slot.bundle.lock().unwrap().is_none(),
            "not freed after last user"
        );
    }

    #[test]
    fn invalid_run_is_rejected_with_its_index() {
        let mut bad = micro(1);
        bad.rounds = 0;
        bad.name = "broken".into();
        let err = Campaign::from_configs(vec![micro(1), bad])
            .run()
            .unwrap_err();
        assert_eq!(err.run, 1);
        assert_eq!(err.name, "broken");
        assert_eq!(err.source, ConfigError::ZeroRounds);
    }

    #[test]
    fn replicates_derive_distinct_deterministic_seeds() {
        let base = micro(7);
        let campaign = Campaign::replicates(&base, 3);
        let seeds: Vec<u64> = campaign.configs().iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0], derive_seed(7, 0));
        assert_eq!(seeds[1], derive_seed(7, 1));
        assert!(seeds[0] != seeds[1] && seeds[1] != seeds[2]);
        // Re-deriving gives the same seeds.
        let again: Vec<u64> = Campaign::replicates(&base, 3)
            .configs()
            .iter()
            .map(|c| c.seed)
            .collect();
        assert_eq!(seeds, again);
    }

    #[test]
    fn on_result_streams_every_completion() {
        // The callback must be 'static, so move a counter behind an Arc.
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let c2 = std::sync::Arc::clone(&counter);
        let results = Campaign::from_configs(vec![micro(1), micro(2)])
            .on_result(move |_, _| {
                c2.fetch_add(1, Ordering::SeqCst);
            })
            .run()
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    /// Unique temp path for journal-backed tests.
    fn temp_journal(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "skiptrain-campaign-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    fn result_bits(r: &ExperimentResult) -> (u32, Vec<u32>) {
        (
            r.final_test.mean_accuracy.to_bits(),
            r.final_mean_model.iter().map(|v| v.to_bits()).collect(),
        )
    }

    #[test]
    fn run_resilient_matches_strict_run_bitwise() {
        let configs = vec![micro(11), micro(12), micro(13)];
        let strict = Campaign::from_configs(configs.clone()).run().unwrap();
        let report = Campaign::from_configs(configs).run_resilient().unwrap();
        assert!(report.is_complete());
        assert_eq!(report.restored, 0);
        for (a, b) in strict.iter().zip(report.into_results().iter()) {
            assert_eq!(result_bits(a), result_bits(b));
            assert_eq!(a.node_train_events, b.node_train_events);
        }
    }

    #[test]
    fn panicking_cell_is_isolated_and_reported() {
        let mut doomed = micro(2);
        doomed.name = "doomed".into();
        let configs = vec![micro(1), doomed, micro(3)];
        let failures_seen = std::sync::Arc::new(AtomicUsize::new(0));
        let f2 = std::sync::Arc::clone(&failures_seen);
        let report = Campaign::from_configs(configs)
            .observe_with(|_, cfg| {
                if cfg.name == "doomed" {
                    panic!("injected cell fault");
                }
                Vec::new()
            })
            .on_failure(move |failure| {
                assert_eq!(failure.index, 1);
                f2.fetch_add(1, Ordering::SeqCst);
            })
            .run_resilient()
            .unwrap();
        assert!(!report.is_complete());
        assert!(report.results[0].is_some() && report.results[2].is_some());
        assert!(report.results[1].is_none());
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.index, 1);
        assert_eq!(failure.name, "doomed");
        assert_eq!(failure.attempts, 1);
        assert!(
            matches!(&failure.cause, FailureCause::Panic(msg) if msg.contains("injected cell fault")),
            "unexpected cause: {}",
            failure.cause
        );
        assert_eq!(failures_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retried_cell_is_bit_identical_to_fresh_run_at_derived_seed() {
        // A cell that panics on its configured seed and succeeds on the
        // retry seed must produce exactly the bits of a fresh run
        // configured with the derived seed directly — at every thread
        // count the campaign supports.
        let base = micro(41);
        let derived = retry_seed(base.seed, 2);
        let mut fresh_cfg = base.clone();
        fresh_cfg.seed = derived;
        let fresh = Campaign::from_configs(vec![fresh_cfg]).run().unwrap();

        let doomed_seed = base.seed;
        for threads in [1usize, 2, 7] {
            let report = Campaign::from_configs(vec![base.clone(), micro(42)])
                .threads(threads)
                .retry(RetrySpec::attempts(2))
                .observe_with(move |_, cfg| {
                    if cfg.seed == doomed_seed {
                        panic!("fails on the configured seed only");
                    }
                    Vec::new()
                })
                .run_resilient()
                .unwrap();
            assert!(report.is_complete(), "threads={threads}");
            let retried = report.results[0].as_ref().unwrap();
            assert_eq!(
                result_bits(retried),
                result_bits(&fresh[0]),
                "threads={threads}: retried cell must match fresh run at retry_seed"
            );
            assert_eq!(retried.node_train_events, fresh[0].node_train_events);
        }
    }

    #[test]
    fn retry_seed_chain_is_stable_and_collision_free() {
        assert_eq!(retry_seed(99, 1), 99, "attempt 1 is the configured seed");
        let s2 = retry_seed(99, 2);
        let s3 = retry_seed(99, 3);
        assert_ne!(s2, 99);
        assert_ne!(s2, s3);
        assert_eq!(s2, retry_seed(99, 2), "derivation must be pure");
    }

    #[test]
    fn exhausted_retries_report_the_last_cause() {
        let report = Campaign::from_configs(vec![micro(8)])
            .retry(RetrySpec::attempts(3))
            .observe_with(|_, _| panic!("always fails"))
            .run_resilient()
            .unwrap();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].attempts, 3);
        assert!(matches!(
            &report.failures[0].cause,
            FailureCause::Panic(msg) if msg.contains("always fails")
        ));
    }

    #[test]
    fn checkpoint_journal_restores_completed_cells() {
        let path = temp_journal("restore");
        let _ = std::fs::remove_file(&path);
        let configs = vec![micro(61), micro(62), micro(63)];
        let first = Campaign::from_configs(configs.clone())
            .with_checkpoint(&path)
            .run_resilient()
            .unwrap();
        assert!(first.is_complete());
        assert_eq!(first.restored, 0);

        // Re-running against the full journal restores everything and
        // never re-executes (observer factory would panic).
        let resumed = Campaign::from_configs(configs)
            .with_checkpoint(&path)
            .observe_with(|_, _| panic!("restored cells must not re-run"))
            .run_resilient()
            .unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.restored, 3);
        for (a, b) in first.results.iter().zip(resumed.results.iter()) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(result_bits(a), result_bits(b));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_after_interrupt_at_any_cell_is_bit_identical() {
        // Pinned resilience guarantee: interrupting a campaign after any
        // completed cell and resuming from its journal yields exactly the
        // bits of an uninterrupted run.
        let configs = vec![micro(71), micro(72), micro(73), micro(74)];
        let uninterrupted = Campaign::from_configs(configs.clone()).run().unwrap();

        let full_path = temp_journal("interrupt-full");
        let _ = std::fs::remove_file(&full_path);
        Campaign::from_configs(configs.clone())
            .with_checkpoint(&full_path)
            .run_resilient()
            .unwrap();
        let journal_text = std::fs::read_to_string(&full_path).unwrap();
        let lines: Vec<&str> = journal_text.lines().collect();
        assert_eq!(lines.len(), 1 + configs.len(), "manifest + one per cell");

        for interrupted_at in 0..=configs.len() {
            let path = temp_journal(&format!("interrupt-{interrupted_at}"));
            // Simulate a crash after `interrupted_at` cells: manifest plus
            // that many completed-cell records (plus a torn final line for
            // the mid-write cases).
            let mut partial: String = lines[..=interrupted_at].join("\n");
            partial.push('\n');
            if interrupted_at < configs.len() {
                let torn = &lines[interrupted_at + 1];
                partial.push_str(&torn[..torn.len() / 2]);
            }
            std::fs::write(&path, partial).unwrap();

            let report = Campaign::from_configs(configs.clone())
                .with_checkpoint(&path)
                .run_resilient()
                .unwrap();
            assert!(report.is_complete(), "interrupted_at={interrupted_at}");
            assert_eq!(report.restored, interrupted_at);
            for (a, b) in uninterrupted.iter().zip(report.results.iter()) {
                assert_eq!(
                    result_bits(a),
                    result_bits(b.as_ref().unwrap()),
                    "interrupted_at={interrupted_at}: resume must be bit-identical"
                );
            }
            let _ = std::fs::remove_file(&path);
        }
        let _ = std::fs::remove_file(&full_path);
    }

    #[test]
    fn mismatched_journal_is_a_typed_error() {
        let path = temp_journal("mismatch");
        let _ = std::fs::remove_file(&path);
        Campaign::from_configs(vec![micro(81)])
            .with_checkpoint(&path)
            .run_resilient()
            .unwrap();
        // A different campaign against the same journal must refuse.
        let err = Campaign::from_configs(vec![micro(82), micro(83)])
            .with_checkpoint(&path)
            .run_resilient()
            .unwrap_err();
        assert!(matches!(err, CampaignRunError::Journal(_)), "got: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_cells_are_not_journaled_and_rerun_on_resume() {
        let path = temp_journal("failed-rerun");
        let _ = std::fs::remove_file(&path);
        let mut flaky = micro(92);
        flaky.name = "flaky".into();
        let configs = vec![micro(91), flaky];
        let report = Campaign::from_configs(configs.clone())
            .with_checkpoint(&path)
            .observe_with(|_, cfg| {
                if cfg.name == "flaky" {
                    panic!("fails this pass");
                }
                Vec::new()
            })
            .run_resilient()
            .unwrap();
        assert_eq!(report.failures.len(), 1);
        // The next pass (fault fixed) restores the good cell and re-runs
        // only the failed one.
        let resumed = Campaign::from_configs(configs)
            .with_checkpoint(&path)
            .run_resilient()
            .unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.restored, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn engine_failure_cause_formats_with_round() {
        use skiptrain_engine::EngineError;
        let cause = FailureCause::Engine(RunError {
            round: 7,
            source: EngineError::MixingSizeMismatch {
                expected: 8,
                got: 4,
            },
        });
        let text = format!("{cause}");
        assert!(text.contains("engine error"), "got: {text}");
        assert!(text.contains("round 7"), "got: {text}");
    }

    #[test]
    fn observer_factory_hooks_into_every_run() {
        use skiptrain_engine::observer::{EvalReport, RoundObserver};
        use skiptrain_engine::Simulation;
        use std::ops::ControlFlow;

        struct CountEvals(std::sync::Arc<Mutex<Vec<usize>>>);
        impl RoundObserver for CountEvals {
            fn on_eval(
                &mut self,
                _sim: &mut Simulation,
                report: &EvalReport<'_>,
            ) -> ControlFlow<()> {
                self.0.lock().unwrap().push(report.round);
                ControlFlow::Continue(())
            }
        }

        let sink = std::sync::Arc::new(Mutex::new(Vec::new()));
        let s2 = std::sync::Arc::clone(&sink);
        let results = Campaign::from_configs(vec![micro(4)])
            .observe_with(move |_, _| vec![Box::new(CountEvals(std::sync::Arc::clone(&s2)))])
            .run()
            .unwrap();
        // rounds=6, eval_every=3 -> evals after rounds 3 and 6
        assert_eq!(results[0].test_curve.len(), 2);
        let mut rounds = sink.lock().unwrap().clone();
        rounds.sort_unstable();
        assert_eq!(rounds, vec![3, 6]);
    }
}
