//! SkipTrain: energy-aware decentralized learning with intermittent model
//! training.
//!
//! This crate implements the paper's contribution on top of the
//! `skiptrain-engine` substrate:
//!
//! * [`schedule`] — the coordinated Γ_train/Γ_sync round schedule (§3.1,
//!   Eq. 4),
//! * [`prob`] — energy-budget training probabilities (§3.2, Eq. 5),
//! * [`policy`] — the algorithms as round policies: D-PSGD, SkipTrain,
//!   SkipTrain-constrained, Greedy,
//! * [`experiment`] — the end-to-end experiment driver used by every
//!   figure/table harness,
//! * [`sweep`] — the §4.3 (Γ_train, Γ_sync) grid search,
//! * [`presets`] — Table-1 configurations at paper/medium/quick scales.
//!
//! # Quick example
//!
//! ```
//! use skiptrain_core::experiment::AlgorithmSpec;
//! use skiptrain_core::presets::{cifar_config, with_algorithm, Scale};
//! use skiptrain_core::schedule::Schedule;
//!
//! let base = cifar_config(Scale::Quick, 42);
//! let skiptrain = with_algorithm(base, AlgorithmSpec::SkipTrain(Schedule::new(4, 4)));
//! assert_eq!(skiptrain.algorithm.name(), "skiptrain");
//! ```

pub mod asyncgossip;
pub mod experiment;
pub mod fairness;
pub mod policy;
pub mod presets;
pub mod prob;
pub mod schedule;
pub mod sweep;

pub use experiment::{
    run_experiment, run_experiment_on, AlgorithmSpec, DataSpec, EnergySpec, ExperimentConfig,
    ExperimentResult, TopologySpec,
};
pub use policy::{ConstrainedPolicy, DPsgdPolicy, GreedyPolicy, RoundPolicy, SkipTrainPolicy};
pub use presets::{cifar_config, femnist_config, tuned_schedule, with_algorithm, Scale};
pub use schedule::Schedule;
pub use sweep::{grid_search, SweepResult};
