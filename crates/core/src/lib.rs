//! SkipTrain: energy-aware decentralized learning with intermittent model
//! training.
//!
//! This crate implements the paper's contribution on top of the
//! `skiptrain-engine` substrate:
//!
//! * [`schedule`] — the coordinated Γ_train/Γ_sync round schedule (§3.1,
//!   Eq. 4),
//! * [`prob`] — energy-budget training probabilities (§3.2, Eq. 5),
//! * [`policy`] — the algorithms as round policies: D-PSGD, SkipTrain,
//!   SkipTrain-constrained, Greedy,
//! * [`builder`] — fluent, validating experiment construction
//!   ([`Experiment::builder`]) with typed [`ConfigError`]s,
//! * [`runner`] — the observer-driven round loop
//!   ([`RoundObserver`](skiptrain_engine::RoundObserver) hooks for curve
//!   recording, energy streaming, early stopping),
//! * [`campaign`] — [`Campaign`], the parallel multi-run executor that
//!   deduplicates data bundles and returns results in input order, with
//!   fault-tolerant execution ([`Campaign::run_resilient`]: per-cell
//!   failure isolation, seeded retry, checkpoint/resume),
//! * [`journal`] — the crash-safe JSONL checkpoint journal behind
//!   [`Campaign::with_checkpoint`],
//! * [`sweep`] — the §4.3 (Γ_train, Γ_sync) grid search, run as a parallel
//!   campaign,
//! * [`presets`] — Table-1 configurations at paper/medium/quick scales.
//!
//! # Quick example
//!
//! Build one validated experiment and a small campaign on top of a preset:
//!
//! ```
//! use skiptrain_core::presets::{cifar_config, with_algorithm, Scale};
//! use skiptrain_core::{AlgorithmSpec, Campaign, Experiment, Schedule};
//!
//! // Fluent single-experiment construction with typed validation.
//! let experiment = Experiment::builder()
//!     .name("demo")
//!     .nodes(16)
//!     .rounds(8)
//!     .algorithm(AlgorithmSpec::SkipTrain(Schedule::new(4, 4)))
//!     .build()
//!     .expect("valid config");
//! assert_eq!(experiment.config().algorithm.name(), "skiptrain");
//!
//! // A two-run campaign comparing algorithms on one shared dataset.
//! let base = cifar_config(Scale::Quick, 42);
//! let campaign = Campaign::new()
//!     .push(base.clone())
//!     .push(with_algorithm(base, AlgorithmSpec::SkipTrain(Schedule::new(4, 4))));
//! assert_eq!(campaign.len(), 2);
//! // campaign.run() executes both in parallel over one data bundle.
//! ```
//!
//! Invalid configurations fail at build time with a typed error instead of
//! panicking mid-run:
//!
//! ```
//! use skiptrain_core::{AlgorithmSpec, ConfigError, Experiment};
//!
//! let err = Experiment::builder()
//!     .algorithm(AlgorithmSpec::Greedy) // needs a battery budget
//!     .build()
//!     .unwrap_err();
//! assert!(matches!(err, ConfigError::MissingBatteryFraction { .. }));
//! ```

pub mod asyncgossip;
pub mod builder;
pub mod campaign;
pub mod error;
pub mod experiment;
pub mod fairness;
pub mod journal;
pub mod policy;
pub mod presets;
pub mod prob;
pub mod runner;
pub mod schedule;
pub mod sweep;

pub use builder::{Experiment, ExperimentBuilder};
pub use campaign::{
    retry_seed, Campaign, CampaignReport, CampaignRunError, CellFailure, FailureCause, RetrySpec,
};
pub use error::{CampaignError, ConfigError, RunError};
#[allow(deprecated)]
pub use experiment::{run_experiment, run_experiment_on};
pub use experiment::{
    AlgorithmSpec, BatteryCapacitySpec, BatterySpec, BatterySummary, ChurnSpec, CompressionSpec,
    DataBundle, DataSpec, EnergySpec, EventSummary, ExperimentConfig, ExperimentResult, TimingSpec,
    TopologyScheduleSpec, TopologySpec,
};
pub use journal::{config_digest, JournalError};
pub use policy::{ConstrainedPolicy, DPsgdPolicy, GreedyPolicy, RoundPolicy, SkipTrainPolicy};
pub use presets::{cifar_config, femnist_config, tuned_schedule, with_algorithm, Scale};
pub use runner::run_with_observers;
pub use schedule::Schedule;
pub use skiptrain_engine::{CompressionPolicy, EnergyTier, LinkCodec, ModelCodec, TransportKind};
pub use sweep::{grid_campaign, grid_search, SweepResult};
