//! Typed experiment-configuration errors.
//!
//! The legacy API validated configurations with scattered `assert!`s that
//! fired mid-run, after minutes of dataset synthesis. [`ConfigError`]
//! centralizes every invariant so builders and campaigns reject invalid
//! configurations *before* any work starts, with a diagnosable reason.

use serde::{Deserialize, Serialize};

/// Why an [`ExperimentConfig`](crate::ExperimentConfig) is invalid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConfigError {
    /// `nodes == 0`.
    ZeroNodes,
    /// `rounds == 0`.
    ZeroRounds,
    /// `batch_size == 0`.
    ZeroBatchSize,
    /// `local_steps == 0`.
    ZeroLocalSteps,
    /// Learning rate is not a positive finite number.
    NonPositiveLearningRate,
    /// A budget-constrained algorithm was configured without
    /// `EnergySpec::battery_fraction`.
    MissingBatteryFraction {
        /// The algorithm that requires a battery budget.
        algorithm: String,
    },
    /// The battery fraction is outside `(0, 1]`.
    InvalidBatteryFraction,
    /// A battery spec's capacity (uniform Wh, or fleet fraction) is not a
    /// positive finite number.
    NonPositiveBatteryCapacity,
    /// A battery spec's initial charge fraction is outside `[0, 1]` (or
    /// not finite).
    InvalidBatteryInitialFraction,
    /// A battery policy fraction (threshold, or duty-cycle target) is
    /// outside `(0, 1]` (or not finite).
    InvalidBatteryPolicyFraction,
    /// A hysteresis battery policy's bands are inverted or degenerate
    /// (`suspend_fraction >= resume_fraction`), so the latch could never
    /// open — or a band is outside `[0, 1]`.
    InvertedHysteresisBands,
    /// A harvest profile is malformed: negative or non-finite watts, a
    /// non-positive diurnal period, or an empty piecewise trace.
    InvalidHarvestProfile,
    /// The harvest phase jitter is outside `[0, 1]` (or not finite).
    InvalidHarvestJitter,
    /// A regular topology's degree does not fit the node count
    /// (`degree >= nodes`).
    DegreeTooLarge {
        /// Configured degree.
        degree: usize,
        /// Configured node count.
        nodes: usize,
    },
    /// A `d`-regular graph needs `nodes * degree` even.
    OddDegreeProduct {
        /// Configured degree.
        degree: usize,
        /// Configured node count.
        nodes: usize,
    },
    /// A top-k compression codec with `k == 0` would transmit no
    /// parameters at all.
    ZeroTopK,
    /// An edge-dropout topology schedule's drop probability is outside
    /// `[0, 1)` (or not finite) — `p = 1` would disconnect every round.
    InvalidEdgeDropout,
    /// A per-byte radio energy override that is zero, negative, or
    /// non-finite cannot price any message.
    InvalidCommJoulesPerByte,
    /// A cycling topology schedule with no graphs has no round topology
    /// to offer.
    EmptyTopologyCycle,
    /// A cycling topology schedule contains a graph whose node count
    /// differs from the experiment's.
    TopologyCycleSizeMismatch {
        /// Index of the offending graph in the cycle.
        index: usize,
        /// Node count the experiment requires.
        expected: usize,
        /// Node count the graph has.
        got: usize,
    },
    /// The error-feedback replica cap is zero (no link could ever hold a
    /// replica).
    ZeroReplicaCap,
    /// The error-feedback residual retention factor is outside `(0, 1]`
    /// (or not finite).
    InvalidFeedbackBeta,
    /// A per-node compute profile's factor list does not match the node
    /// count.
    ComputeProfileArityMismatch {
        /// Node count the experiment requires.
        expected: usize,
        /// Factor count the profile provides.
        got: usize,
    },
    /// A compute-profile value is invalid: a non-finite or non-positive
    /// per-node speed factor, a straggler probability outside `[0, 1]`,
    /// or a straggler slowdown factor below 1.
    InvalidComputeProfile {
        /// The offending value.
        value: f64,
    },
    /// A seeded latency model's jitter is outside `[0, 1]` (or not
    /// finite).
    InvalidLatencyJitter {
        /// The offending jitter.
        value: f64,
    },
    /// A churn probability (leave or rejoin) is outside `[0, 1]` (or not
    /// finite).
    InvalidChurnRate {
        /// The offending probability.
        value: f64,
    },
    /// A battery spec's per-node policy list does not match the node
    /// count.
    BatteryPolicyArityMismatch {
        /// Node count the experiment requires.
        expected: usize,
        /// Policy count the spec provides.
        got: usize,
    },
    /// The dataset spec would generate no training samples per node.
    EmptyNodeData,
    /// The dataset spec would generate no evaluation samples.
    EmptyEvalData,
    /// A pre-built data bundle does not match the configuration.
    ArityMismatch {
        /// What disagreed (e.g. `"node datasets"`).
        what: String,
        /// Count the config requires.
        expected: usize,
        /// Count the bundle provides.
        got: usize,
    },
    /// A serialized transport's loss probabilities are invalid: each of
    /// `drop_prob` and `corrupt_prob` must lie in `[0, 1)` (and be
    /// finite), and their sum must stay below 1 so some messages can
    /// still arrive.
    InvalidTransportLoss {
        /// Configured per-message drop probability.
        drop_prob: f64,
        /// Configured per-message corruption probability.
        corrupt_prob: f64,
    },
    /// The consensus stepsize γ is outside `(0, 1]` (or not finite).
    InvalidConsensusGamma {
        /// The offending stepsize.
        value: f64,
    },
    /// An energy-adaptive tier table is malformed: empty, a threshold
    /// outside `[0, 1]` (or not finite), or thresholds not strictly
    /// descending (the resolver walks the table top-down).
    InvalidEnergyTiers,
    /// A rarity-adaptive policy's top-k bounds are invalid: `base_k`
    /// must be at least 1 and `max_k` at least `base_k`.
    InvalidRarityBounds {
        /// Configured budget for an always-on link.
        base_k: usize,
        /// Configured budget ceiling.
        max_k: usize,
    },
    /// A per-link codec table lists the same directed link twice.
    DuplicateLinkCodec {
        /// Sender node id of the duplicated link.
        src: u32,
        /// Receiver node id of the duplicated link.
        dst: u32,
    },
    /// A per-link codec table entry names an impossible directed link:
    /// an endpoint at or beyond the node count, or a self-loop.
    LinkCodecOutOfRange {
        /// Sender node id of the offending entry.
        src: u32,
        /// Receiver node id of the offending entry.
        dst: u32,
        /// Node count the experiment requires.
        nodes: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroNodes => write!(f, "experiment needs at least one node"),
            ConfigError::ZeroRounds => write!(f, "experiment needs at least one round"),
            ConfigError::ZeroBatchSize => write!(f, "mini-batch size must be positive"),
            ConfigError::ZeroLocalSteps => {
                write!(f, "local SGD steps per training round must be positive")
            }
            ConfigError::NonPositiveLearningRate => {
                write!(f, "learning rate must be a positive finite number")
            }
            ConfigError::MissingBatteryFraction { algorithm } => write!(
                f,
                "algorithm `{algorithm}` requires a battery fraction \
                 (set `EnergySpec::battery_fraction`)"
            ),
            ConfigError::InvalidBatteryFraction => {
                write!(f, "battery fraction must lie in (0, 1]")
            }
            ConfigError::NonPositiveBatteryCapacity => {
                write!(f, "battery capacity must be a positive finite number")
            }
            ConfigError::InvalidBatteryInitialFraction => {
                write!(f, "battery initial charge fraction must lie in [0, 1]")
            }
            ConfigError::InvalidBatteryPolicyFraction => write!(
                f,
                "battery policy fraction (threshold / duty-cycle target) must lie in (0, 1]"
            ),
            ConfigError::InvertedHysteresisBands => write!(
                f,
                "hysteresis bands must satisfy 0 <= suspend < resume <= 1"
            ),
            ConfigError::InvalidHarvestProfile => write!(
                f,
                "harvest profile needs finite non-negative watts, a positive \
                 diurnal period, and a non-empty piecewise trace"
            ),
            ConfigError::InvalidHarvestJitter => {
                write!(f, "harvest phase jitter must lie in [0, 1]")
            }
            ConfigError::DegreeTooLarge { degree, nodes } => write!(
                f,
                "a {degree}-regular topology needs more than {degree} nodes, got {nodes}"
            ),
            ConfigError::OddDegreeProduct { degree, nodes } => write!(
                f,
                "a {degree}-regular graph on {nodes} nodes does not exist \
                 (nodes x degree must be even)"
            ),
            ConfigError::ZeroTopK => {
                write!(f, "top-k compression needs k >= 1 kept parameters")
            }
            ConfigError::InvalidEdgeDropout => {
                write!(f, "edge-dropout probability must lie in [0, 1)")
            }
            ConfigError::InvalidCommJoulesPerByte => {
                write!(f, "comm energy override must be a finite positive J/byte")
            }
            ConfigError::EmptyTopologyCycle => {
                write!(f, "a cycling topology schedule needs at least one graph")
            }
            ConfigError::TopologyCycleSizeMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "cycle graph #{index} has {got} nodes, experiment has {expected}"
            ),
            ConfigError::ZeroReplicaCap => {
                write!(f, "error-feedback replica cap must be at least 1")
            }
            ConfigError::InvalidFeedbackBeta => {
                write!(f, "compression feedback beta must lie in (0, 1]")
            }
            ConfigError::ComputeProfileArityMismatch { expected, got } => write!(
                f,
                "per-node compute profile has {got} speed factors, experiment has {expected} nodes"
            ),
            ConfigError::InvalidComputeProfile { value } => write!(
                f,
                "compute profile value {value} is invalid (speed factors must be \
                 positive and finite, straggler probability in [0, 1], slowdown >= 1)"
            ),
            ConfigError::InvalidLatencyJitter { value } => {
                write!(f, "latency jitter {value} must lie in [0, 1]")
            }
            ConfigError::InvalidChurnRate { value } => {
                write!(f, "churn probability {value} must lie in [0, 1]")
            }
            ConfigError::BatteryPolicyArityMismatch { expected, got } => write!(
                f,
                "per-node battery policy list has {got} policies, experiment has {expected} nodes"
            ),
            ConfigError::EmptyNodeData => {
                write!(f, "dataset spec generates zero training samples per node")
            }
            ConfigError::EmptyEvalData => {
                write!(f, "dataset spec generates zero evaluation samples")
            }
            ConfigError::ArityMismatch {
                what,
                expected,
                got,
            } => {
                write!(
                    f,
                    "data bundle mismatch: expected {expected} {what}, got {got}"
                )
            }
            ConfigError::InvalidTransportLoss {
                drop_prob,
                corrupt_prob,
            } => write!(
                f,
                "transport loss probabilities are invalid: drop {drop_prob} and \
                 corruption {corrupt_prob} must each lie in [0, 1) and sum below 1"
            ),
            ConfigError::InvalidConsensusGamma { value } => {
                write!(f, "consensus stepsize gamma {value} must lie in (0, 1]")
            }
            ConfigError::InvalidEnergyTiers => write!(
                f,
                "energy-adaptive tier table needs at least one tier with finite \
                 thresholds in [0, 1], sorted strictly descending"
            ),
            ConfigError::InvalidRarityBounds { base_k, max_k } => write!(
                f,
                "rarity-adaptive top-k bounds are invalid: base_k {base_k} must be \
                 at least 1 and max_k {max_k} at least base_k"
            ),
            ConfigError::DuplicateLinkCodec { src, dst } => write!(
                f,
                "per-link codec table lists directed link {src} -> {dst} twice"
            ),
            ConfigError::LinkCodecOutOfRange { src, dst, nodes } => write!(
                f,
                "per-link codec table entry {src} -> {dst} is impossible on \
                 {nodes} nodes (endpoints must be distinct and below the node count)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A campaign-level failure: which run was invalid and why.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignError {
    /// Index of the offending run in the campaign's input order.
    pub run: usize,
    /// Name of the offending configuration.
    pub name: String,
    /// The underlying configuration error.
    pub source: ConfigError,
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign run #{} (`{}`): {}",
            self.run, self.name, self.source
        )
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A round-execution failure surfaced from the engine mid-run: which
/// round broke and why.
///
/// The round executors ([`run_with_observers`](crate::run_with_observers)
/// and the campaign cells built on it) return this instead of panicking,
/// so a resilient campaign can record the cell as a typed
/// [`CellFailure`](crate::CellFailure) and keep going. The legacy
/// infallible entry points (`ExperimentConfig::run`) still panic, with
/// this error's `Display` as the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Round index (0-based) at which execution failed.
    pub round: usize,
    /// The underlying engine error.
    pub source: skiptrain_engine::EngineError,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "round {}: {}", self.round, self.source)
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConfigError::MissingBatteryFraction {
            algorithm: "greedy".into(),
        };
        assert!(e.to_string().contains("battery fraction"));
        assert!(e.to_string().contains("greedy"));
        let c = CampaignError {
            run: 3,
            name: "x".into(),
            source: ConfigError::ZeroRounds,
        };
        assert!(c.to_string().contains("#3"));
        assert!(c.to_string().contains("round"));
    }

    #[test]
    fn battery_errors_display_and_serialize() {
        for e in [
            ConfigError::NonPositiveBatteryCapacity,
            ConfigError::InvalidBatteryInitialFraction,
            ConfigError::InvalidBatteryPolicyFraction,
            ConfigError::InvertedHysteresisBands,
            ConfigError::InvalidHarvestProfile,
            ConfigError::InvalidHarvestJitter,
        ] {
            assert!(!e.to_string().is_empty());
            let json = serde_json::to_string(&e).unwrap();
            let back: ConfigError = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
        assert!(ConfigError::InvertedHysteresisBands
            .to_string()
            .contains("suspend < resume"));
    }

    #[test]
    fn event_errors_display_and_serialize() {
        for e in [
            ConfigError::ComputeProfileArityMismatch {
                expected: 16,
                got: 4,
            },
            ConfigError::InvalidComputeProfile { value: -0.5 },
            ConfigError::InvalidLatencyJitter { value: 1.5 },
            ConfigError::InvalidChurnRate { value: 2.0 },
            ConfigError::BatteryPolicyArityMismatch {
                expected: 16,
                got: 3,
            },
        ] {
            assert!(!e.to_string().is_empty());
            let json = serde_json::to_string(&e).unwrap();
            let back: ConfigError = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
        assert!(ConfigError::InvalidLatencyJitter { value: 1.5 }
            .to_string()
            .contains("1.5"));
    }

    #[test]
    fn compression_errors_display_and_serialize() {
        for e in [
            ConfigError::InvalidConsensusGamma { value: 0.0 },
            ConfigError::InvalidEnergyTiers,
            ConfigError::InvalidRarityBounds {
                base_k: 0,
                max_k: 64,
            },
            ConfigError::DuplicateLinkCodec { src: 2, dst: 5 },
            ConfigError::LinkCodecOutOfRange {
                src: 9,
                dst: 9,
                nodes: 8,
            },
        ] {
            assert!(!e.to_string().is_empty());
            let json = serde_json::to_string(&e).unwrap();
            let back: ConfigError = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
        assert!(ConfigError::DuplicateLinkCodec { src: 2, dst: 5 }
            .to_string()
            .contains("2 -> 5"));
    }

    #[test]
    fn errors_serialize() {
        let e = ConfigError::DegreeTooLarge {
            degree: 8,
            nodes: 4,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: ConfigError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
