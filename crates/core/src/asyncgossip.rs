//! Asynchronous pairwise-gossip SkipTrain — the extension the paper leaves
//! as future work (§5.3).
//!
//! The synchronous algorithms require every node to act in lockstep each
//! round, which §5.3 calls "challenging to implement at scale". The
//! asynchronous variant drops the global barrier semantics:
//!
//! * each tick, every node independently decides to train with probability
//!   `q` (its energy knob — `q = 0.5` spends the same expected training
//!   energy as SkipTrain with Γ_train = Γ_sync);
//! * instead of the all-neighbor exchange, a random maximal matching of the
//!   topology "fires": matched pairs average their models (`W = ½` each),
//!   unmatched nodes keep theirs.
//!
//! Pairwise averaging with doubly stochastic pair matrices preserves the
//! network-average model and contracts disagreement in expectation, so
//! convergence follows the same intuition as the synchronous analysis —
//! just with slower mixing per tick (one partner instead of d neighbors).

use crate::experiment::{DataBundle, ExperimentConfig, ExperimentResult};
use crate::schedule::Schedule;
use rand::RngExt;
use skiptrain_engine::{RoundAction, RoundSemantics};
use skiptrain_linalg::rng::stream_rng;

/// Schedule-id slot for the async-gossip matching stream in the chained
/// [`round_seed`](skiptrain_topology::schedule::round_seed) derivation
/// (distinct from every [`TopologySchedule`] variant id, so gossip
/// matchings and a configured topology schedule never share a stream).
///
/// [`TopologySchedule`]: skiptrain_topology::TopologySchedule
pub(crate) const GOSSIP_MATCHING_STREAM: u64 = 16;

/// Runs the asynchronous pairwise-gossip variant on a pre-built data bundle.
///
/// `activation_prob` is the per-node, per-tick training probability `q`.
/// Communication happens over random maximal matchings of the configured
/// topology; communication energy is accounted per actual matched pair —
/// the engine charges one tx/rx event pair per firing edge of the round's
/// pairwise mixing matrix (`Simulation::run_round_with_mixing` derives the
/// effective edge set from the override, not the static topology), so a
/// tick that matches `m` pairs costs exactly `2m` messages. Earlier
/// versions charged the full static degree (`n·d` messages) every tick,
/// overstating async-gossip comm energy by orders of magnitude; the engine
/// pins a regression test against that.
pub fn run_async_gossip(
    cfg: &ExperimentConfig,
    data: &DataBundle,
    activation_prob: f64,
) -> ExperimentResult {
    assert!(
        (0.0..=1.0).contains(&activation_prob),
        "activation probability in [0,1]"
    );
    let seed = cfg.seed;
    run_gossip_schedule(
        cfg,
        data,
        format!("{}/async-q{activation_prob}", cfg.name),
        &mut move |t, actions| {
            // independent per-node activation draws
            for (i, slot) in actions.iter_mut().enumerate() {
                let mut rng = stream_rng(seed ^ 0xA57C, (t as u64) << 24 | i as u64);
                *slot = if rng.random::<f64>() < activation_prob {
                    RoundAction::Train
                } else {
                    RoundAction::SyncOnly
                };
            }
        },
    )
}

/// Runs asynchronous pairwise gossip with *coordinated* intermittent
/// training: every node trains in tick `t` iff
/// [`Schedule::is_train_round`] says so (the SkipTrain schedule without
/// the synchronous all-neighbor barrier — gossip still happens over
/// random maximal matchings). [`Schedule::with_offset`] shifts the
/// activation *phase*: tick `t` behaves like tick `t + offset` of the
/// base schedule, and the first partial period executes shifted rather
/// than being dropped — pinned by a test counting training events against
/// [`Schedule::count_train_rounds`] and by a property test in the
/// schedule module.
pub fn run_async_gossip_scheduled(
    cfg: &ExperimentConfig,
    data: &DataBundle,
    schedule: Schedule,
) -> ExperimentResult {
    run_gossip_schedule(
        cfg,
        data,
        format!(
            "{}/async-sched({},{})+{}",
            cfg.name, schedule.gamma_train, schedule.gamma_sync, schedule.phase_offset
        ),
        &mut move |t, actions| {
            let action = if schedule.is_train_round(t) {
                RoundAction::Train
            } else {
                RoundAction::SyncOnly
            };
            actions.fill(action);
        },
    )
}

/// The shared async-gossip entry: `decide` fills each tick's per-node
/// actions (i.i.d. draws or a coordinated schedule); everything else —
/// matchings, pairwise mixing, per-pair energy accounting, evaluation
/// cadence — is the *same* event-core loop the synchronous runner uses
/// ([`crate::runner::execute_on_events`]), instantiated with deadline
/// round semantics: a message trailing the tick's slowest completion by
/// more than [`GOSSIP_SLACK_TICKS`](crate::runner::GOSSIP_SLACK_TICKS)
/// is dropped as late (charged at the sender, folded to self-weight at
/// the receiver). Battery gating applies to async ticks exactly as to
/// synchronous rounds, and matchings compose with a configured topology
/// schedule by pairing over the scheduled round graph.
fn run_gossip_schedule(
    cfg: &ExperimentConfig,
    data: &DataBundle,
    name: String,
    decide: &mut dyn FnMut(usize, &mut [RoundAction]),
) -> ExperimentResult {
    crate::runner::execute_on_events(
        cfg,
        data,
        &mut [],
        name,
        "async-gossip".to_string(),
        RoundSemantics::Deadline {
            slack_ticks: crate::runner::GOSSIP_SLACK_TICKS,
        },
        true,
        decide,
    )
    // lint:allow(no_panic, "legacy infallible entry point; campaign cells use the typed-error executor")
    .unwrap_or_else(|e| panic!("async gossip {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{cifar_config, Scale};

    fn tiny() -> ExperimentConfig {
        let mut cfg = cifar_config(Scale::Quick, 5);
        cfg.nodes = 12;
        cfg.rounds = 24;
        cfg.eval_every = 12;
        cfg.eval_max_samples = 200;
        cfg.local_steps = 4;
        cfg
    }

    #[test]
    fn async_gossip_learns() {
        let cfg = tiny();
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let result = run_async_gossip(&cfg, &data, 0.5);
        assert!(
            result.final_test.mean_accuracy > 0.3,
            "async gossip failed to learn: {}",
            result.final_test.mean_accuracy
        );
    }

    #[test]
    fn activation_prob_controls_training_energy() {
        let cfg = tiny();
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let half = run_async_gossip(&cfg, &data, 0.5);
        let quarter = run_async_gossip(&cfg, &data, 0.25);
        let expected_half = 0.5 * (cfg.nodes * cfg.rounds) as f64;
        assert!(
            (half.node_train_events as f64 - expected_half).abs() < expected_half * 0.35,
            "q=0.5 trained {} of expected ~{expected_half}",
            half.node_train_events
        );
        assert!(quarter.node_train_events < half.node_train_events);
        assert!(quarter.total_training_wh < half.total_training_wh);
    }

    #[test]
    fn zero_activation_never_trains() {
        let cfg = tiny();
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let result = run_async_gossip(&cfg, &data, 0.0);
        assert_eq!(result.node_train_events, 0);
        assert_eq!(result.total_training_wh, 0.0);
    }

    #[test]
    fn comm_energy_charges_matched_pairs_not_static_degree() {
        // The over-charging bug: every tick used to cost the full static
        // 6-regular degree (n·6 messages). A maximal matching fires at
        // most n/2 pairs = n messages per tick, so correct accounting is
        // bounded by 1/6 of the legacy figure.
        let cfg = tiny();
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let r = run_async_gossip(&cfg, &data, 0.5);
        let comm = skiptrain_energy::comm::CommEnergyModel::paper_fit();
        let bytes =
            skiptrain_engine::ModelCodec::DenseF32.message_bytes(cfg.energy.workload.model_params);
        let legacy_degree_charge = (cfg.nodes * 6 * cfg.rounds) as f64
            * (comm.tx_energy_wh(bytes) + comm.rx_energy_wh(bytes));
        assert!(r.total_comm_wh > 0.0, "matched pairs must cost something");
        assert!(
            r.total_comm_wh <= legacy_degree_charge / 6.0 + 1e-12,
            "comm {} Wh exceeds the matching bound {} Wh",
            r.total_comm_wh,
            legacy_degree_charge / 6.0
        );
    }

    #[test]
    fn scheduled_offsets_shift_activation_phase_not_drop_partial_periods() {
        // Issue-4 satellite: the scheduled async variant must execute
        // exactly nodes · count_train_rounds training events at *every*
        // phase offset — a bug that dropped the first partial period
        // (e.g. skipping until the first full period boundary) would
        // undercount at nonzero offsets. rounds = 22 is deliberately not
        // a multiple of the (4, 4) period so partial periods matter.
        let mut cfg = tiny();
        cfg.rounds = 22;
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        for offset in [0usize, 1, 4, 7] {
            let schedule = Schedule::new(4, 4).with_offset(offset);
            let r = run_async_gossip_scheduled(&cfg, &data, schedule);
            let expected = cfg.nodes as u64 * schedule.count_train_rounds(cfg.rounds) as u64;
            assert_eq!(
                r.node_train_events, expected,
                "offset {offset}: scheduled activations must match the \
                 shifted schedule exactly"
            );
        }
        // sync-first (offset = Γ_train) and train-first disagree on the
        // partial window, proving the offset actually shifts the phase
        let train_first = run_async_gossip_scheduled(&cfg, &data, Schedule::new(4, 4));
        let sync_first =
            run_async_gossip_scheduled(&cfg, &data, Schedule::new(4, 4).with_offset(4));
        assert_ne!(train_first.node_train_events, sync_first.node_train_events);
    }

    #[test]
    fn async_gossip_composes_with_error_feedback() {
        // Per-round matchings exercise the lazy per-link replica
        // allocation: feedback must stay stable and deterministic when
        // every tick fires a different edge set.
        let mut cfg = tiny();
        cfg.codec = skiptrain_engine::ModelCodec::TopK { k: 256 };
        cfg.feedback_beta = Some(1.0);
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let a = run_async_gossip(&cfg, &data, 0.5);
        assert!(
            a.final_mean_model.iter().all(|v| v.is_finite()),
            "feedback under per-round matchings must stay finite"
        );
        assert!(
            a.final_test.mean_accuracy > 0.25,
            "async gossip with top-k feedback failed to learn: {}",
            a.final_test.mean_accuracy
        );
        let b = run_async_gossip(&cfg, &data, 0.5);
        assert_eq!(
            a.final_test.mean_accuracy.to_bits(),
            b.final_test.mean_accuracy.to_bits()
        );
    }

    #[test]
    fn async_gossip_respects_the_topology_schedule() {
        // Under an aggressive edge-dropout schedule, each tick's matching
        // can only pair nodes over surviving edges, so communication
        // energy must fall strictly below the static-schedule run while
        // the result stays deterministic.
        let cfg = tiny();
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let static_run = run_async_gossip(&cfg, &data, 0.5);

        let mut dropped_cfg = cfg.clone();
        dropped_cfg.topology_schedule = crate::TopologyScheduleSpec::EdgeDropout { p: 0.8 };
        let dropped = run_async_gossip(&dropped_cfg, &data, 0.5);
        assert!(
            dropped.total_comm_wh < static_run.total_comm_wh,
            "dropping 80% of edges must shrink matchings: {} vs {}",
            dropped.total_comm_wh,
            static_run.total_comm_wh
        );
        assert!(dropped.total_comm_wh > 0.0, "some pairs must still fire");
        let again = run_async_gossip(&dropped_cfg, &data, 0.5);
        assert_eq!(
            dropped.final_test.mean_accuracy.to_bits(),
            again.final_test.mean_accuracy.to_bits()
        );
        assert_eq!(
            dropped.total_comm_wh.to_bits(),
            again.total_comm_wh.to_bits()
        );
    }

    #[test]
    fn async_gossip_is_deterministic() {
        let cfg = tiny();
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        let a = run_async_gossip(&cfg, &data, 0.5);
        let b = run_async_gossip(&cfg, &data, 0.5);
        assert_eq!(
            a.final_test.mean_accuracy.to_bits(),
            b.final_test.mean_accuracy.to_bits()
        );
        assert_eq!(a.node_train_events, b.node_train_events);
    }
}
