//! Round policies: who trains when.
//!
//! Algorithm 1 (D-PSGD) and Algorithm 2 (SkipTrain / SkipTrain-constrained)
//! differ *only* in the decision whether a node runs the local update in
//! round `t`; sharing and aggregation always happen. That decision is
//! factored into [`RoundPolicy`] implementations so every algorithm runs on
//! the same engine:
//!
//! | policy                    | trains when |
//! |---------------------------|-------------|
//! | [`DPsgdPolicy`]           | always |
//! | [`SkipTrainPolicy`]       | coordinated Γ-schedule says so |
//! | [`ConstrainedPolicy`]     | schedule ∧ Bernoulli(p_i) ∧ budget left |
//! | [`GreedyPolicy`]          | budget left (then sync-only forever) |

use crate::prob::training_probabilities;
use crate::schedule::Schedule;
use rand::RngExt;
use skiptrain_energy::BudgetTracker;
use skiptrain_engine::RoundAction;
use skiptrain_linalg::rng::stream_rng;

/// Decides, per round, which nodes train and which only synchronize.
pub trait RoundPolicy: Send {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Fills `actions[i]` for every node for round `t` (0-based), updating
    /// any internal budget state.
    fn decide(&mut self, round: usize, actions: &mut [RoundAction]);

    /// Remaining training budget of a node, if this policy tracks budgets.
    fn remaining_budget(&self, _node: usize) -> Option<u32> {
        None
    }
}

/// D-PSGD (Algorithm 1): every node trains every round.
pub struct DPsgdPolicy;

impl RoundPolicy for DPsgdPolicy {
    fn name(&self) -> &'static str {
        "d-psgd"
    }

    fn decide(&mut self, _round: usize, actions: &mut [RoundAction]) {
        actions.fill(RoundAction::Train);
    }
}

/// SkipTrain (§3.1): coordinated training / synchronization batches.
pub struct SkipTrainPolicy {
    schedule: Schedule,
}

impl SkipTrainPolicy {
    /// Creates the policy for a schedule.
    pub fn new(schedule: Schedule) -> Self {
        Self { schedule }
    }

    /// The schedule in force.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }
}

impl RoundPolicy for SkipTrainPolicy {
    fn name(&self) -> &'static str {
        "skiptrain"
    }

    fn decide(&mut self, round: usize, actions: &mut [RoundAction]) {
        let action = if self.schedule.is_train_round(round) {
            RoundAction::Train
        } else {
            RoundAction::SyncOnly
        };
        actions.fill(action);
    }
}

/// SkipTrain-constrained (§3.2, Algorithm 2): coordinated schedule plus
/// per-node probabilistic participation under an energy budget.
pub struct ConstrainedPolicy {
    schedule: Schedule,
    probabilities: Vec<f64>,
    budget: BudgetTracker,
    seed: u64,
}

impl ConstrainedPolicy {
    /// Creates the policy. `budgets[i]` is node i's training-round budget
    /// τ_i; probabilities follow Eq. 5 with `T_train` from Eq. 4.
    ///
    /// The tracker counts unit-less rounds; prefer
    /// [`ConstrainedPolicy::with_round_costs`] so the consumed budget is
    /// also reported in watt-hours, consistent with the energy ledger.
    pub fn new(schedule: Schedule, budgets: Vec<u32>, total_rounds: usize, seed: u64) -> Self {
        let probabilities = training_probabilities(&budgets, &schedule, total_rounds);
        Self {
            schedule,
            probabilities,
            budget: BudgetTracker::new(budgets),
            seed,
        }
    }

    /// Like [`ConstrainedPolicy::new`], but bridges the integer budgets to
    /// watt-hours: `round_cost_wh[i]` is node i's per-round training
    /// energy, so [`ConstrainedPolicy::budget`] reports Wh views
    /// (`remaining_wh`, `consumed_wh`) consistent with the energy ledger.
    /// Decisions are identical to `new` — the u32 counters stay
    /// authoritative.
    pub fn with_round_costs(
        schedule: Schedule,
        budgets: Vec<u32>,
        round_cost_wh: Vec<f64>,
        total_rounds: usize,
        seed: u64,
    ) -> Self {
        let probabilities = training_probabilities(&budgets, &schedule, total_rounds);
        Self {
            schedule,
            probabilities,
            budget: BudgetTracker::with_round_costs(budgets, round_cost_wh),
            seed,
        }
    }

    /// The Eq. 5 probability of a node.
    pub fn probability(&self, node: usize) -> f64 {
        self.probabilities[node]
    }

    /// The budget tracker (read access).
    pub fn budget(&self) -> &BudgetTracker {
        &self.budget
    }
}

impl RoundPolicy for ConstrainedPolicy {
    fn name(&self) -> &'static str {
        "skiptrain-constrained"
    }

    fn decide(&mut self, round: usize, actions: &mut [RoundAction]) {
        if !self.schedule.is_train_round(round) {
            actions.fill(RoundAction::SyncOnly);
            return;
        }
        // One independent Bernoulli draw per (node, round), on a stream that
        // depends on both so outcomes don't correlate across rounds.
        for (i, slot) in actions.iter_mut().enumerate() {
            let can = self.budget.can_train(i);
            let draw = if can {
                let mut rng = stream_rng(self.seed ^ 0xBE7, (round as u64) << 24 | i as u64);
                rng.random::<f64>() <= self.probabilities[i]
            } else {
                false
            };
            *slot = if can && draw && self.budget.try_consume(i) {
                RoundAction::Train
            } else {
                RoundAction::SyncOnly
            };
        }
    }

    fn remaining_budget(&self, node: usize) -> Option<u32> {
        Some(self.budget.remaining(node))
    }
}

/// The Greedy baseline (§3.2): each node trains every round until its
/// budget is exhausted, then synchronizes only.
pub struct GreedyPolicy {
    budget: BudgetTracker,
}

impl GreedyPolicy {
    /// Creates the policy from per-node budgets (unit-less round counts;
    /// prefer [`GreedyPolicy::with_round_costs`] for Wh-consistent
    /// reporting).
    pub fn new(budgets: Vec<u32>) -> Self {
        Self {
            budget: BudgetTracker::new(budgets),
        }
    }

    /// Like [`GreedyPolicy::new`], but bridges the integer budgets to
    /// watt-hours via each node's per-round training cost; decisions are
    /// identical, and [`GreedyPolicy::budget`] gains Wh views consistent
    /// with the energy ledger.
    pub fn with_round_costs(budgets: Vec<u32>, round_cost_wh: Vec<f64>) -> Self {
        Self {
            budget: BudgetTracker::with_round_costs(budgets, round_cost_wh),
        }
    }

    /// The budget tracker (read access).
    pub fn budget(&self) -> &BudgetTracker {
        &self.budget
    }
}

impl RoundPolicy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn decide(&mut self, _round: usize, actions: &mut [RoundAction]) {
        for (i, slot) in actions.iter_mut().enumerate() {
            *slot = if self.budget.try_consume(i) {
                RoundAction::Train
            } else {
                RoundAction::SyncOnly
            };
        }
    }

    fn remaining_budget(&self, node: usize) -> Option<u32> {
        Some(self.budget.remaining(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_trains(actions: &[RoundAction]) -> usize {
        actions.iter().filter(|&&a| a == RoundAction::Train).count()
    }

    #[test]
    fn dpsgd_trains_everyone_always() {
        let mut p = DPsgdPolicy;
        let mut actions = vec![RoundAction::SyncOnly; 5];
        for t in 0..20 {
            p.decide(t, &mut actions);
            assert_eq!(count_trains(&actions), 5);
        }
    }

    #[test]
    fn skiptrain_follows_schedule() {
        let mut p = SkipTrainPolicy::new(Schedule::new(2, 3));
        let mut actions = vec![RoundAction::SyncOnly; 3];
        let mut pattern = String::new();
        for t in 0..10 {
            p.decide(t, &mut actions);
            pattern.push(if actions[0] == RoundAction::Train {
                'T'
            } else {
                'S'
            });
            // coordinated: all nodes identical
            assert!(actions.iter().all(|&a| a == actions[0]));
        }
        assert_eq!(pattern, "TTSSSTTSSS");
    }

    #[test]
    fn constrained_respects_budget_exactly() {
        let mut p = ConstrainedPolicy::new(Schedule::new(1, 0), vec![3, 0, 100], 10, 7);
        let mut actions = vec![RoundAction::SyncOnly; 3];
        let mut trained = [0usize; 3];
        for t in 0..10 {
            p.decide(t, &mut actions);
            for (i, &a) in actions.iter().enumerate() {
                if a == RoundAction::Train {
                    trained[i] += 1;
                }
            }
        }
        assert!(
            trained[0] <= 3,
            "node 0 exceeded its budget: {}",
            trained[0]
        );
        assert_eq!(trained[1], 0, "node 1 has zero budget");
        assert_eq!(p.remaining_budget(1), Some(0));
    }

    #[test]
    fn constrained_with_ample_budget_equals_skiptrain() {
        // §3.2: τ ≥ T_train ⇒ p = 1 ⇒ identical to unconstrained SkipTrain.
        let schedule = Schedule::new(4, 4);
        let mut constrained = ConstrainedPolicy::new(schedule, vec![1000; 4], 1000, 3);
        let mut skiptrain = SkipTrainPolicy::new(schedule);
        let mut a1 = vec![RoundAction::SyncOnly; 4];
        let mut a2 = vec![RoundAction::SyncOnly; 4];
        for t in 0..64 {
            constrained.decide(t, &mut a1);
            skiptrain.decide(t, &mut a2);
            assert_eq!(a1, a2, "round {t} diverged");
        }
    }

    #[test]
    fn constrained_training_rate_tracks_probability() {
        // p = 0.5 (budget 250 of T_train 500); over many rounds the
        // empirical training rate must be close to 0.5.
        let mut p = ConstrainedPolicy::new(Schedule::new(1, 1), vec![250], 1000, 11);
        assert!((p.probability(0) - 0.5).abs() < 1e-9);
        let mut actions = vec![RoundAction::SyncOnly; 1];
        let mut trains = 0usize;
        let mut opportunities = 0usize;
        for t in 0..500 {
            p.decide(t, &mut actions);
            if Schedule::new(1, 1).is_train_round(t) {
                opportunities += 1;
                if actions[0] == RoundAction::Train {
                    trains += 1;
                }
            }
        }
        let rate = trains as f64 / opportunities as f64;
        assert!(
            (rate - 0.5).abs() < 0.1,
            "empirical rate {rate} far from 0.5"
        );
    }

    #[test]
    fn greedy_trains_then_stops() {
        let mut p = GreedyPolicy::new(vec![2, 4]);
        let mut actions = vec![RoundAction::SyncOnly; 2];
        let mut history = Vec::new();
        for t in 0..6 {
            p.decide(t, &mut actions);
            history.push(actions.clone());
        }
        // node 0: T T S S S S — a prefix of trains, then sync forever
        for (t, h) in history.iter().enumerate() {
            assert_eq!(h[0] == RoundAction::Train, t < 2, "node 0 at round {t}");
            assert_eq!(h[1] == RoundAction::Train, t < 4, "node 1 at round {t}");
        }
    }

    #[test]
    fn cost_carrying_policies_decide_identically_and_report_wh() {
        // the Wh bridge is bookkeeping only: decisions must be bit-equal
        let budgets = vec![3u32, 10, 0];
        let costs = vec![0.5f64, 0.25, 1.0];
        let mut plain = GreedyPolicy::new(budgets.clone());
        let mut costed = GreedyPolicy::with_round_costs(budgets, costs);
        let mut a1 = vec![RoundAction::SyncOnly; 3];
        let mut a2 = vec![RoundAction::SyncOnly; 3];
        for t in 0..6 {
            plain.decide(t, &mut a1);
            costed.decide(t, &mut a2);
            assert_eq!(a1, a2, "round {t} diverged");
        }
        assert!(plain.budget().total_consumed_wh().is_none());
        let wh = costed.budget().total_consumed_wh().unwrap();
        assert!(
            (wh - (3.0 * 0.5 + 6.0 * 0.25)).abs() < 1e-12,
            "greedy spent {wh} Wh"
        );

        let schedule = Schedule::new(1, 0);
        let mut c_plain = ConstrainedPolicy::new(schedule, vec![4, 4], 8, 11);
        let mut c_costed =
            ConstrainedPolicy::with_round_costs(schedule, vec![4, 4], vec![0.1, 0.2], 8, 11);
        let mut b1 = vec![RoundAction::SyncOnly; 2];
        let mut b2 = vec![RoundAction::SyncOnly; 2];
        for t in 0..8 {
            c_plain.decide(t, &mut b1);
            c_costed.decide(t, &mut b2);
            assert_eq!(b1, b2, "round {t} diverged");
        }
        assert!(c_plain.budget().total_consumed_wh().is_none());
        assert!(c_costed.budget().has_wh_bridge());
        for node in 0..2 {
            let by_count = c_costed.budget().consumed(node) as f64
                * c_costed.budget().round_cost_wh(node).unwrap();
            assert!((c_costed.budget().consumed_wh(node).unwrap() - by_count).abs() < 1e-12);
        }
    }

    #[test]
    fn policies_are_deterministic() {
        let run = |seed: u64| {
            let mut p = ConstrainedPolicy::new(Schedule::new(2, 2), vec![10, 20, 5], 100, seed);
            let mut actions = vec![RoundAction::SyncOnly; 3];
            let mut log = Vec::new();
            for t in 0..40 {
                p.decide(t, &mut actions);
                log.push(actions.clone());
            }
            log
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
