//! Experiment presets at three scales.
//!
//! `Paper` mirrors Table 1 (256 nodes, 1000/3000 rounds, batch 32/16, E =
//! 20/7); `Medium` and `Quick` shrink nodes, rounds and data so the full
//! figure suite regenerates on a laptop in minutes while preserving the
//! qualitative shapes. Every bench binary accepts `--scale`.

use crate::experiment::{
    AlgorithmSpec, DataSpec, EnergySpec, ExperimentConfig, TimingSpec, TopologyScheduleSpec,
    TopologySpec,
};
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use skiptrain_engine::{ModelCodec, TransportKind};

/// Simulation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds per experiment — CI and tests.
    Quick,
    /// A couple of minutes per experiment — default for the harness.
    Medium,
    /// The paper's full 256-node configuration — hours.
    Paper,
}

impl Scale {
    /// Parses `quick|medium|paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Node count at this scale (paper: 256).
    pub fn nodes(&self) -> usize {
        match self {
            Scale::Quick => 24,
            Scale::Medium => 64,
            Scale::Paper => 256,
        }
    }
}

/// The CIFAR-10-like experiment at a given scale (defaults: D-PSGD,
/// 6-regular topology).
pub fn cifar_config(scale: Scale, seed: u64) -> ExperimentConfig {
    // The regime below (E = 20 local steps, η = 0.8, a hard 4-mode mixture)
    // places the synthetic task where the paper's phenomenon lives: local
    // training drifts node models toward their 2-label shards faster than a
    // single gossip step can reconcile, so D-PSGD plateaus below the
    // all-reduced model (Figure 1) and SkipTrain's extra mixing wins
    // (Figure 5). η differs from Table 1's 0.1 because the task differs;
    // E, |ξ|, T and the node count follow Table 1 at `Paper` scale.
    let (rounds, dim, hidden, spn, test, batch, steps, eval_cap) = match scale {
        Scale::Quick => (64, 32, 24, 80, 800, 16, 10, 400),
        Scale::Medium => (160, 32, 24, 100, 2400, 16, 20, 1000),
        // Table 1: T = 1000, |ξ| = 32, E = 20; 50 000 CIFAR train samples
        // over 256 nodes ≈ 195 each; 10 000-sample test pool.
        Scale::Paper => (1000, 32, 24, 195, 10_000, 32, 20, 2500),
    };
    ExperimentConfig {
        name: format!("cifar-like/{scale:?}"),
        nodes: scale.nodes(),
        rounds,
        algorithm: AlgorithmSpec::DPsgd,
        topology: TopologySpec::Regular { degree: 6 },
        topology_schedule: TopologyScheduleSpec::default(),
        data: DataSpec::CifarLike {
            feature_dim: dim,
            samples_per_node: spn,
            test_samples: test,
            shards_per_node: 2,
            separation: 0.8,
            noise: 1.1,
            modes_per_class: 4,
        },
        hidden_dim: hidden,
        batch_size: batch,
        local_steps: steps,
        learning_rate: 0.8,
        seed,
        eval_every: 8,
        eval_max_samples: eval_cap,
        energy: EnergySpec::cifar10(),
        transport: TransportKind::Memory,
        codec: ModelCodec::DenseF32,
        feedback_beta: None,
        feedback_replica_cap: None,
        compression: None,
        record_mean_model: false,
        battery: None,
        timing: TimingSpec::default(),
        churn: None,
    }
}

/// The FEMNIST-like experiment at a given scale (defaults: D-PSGD,
/// 6-regular topology).
pub fn femnist_config(scale: Scale, seed: u64) -> ExperimentConfig {
    let (rounds, dim, hidden, spn, test, batch, steps, eval_cap) = match scale {
        Scale::Quick => (64, 32, 24, 90, 800, 16, 7, 400),
        Scale::Medium => (240, 32, 32, 140, 2400, 16, 7, 1000),
        // Table 1: T = 3000, |ξ| = 16, E = 7; FEMNIST top-256 writers have
        // hundreds of samples each; 40 832-sample test pool (2 × 20 416).
        Scale::Paper => (3000, 32, 32, 300, 40_832, 16, 7, 2500),
    };
    ExperimentConfig {
        name: format!("femnist-like/{scale:?}"),
        nodes: scale.nodes(),
        rounds,
        algorithm: AlgorithmSpec::DPsgd,
        topology: TopologySpec::Regular { degree: 6 },
        topology_schedule: TopologyScheduleSpec::default(),
        data: DataSpec::FemnistLike {
            feature_dim: dim,
            samples_per_node: spn,
            test_samples: test,
            style_strength: 0.6,
            separation: 0.95,
            noise: 1.05,
            modes_per_class: 3,
        },
        hidden_dim: hidden,
        batch_size: batch,
        local_steps: steps,
        learning_rate: 0.8,
        seed,
        eval_every: 8,
        eval_max_samples: eval_cap,
        energy: EnergySpec::femnist(),
        transport: TransportKind::Memory,
        codec: ModelCodec::DenseF32,
        feedback_beta: None,
        feedback_replica_cap: None,
        compression: None,
        record_mean_model: false,
        battery: None,
        timing: TimingSpec::default(),
        churn: None,
    }
}

/// Applies an algorithm with the paper's tuned schedule for the config's
/// topology degree (§4.3), returning the modified config.
pub fn with_algorithm(mut cfg: ExperimentConfig, algorithm: AlgorithmSpec) -> ExperimentConfig {
    cfg.name = format!("{}/{}", cfg.name, algorithm.name());
    cfg.algorithm = algorithm;
    cfg
}

/// The tuned SkipTrain schedule for a topology (§4.3 grid-search winners).
pub fn tuned_schedule(topology: &TopologySpec) -> Schedule {
    match topology {
        TopologySpec::Regular { degree } => Schedule::tuned_for_degree(*degree),
        TopologySpec::Complete => Schedule::new(4, 1),
        TopologySpec::Ring => Schedule::new(4, 6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        let cifar = cifar_config(Scale::Paper, 1);
        assert_eq!(cifar.nodes, 256);
        assert_eq!(cifar.rounds, 1000);
        assert_eq!(cifar.batch_size, 32);
        assert_eq!(cifar.local_steps, 20);
        // η intentionally differs from Table 1 (synthetic task regime);
        // the energy workload still carries Table 1's nominal values.
        assert_eq!(cifar.energy.workload.model_params, 89_834);

        let femnist = femnist_config(Scale::Paper, 1);
        assert_eq!(femnist.rounds, 3000);
        assert_eq!(femnist.batch_size, 16);
        assert_eq!(femnist.local_steps, 7);
        assert_eq!(femnist.energy.workload.model_params, 1_690_046);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn quick_configs_are_small() {
        let cfg = cifar_config(Scale::Quick, 1);
        assert!(cfg.nodes <= 32);
        assert!(cfg.rounds <= 64);
    }

    #[test]
    fn with_algorithm_renames() {
        let cfg = with_algorithm(
            cifar_config(Scale::Quick, 1),
            AlgorithmSpec::SkipTrain(Schedule::new(4, 4)),
        );
        assert!(cfg.name.contains("skiptrain"));
        assert_eq!(cfg.algorithm, AlgorithmSpec::SkipTrain(Schedule::new(4, 4)));
    }

    #[test]
    fn tuned_schedules_follow_section_4_3() {
        assert_eq!(
            tuned_schedule(&TopologySpec::Regular { degree: 6 }),
            Schedule::new(4, 4)
        );
        assert_eq!(
            tuned_schedule(&TopologySpec::Regular { degree: 10 }),
            Schedule::new(4, 2)
        );
    }
}
