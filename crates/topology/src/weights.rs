//! Sparse mixing (gossip) matrices.
//!
//! D-PSGD's aggregation step is `x_i ← Σ_j W_ji x_j` where `W` must be
//! symmetric and doubly stochastic (§2.2). We store `W` row-wise and
//! sparsely: row `i` holds `(j, W_ij)` pairs over `{i} ∪ N(i)`, which is all
//! the engine needs to aggregate a node's neighborhood.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// A sparse, row-stored mixing matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixingMatrix {
    n: usize,
    /// `rows[i]` = sorted `(j, weight)` entries of row `i` (self included).
    rows: Vec<Vec<(u32, f32)>>,
}

impl MixingMatrix {
    /// Metropolis–Hastings weights for a graph (§2.2 of the paper):
    ///
    /// * `W_ij = 1 / (max(deg i, deg j) + 1)` for each edge `(i, j)`,
    /// * `W_ii = 1 − Σ_{j≠i} W_ij`,
    /// * `W_ij = 0` otherwise.
    ///
    /// The result is symmetric and doubly stochastic for any undirected
    /// simple graph.
    pub fn metropolis_hastings(graph: &Graph) -> Self {
        let mut out = Self {
            n: 0,
            rows: Vec::new(),
        };
        Self::metropolis_hastings_into(graph, &mut out);
        out
    }

    /// In-place form of [`MixingMatrix::metropolis_hastings`]: rebuilds
    /// `out` for `graph`, reusing its row allocations. Produces exactly
    /// the matrix the allocating constructor would (asserted by tests);
    /// this is what keeps per-round weight regeneration allocation-free
    /// at steady state for time-varying topology schedules.
    pub fn metropolis_hastings_into(graph: &Graph, out: &mut MixingMatrix) {
        let n = graph.len();
        out.n = n;
        out.rows.truncate(n);
        while out.rows.len() < n {
            out.rows.push(Vec::new());
        }
        for (i, row) in out.rows.iter_mut().enumerate() {
            row.clear();
            row.reserve(graph.degree(i) + 1);
            let mut off_diagonal = 0.0f64;
            for &j in graph.neighbors(i) {
                let w = 1.0 / (graph.degree(i).max(graph.degree(j as usize)) as f64 + 1.0);
                row.push((j, w as f32));
                off_diagonal += w;
            }
            row.push((i as u32, (1.0 - off_diagonal) as f32));
            // unstable: keys are unique (neighbors + self), and the
            // stable sort may allocate a merge buffer on larger rows
            row.sort_unstable_by_key(|&(j, _)| j);
        }
    }

    /// The uniform complete-mixing matrix `W_ij = 1/n` (the all-reduce
    /// operator of Figure 1).
    pub fn uniform_complete(n: usize) -> Self {
        assert!(n > 0, "empty mixing matrix");
        let w = 1.0 / n as f32;
        let rows = (0..n)
            .map(|_| (0..n as u32).map(|j| (j, w)).collect())
            .collect();
        Self { n, rows }
    }

    /// The identity matrix (no mixing) — a degenerate baseline for tests and
    /// ablations.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "empty mixing matrix");
        let rows = (0..n as u32).map(|i| vec![(i, 1.0f32)]).collect();
        Self { n, rows }
    }

    /// Pairwise-averaging matrix for a set of disjoint node pairs
    /// (asynchronous gossip): matched nodes average with their partner
    /// (`W_ii = W_ij = ½`), unmatched nodes keep their model (`W_ii = 1`).
    /// Symmetric and doubly stochastic by construction.
    ///
    /// # Panics
    /// Panics on out-of-range or non-disjoint pairs.
    pub fn pairwise(n: usize, pairs: &[(u32, u32)]) -> Self {
        assert!(n > 0, "empty mixing matrix");
        let mut rows: Vec<Vec<(u32, f32)>> = (0..n as u32).map(|i| vec![(i, 1.0f32)]).collect();
        let mut matched = vec![false; n];
        for &(a, b) in pairs {
            let (ai, bi) = (a as usize, b as usize);
            assert!(ai < n && bi < n, "pair endpoint out of range");
            assert!(ai != bi, "self-pair");
            assert!(!matched[ai] && !matched[bi], "node matched twice");
            matched[ai] = true;
            matched[bi] = true;
            rows[ai] = vec![(a.min(b), 0.5), (a.max(b), 0.5)];
            rows[bi] = rows[ai].clone();
        }
        Self { n, rows }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix is 0×0 (never constructible via public API).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sorted `(column, weight)` entries of row `i`.
    pub fn row(&self, i: usize) -> &[(u32, f32)] {
        &self.rows[i]
    }

    /// Looks up `W_ij` (0 when absent).
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.rows[i]
            .binary_search_by_key(&(j as u32), |&(c, _)| c)
            .map(|pos| self.rows[i][pos].1)
            .unwrap_or(0.0)
    }

    /// Maximum deviation of any row or column sum from 1 — the
    /// double-stochasticity check.
    pub fn stochasticity_error(&self) -> f32 {
        let mut col_sums = vec![0.0f64; self.n];
        let mut worst = 0.0f64;
        for row in &self.rows {
            let mut s = 0.0f64;
            for &(j, w) in row {
                s += w as f64;
                col_sums[j as usize] += w as f64;
            }
            worst = worst.max((s - 1.0).abs());
        }
        for c in col_sums {
            worst = worst.max((c - 1.0).abs());
        }
        worst as f32
    }

    /// Maximum `|W_ij − W_ji|` — the symmetry check.
    pub fn symmetry_error(&self) -> f32 {
        let mut worst = 0.0f32;
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, w) in row {
                worst = worst.max((w - self.get(j as usize, i)).abs());
            }
        }
        worst
    }

    /// True when all entries are non-negative.
    pub fn is_nonnegative(&self) -> bool {
        self.rows.iter().flatten().all(|&(_, w)| w >= 0.0)
    }

    /// Applies `y = Wᵀ x = W x` (symmetric) to a scalar per node — used by
    /// spectral analysis and consensus tests.
    pub fn apply_scalar(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        let mut y = vec![0.0f64; self.n];
        for (i, row) in self.rows.iter().enumerate() {
            let mut acc = 0.0f64;
            for &(j, w) in row {
                acc += w as f64 * x[j as usize];
            }
            y[i] = acc;
        }
        y
    }

    /// Masks the matrix to a participating subset of nodes, preserving
    /// symmetry and double stochasticity: an inactive node's row collapses
    /// to the identity (`W_ii = 1`), and every active row folds the weight
    /// of its inactive neighbors back into its self entry. This is the
    /// participation mask the battery gating feeds into the effective-edge
    /// mixing path — an inactive node neither sends nor receives, so the
    /// per-edge energy accounting over the masked matrix charges it
    /// nothing.
    ///
    /// For a symmetric input the output is symmetric (the inactive column
    /// entries removed from active rows mirror the inactive rows' removed
    /// entries), and each row still sums to the original row sum. With
    /// every node active the output equals the input exactly.
    ///
    /// # Panics
    /// Panics unless `active.len() == self.len()`.
    pub fn masked(&self, active: &[bool]) -> Self {
        let mut out = Self {
            n: 0,
            rows: Vec::new(),
        };
        self.masked_into(active, &mut out);
        out
    }

    /// In-place form of [`MixingMatrix::masked`]: rebuilds `out`, reusing
    /// its row allocations (the allocation-free per-round path, mirroring
    /// [`MixingMatrix::metropolis_hastings_into`]).
    pub fn masked_into(&self, active: &[bool], out: &mut MixingMatrix) {
        assert_eq!(active.len(), self.n, "participation mask size mismatch");
        out.n = self.n;
        out.rows.truncate(self.n);
        while out.rows.len() < self.n {
            out.rows.push(Vec::new());
        }
        for (i, row_out) in out.rows.iter_mut().enumerate() {
            row_out.clear();
            if !active[i] {
                row_out.push((i as u32, 1.0));
                continue;
            }
            row_out.reserve(self.rows[i].len());
            // fold the self weight and every inactive neighbor's weight
            // into one self entry, keeping column order sorted
            let mut self_weight = 0.0f32;
            let mut had_self = false;
            for &(j, w) in &self.rows[i] {
                if j as usize == i {
                    self_weight += w;
                    had_self = true;
                } else if active[j as usize] {
                    row_out.push((j, w));
                } else {
                    self_weight += w;
                }
            }
            if had_self || self_weight != 0.0 {
                let pos = row_out.partition_point(|&(j, _)| j < i as u32);
                row_out.insert(pos, (i as u32, self_weight));
            }
        }
    }

    /// Renormalizes row `i` after dropping the contribution of column `j`
    /// (lossy-transport handling): the dropped weight is added back to the
    /// self-weight so the row still sums to 1. Returns the dropped weight.
    pub fn dropped_weight_to_self(row: &mut [(u32, f32)], self_id: u32, dropped: u32) -> f32 {
        let mut w_dropped = 0.0f32;
        for entry in row.iter_mut() {
            if entry.0 == dropped {
                w_dropped = entry.1;
                entry.1 = 0.0;
            }
        }
        if w_dropped > 0.0 {
            for entry in row.iter_mut() {
                if entry.0 == self_id {
                    entry.1 += w_dropped;
                }
            }
        }
        w_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::random_regular;
    use proptest::prelude::*;

    #[test]
    fn mh_on_ring_matches_hand_computation() {
        let g = Graph::ring(4);
        let w = MixingMatrix::metropolis_hastings(&g);
        // all degrees 2 → off-diagonal weights 1/3, self 1/3
        for i in 0..4 {
            for &(j, v) in w.row(i) {
                assert!((v - 1.0 / 3.0).abs() < 1e-6, "W[{i}][{j}] = {v}");
            }
        }
    }

    #[test]
    fn mh_into_reuses_buffers_and_matches_the_allocating_form() {
        // overwrite a slot across graphs of different sizes/degrees; the
        // result must be bit-identical to a fresh construction each time
        let mut slot = MixingMatrix::metropolis_hastings(&Graph::ring(3));
        for graph in [
            random_regular(16, 4, 1),
            Graph::ring(5),
            Graph::complete(9),
            random_regular(12, 6, 2),
        ] {
            MixingMatrix::metropolis_hastings_into(&graph, &mut slot);
            assert_eq!(slot, MixingMatrix::metropolis_hastings(&graph));
        }
    }

    #[test]
    fn mh_is_symmetric_doubly_stochastic_on_paper_graphs() {
        for d in [6usize, 8, 10] {
            let g = random_regular(256, d, 1);
            let w = MixingMatrix::metropolis_hastings(&g);
            assert!(w.symmetry_error() < 1e-6);
            assert!(w.stochasticity_error() < 1e-4);
            assert!(w.is_nonnegative());
        }
    }

    #[test]
    fn mh_handles_irregular_degrees() {
        // star graph: center degree n-1, leaves degree 1
        let mut g = Graph::empty(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf as u32);
        }
        let w = MixingMatrix::metropolis_hastings(&g);
        assert!(w.symmetry_error() < 1e-6);
        assert!(w.stochasticity_error() < 1e-5);
        // leaf-center weight = 1/(max(4,1)+1) = 0.2; leaf self = 0.8
        assert!((w.get(1, 0) - 0.2).abs() < 1e-6);
        assert!((w.get(1, 1) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn uniform_complete_averages() {
        let w = MixingMatrix::uniform_complete(4);
        let y = w.apply_scalar(&[1.0, 2.0, 3.0, 6.0]);
        for v in y {
            assert!((v - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_is_noop() {
        let w = MixingMatrix::identity(3);
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(w.apply_scalar(&x), x);
    }

    #[test]
    fn apply_scalar_preserves_mean() {
        let g = random_regular(32, 4, 3);
        let w = MixingMatrix::metropolis_hastings(&g);
        let x: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let before: f64 = x.iter().sum();
        let after: f64 = w.apply_scalar(&x).iter().sum();
        assert!(
            (before - after).abs() < 1e-6,
            "doubly stochastic mixing must preserve the sum"
        );
    }

    #[test]
    fn mixing_contracts_variance() {
        let g = random_regular(32, 4, 4);
        let w = MixingMatrix::metropolis_hastings(&g);
        let x: Vec<f64> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|a| (a - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        let y = w.apply_scalar(&x);
        assert!(var(&y) < var(&x), "gossip step must contract variance");
    }

    #[test]
    fn pairwise_averages_matched_nodes_only() {
        let w = MixingMatrix::pairwise(5, &[(0, 3), (1, 4)]);
        assert!(w.symmetry_error() < 1e-7);
        assert!(w.stochasticity_error() < 1e-6);
        let y = w.apply_scalar(&[10.0, 2.0, 7.0, 0.0, 4.0]);
        assert_eq!(y, vec![5.0, 3.0, 7.0, 5.0, 3.0]);
    }

    #[test]
    fn pairwise_empty_matching_is_identity() {
        let w = MixingMatrix::pairwise(3, &[]);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(w.apply_scalar(&x), x);
    }

    #[test]
    #[should_panic(expected = "matched twice")]
    fn pairwise_rejects_overlapping_pairs() {
        let _ = MixingMatrix::pairwise(4, &[(0, 1), (1, 2)]);
    }

    #[test]
    fn masked_with_all_active_is_the_original_matrix() {
        for graph in [random_regular(12, 4, 5), Graph::ring(7), Graph::complete(5)] {
            let w = MixingMatrix::metropolis_hastings(&graph);
            assert_eq!(w.masked(&vec![true; graph.len()]), w);
        }
        // rows without a self entry (swap matrix) must survive unchanged
        let swap: MixingMatrix =
            serde_json::from_str(r#"{"n":2,"rows":[[[1,1.0]],[[0,1.0]]]}"#).unwrap();
        assert_eq!(swap.masked(&[true, true]), swap);
    }

    #[test]
    fn masked_isolates_inactive_nodes_and_folds_their_weight() {
        let g = Graph::ring(4);
        let w = MixingMatrix::metropolis_hastings(&g);
        let m = w.masked(&[true, false, true, true]);
        // inactive row collapses to identity
        assert_eq!(m.row(1), &[(1, 1.0)]);
        // no active row references the inactive column
        for i in [0usize, 2, 3] {
            assert_eq!(m.get(i, 1), 0.0, "row {i} must drop the inactive column");
        }
        // node 0's lost 1/3 toward node 1 folds into its self weight
        assert!((m.get(0, 0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.get(0, 3) - 1.0 / 3.0).abs() < 1e-6);
        assert!(m.symmetry_error() < 1e-6);
        assert!(m.stochasticity_error() < 1e-6);
    }

    #[test]
    fn masked_into_reuses_buffers_and_matches_the_allocating_form() {
        let mut slot = MixingMatrix::metropolis_hastings(&Graph::ring(3));
        for (graph, pattern) in [
            (random_regular(16, 4, 1), 3usize),
            (Graph::ring(5), 2),
            (Graph::complete(9), 4),
        ] {
            let w = MixingMatrix::metropolis_hastings(&graph);
            let active: Vec<bool> = (0..graph.len()).map(|i| i % pattern != 0).collect();
            w.masked_into(&active, &mut slot);
            assert_eq!(slot, w.masked(&active));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_masked_preserves_mixing_invariants(
            n in 4usize..32, p in 0.2f64..0.9, seed in 0u64..200, mask_mod in 2usize..5
        ) {
            let g = crate::erdos::gnp(n, p, seed);
            let w = MixingMatrix::metropolis_hastings(&g);
            let active: Vec<bool> = (0..n).map(|i| !(i + seed as usize).is_multiple_of(mask_mod)).collect();
            let m = w.masked(&active);
            prop_assert!(m.symmetry_error() < 1e-5);
            prop_assert!(m.stochasticity_error() < 1e-4);
            prop_assert!(m.is_nonnegative());
            // inactive nodes are fully isolated: identity row, zero column
            for (i, &a) in active.iter().enumerate() {
                if !a {
                    prop_assert_eq!(m.row(i), &[(i as u32, 1.0f32)][..]);
                    for j in 0..n {
                        if j != i {
                            prop_assert_eq!(m.get(j, i), 0.0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn drop_renormalization_keeps_row_sum() {
        let g = Graph::ring(5);
        let w = MixingMatrix::metropolis_hastings(&g);
        let mut row = w.row(0).to_vec();
        let dropped = MixingMatrix::dropped_weight_to_self(&mut row, 0, 1);
        assert!(dropped > 0.0);
        let sum: f32 = row.iter().map(|&(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(row.iter().find(|&&(j, _)| j == 1).unwrap().1, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_mh_invariants_on_random_graphs(n in 4usize..40, p in 0.15f64..0.9, seed in 0u64..200) {
            let g = crate::erdos::gnp(n, p, seed);
            let w = MixingMatrix::metropolis_hastings(&g);
            prop_assert!(w.symmetry_error() < 1e-5);
            prop_assert!(w.stochasticity_error() < 1e-4);
            prop_assert!(w.is_nonnegative());
        }

        #[test]
        fn prop_pairwise_from_matchings_is_doubly_stochastic(
            n in 4usize..40, d in 2usize..5, seed in 0u64..200
        ) {
            let d = d * 2; // even degree keeps n·d even for any n
            prop_assume!(d < n);
            let g = crate::regular::random_regular(n, d, seed);
            let m = crate::matching::random_maximal_matching(&g, seed ^ 0x99);
            let w = MixingMatrix::pairwise(n, &m);
            prop_assert!(w.symmetry_error() < 1e-6);
            prop_assert!(w.stochasticity_error() < 1e-5);
            // pairwise mixing never increases variance
            let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64).collect();
            let var = |v: &[f64]| {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                v.iter().map(|a| (a - mean).powi(2)).sum::<f64>()
            };
            let y = w.apply_scalar(&x);
            prop_assert!(var(&y) <= var(&x) + 1e-9);
        }

        #[test]
        fn prop_mixing_preserves_sum(n in 4usize..30, p in 0.2f64..0.8, seed in 0u64..100) {
            let g = crate::erdos::gnp(n, p, seed);
            let w = MixingMatrix::metropolis_hastings(&g);
            let x: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 13) as f64).collect();
            let before: f64 = x.iter().sum();
            let after: f64 = w.apply_scalar(&x).iter().sum();
            // weights are stored as f32, so each row carries ~1e-7 relative
            // rounding; bound the drift accordingly
            prop_assert!((before - after).abs() < 1e-3 * before.abs().max(1.0));
        }
    }
}
