//! Random edge matchings for asynchronous pairwise gossip.
//!
//! Asynchronous decentralized learning (the paper's §5.3 future work)
//! replaces the synchronous all-neighbor exchange with pairwise averaging:
//! each tick, a set of disjoint edges "fires" and the two endpoints average
//! their models. A random maximal matching of the topology gives the firing
//! set.

use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Reusable buffers for [`random_maximal_matching_into`]: the edge list,
/// the endpoint-used bitmap, and the resulting matching. One scratch,
/// created once per schedule, makes per-round matching allocation-free
/// after the first round.
#[derive(Debug, Default, Clone)]
pub struct MatchingScratch {
    edges: Vec<(u32, u32)>,
    used: Vec<bool>,
    /// The matching produced by the last call.
    pub matching: Vec<(u32, u32)>,
}

/// Samples a random maximal matching of `graph`: edges are visited in a
/// seeded random order and greedily added if both endpoints are free.
///
/// Deterministic in `seed`. Every returned pair is an edge of the graph and
/// no node appears twice.
pub fn random_maximal_matching(graph: &Graph, seed: u64) -> Vec<(u32, u32)> {
    let mut scratch = MatchingScratch::default();
    random_maximal_matching_into(graph, seed, &mut scratch);
    scratch.matching
}

/// [`random_maximal_matching`] into caller-owned buffers; the result lands
/// in `scratch.matching`. Bit-identical to the allocating form for any
/// `(graph, seed)`.
pub fn random_maximal_matching_into(graph: &Graph, seed: u64, scratch: &mut MatchingScratch) {
    scratch.edges.clear();
    for i in 0..graph.len() {
        for &j in graph.neighbors(i) {
            if (j as usize) > i {
                scratch.edges.push((i as u32, j));
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    scratch.edges.shuffle(&mut rng);

    scratch.used.clear();
    scratch.used.resize(graph.len(), false);
    scratch.matching.clear();
    for &(a, b) in &scratch.edges {
        if !scratch.used[a as usize] && !scratch.used[b as usize] {
            scratch.used[a as usize] = true;
            scratch.used[b as usize] = true;
            scratch.matching.push((a, b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::random_regular;

    #[test]
    fn matching_is_disjoint_and_uses_real_edges() {
        let g = random_regular(32, 6, 1);
        let m = random_maximal_matching(&g, 7);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &m {
            assert!(
                g.has_edge(a as usize, b as usize),
                "({a},{b}) is not an edge"
            );
            assert!(seen.insert(a), "node {a} matched twice");
            assert!(seen.insert(b), "node {b} matched twice");
        }
    }

    #[test]
    fn matching_is_maximal() {
        // no remaining edge can have both endpoints free
        let g = random_regular(20, 4, 2);
        let m = random_maximal_matching(&g, 3);
        let mut used = vec![false; g.len()];
        for &(a, b) in &m {
            used[a as usize] = true;
            used[b as usize] = true;
        }
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                assert!(
                    used[i] || used[j as usize],
                    "edge ({i},{j}) could still be added"
                );
            }
        }
    }

    #[test]
    fn matchings_vary_with_seed_but_are_deterministic() {
        let g = random_regular(32, 6, 4);
        let a = random_maximal_matching(&g, 1);
        let b = random_maximal_matching(&g, 1);
        let c = random_maximal_matching(&g, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reused_scratch_matches_allocating_form() {
        // the scratch variant must stay bit-identical to the allocating
        // one even when its buffers carry state from a different graph
        let g1 = random_regular(32, 6, 1);
        let g2 = random_regular(20, 4, 2);
        let mut scratch = MatchingScratch::default();
        for (g, seed) in [(&g1, 7u64), (&g2, 3), (&g1, 9), (&g2, 3)] {
            random_maximal_matching_into(g, seed, &mut scratch);
            assert_eq!(scratch.matching, random_maximal_matching(g, seed));
        }
    }

    #[test]
    fn dense_graph_matches_nearly_everyone() {
        let g = crate::graph::Graph::complete(16);
        let m = random_maximal_matching(&g, 5);
        assert_eq!(m.len(), 8, "complete graph has a perfect matching");
    }
}
