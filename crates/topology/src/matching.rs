//! Random edge matchings for asynchronous pairwise gossip.
//!
//! Asynchronous decentralized learning (the paper's §5.3 future work)
//! replaces the synchronous all-neighbor exchange with pairwise averaging:
//! each tick, a set of disjoint edges "fires" and the two endpoints average
//! their models. A random maximal matching of the topology gives the firing
//! set.

use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Samples a random maximal matching of `graph`: edges are visited in a
/// seeded random order and greedily added if both endpoints are free.
///
/// Deterministic in `seed`. Every returned pair is an edge of the graph and
/// no node appears twice.
pub fn random_maximal_matching(graph: &Graph, seed: u64) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(graph.edge_count());
    for i in 0..graph.len() {
        for &j in graph.neighbors(i) {
            if (j as usize) > i {
                edges.push((i as u32, j));
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);

    let mut used = vec![false; graph.len()];
    let mut matching = Vec::new();
    for (a, b) in edges {
        if !used[a as usize] && !used[b as usize] {
            used[a as usize] = true;
            used[b as usize] = true;
            matching.push((a, b));
        }
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::random_regular;

    #[test]
    fn matching_is_disjoint_and_uses_real_edges() {
        let g = random_regular(32, 6, 1);
        let m = random_maximal_matching(&g, 7);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &m {
            assert!(
                g.has_edge(a as usize, b as usize),
                "({a},{b}) is not an edge"
            );
            assert!(seen.insert(a), "node {a} matched twice");
            assert!(seen.insert(b), "node {b} matched twice");
        }
    }

    #[test]
    fn matching_is_maximal() {
        // no remaining edge can have both endpoints free
        let g = random_regular(20, 4, 2);
        let m = random_maximal_matching(&g, 3);
        let mut used = vec![false; g.len()];
        for &(a, b) in &m {
            used[a as usize] = true;
            used[b as usize] = true;
        }
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                assert!(
                    used[i] || used[j as usize],
                    "edge ({i},{j}) could still be added"
                );
            }
        }
    }

    #[test]
    fn matchings_vary_with_seed_but_are_deterministic() {
        let g = random_regular(32, 6, 4);
        let a = random_maximal_matching(&g, 1);
        let b = random_maximal_matching(&g, 1);
        let c = random_maximal_matching(&g, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dense_graph_matches_nearly_everyone() {
        let g = crate::graph::Graph::complete(16);
        let m = random_maximal_matching(&g, 5);
        assert_eq!(m.len(), 8, "complete graph has a perfect matching");
    }
}
