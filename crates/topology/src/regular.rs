//! Random d-regular graph generation.
//!
//! The naive configuration (pairing) model rejects any pairing containing a
//! self-loop or duplicate edge; for the paper's degrees (d ∈ {6, 8, 10})
//! the acceptance probability is ≈ exp(−(d²−1)/4), i.e. hopeless. Instead we
//! use the standard double-edge-swap MCMC: start from a deterministic
//! connected circulant and apply a long sequence of degree-preserving
//! 2-swaps, which walks the space of simple d-regular graphs; swaps that
//! would create self-loops or duplicate edges are skipped, and the final
//! graph is re-randomized further if a swap sequence disconnected it.

use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Generates a connected random d-regular graph on `n` nodes via
/// double-edge-swap randomization of a circulant seed graph.
///
/// Deterministic in `seed`.
///
/// # Panics
/// Panics if `n·d` is odd, `d == 0`, or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    let mut g = circulant(n, d);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Enough successful swaps to mix the chain well past its (empirical)
    // mixing time of O(edges · log(edges)).
    let edges = n * d / 2;
    let target_swaps = edges * 16;
    // Re-randomize (in smaller batches) while the graph is disconnected;
    // bounded so a pathological case degrades to the connected circulant.
    for round in 0..8 {
        let swaps = if round == 0 {
            target_swaps
        } else {
            target_swaps / 4
        };
        perform_swaps(&mut g, swaps, &mut rng);
        if g.is_connected() {
            return g;
        }
    }
    circulant(n, d)
}

/// Applies `count` successful double-edge swaps to `g`.
fn perform_swaps(g: &mut Graph, count: usize, rng: &mut SmallRng) {
    let n = g.len();
    let mut done = 0usize;
    let mut attempts = 0usize;
    let max_attempts = count * 20;
    while done < count && attempts < max_attempts {
        attempts += 1;
        // Pick two random directed edges (a→b), (c→e).
        let a = rng.random_range(0..n);
        let deg_a = g.degree(a);
        if deg_a == 0 {
            continue;
        }
        let b = g.neighbors(a)[rng.random_range(0..deg_a)] as usize;
        let c = rng.random_range(0..n);
        let deg_c = g.degree(c);
        if deg_c == 0 {
            continue;
        }
        let e = g.neighbors(c)[rng.random_range(0..deg_c)] as usize;
        // Swap to (a−e), (c−b): all four endpoints distinct, targets absent.
        if a == c || a == e || b == c || b == e {
            continue;
        }
        if g.has_edge(a, e) || g.has_edge(c, b) {
            continue;
        }
        g.remove_edge(a as u32, b as u32);
        g.remove_edge(c as u32, e as u32);
        g.add_edge(a as u32, e as u32);
        g.add_edge(c as u32, b as u32);
        done += 1;
    }
}

/// Deterministic connected circulant d-regular graph: node `i` connects to
/// `i ± 1, i ± 2, …, i ± d/2` (and `i + n/2` when `d` is odd and `n` even).
///
/// # Panics
/// Panics under the same conditions as [`random_regular`].
pub fn circulant(n: usize, d: usize) -> Graph {
    assert!(d > 0, "degree must be positive");
    assert!(d < n, "degree must be below node count");
    assert!(
        (n * d).is_multiple_of(2),
        "n·d must be even for a d-regular graph"
    );

    let mut g = Graph::empty(n);
    let half = d / 2;
    for i in 0..n {
        for k in 1..=half {
            let j = (i + k) % n;
            if !g.has_edge(i, j) {
                g.add_edge(i as u32, j as u32);
            }
        }
    }
    if d % 2 == 1 {
        // n must be even here (n·d even with d odd)
        for i in 0..n / 2 {
            let j = i + n / 2;
            if !g.has_edge(i, j) {
                g.add_edge(i as u32, j as u32);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_topologies_are_regular_and_connected() {
        for d in [6usize, 8, 10] {
            let g = random_regular(256, d, 42);
            assert!(g.is_regular(d), "not {d}-regular");
            assert!(g.is_connected());
            g.validate().unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_regular(64, 6, 7);
        let b = random_regular(64, 6, 7);
        assert_eq!(a, b);
        let c = random_regular(64, 6, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn swaps_actually_randomize() {
        // The randomized graph must differ from the circulant seed.
        let g = random_regular(64, 6, 3);
        let c = circulant(64, 6);
        assert_ne!(g, c, "double-edge swaps left the circulant unchanged");
    }

    #[test]
    fn circulant_even_degree() {
        let g = circulant(10, 4);
        assert!(g.is_regular(4));
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn circulant_odd_degree() {
        let g = circulant(8, 3);
        assert!(g.is_regular(3));
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_stub_count() {
        let _ = random_regular(5, 3, 1);
    }

    #[test]
    #[should_panic(expected = "below node count")]
    fn rejects_degree_at_least_n() {
        let _ = random_regular(4, 4, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_random_regular_invariants(
            n in 8usize..64,
            half_d in 1usize..4,
            seed in 0u64..500,
        ) {
            let d = half_d * 2; // keep n·d even regardless of n
            prop_assume!(d < n);
            let g = random_regular(n, d, seed);
            prop_assert!(g.is_regular(d));
            prop_assert!(g.is_connected());
            prop_assert!(g.validate().is_ok());
        }

        #[test]
        fn prop_circulant_invariants(n in 6usize..40, d in 2usize..5) {
            prop_assume!(d < n && (n * d) % 2 == 0);
            let g = circulant(n, d);
            prop_assert!(g.is_regular(d), "degrees: {:?}", (0..n).map(|i| g.degree(i)).collect::<Vec<_>>());
            prop_assert!(g.is_connected());
        }
    }
}
