//! Undirected simple graphs.

use serde::{Deserialize, Serialize};

/// An undirected simple graph over nodes `0..n`.
///
/// Invariants (enforced by all constructors): neighbor lists are sorted,
/// deduplicated, self-loop-free, and symmetric (`j ∈ adj[i] ⇔ i ∈ adj[j]`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Creates an edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// An edgeless graph shaped like `self`: same node count, each
    /// adjacency list pre-reserving this graph's degree. A scratch built
    /// this way can hold any subgraph of `self` (edge dropout, matchings)
    /// without ever growing an allocation.
    pub fn empty_like(&self) -> Self {
        Self {
            n: self.n,
            adj: self
                .adj
                .iter()
                .map(|a| Vec::with_capacity(a.len()))
                .collect(),
        }
    }

    /// Removes every edge while keeping each adjacency list's capacity,
    /// so per-round graph regeneration can reuse one allocation
    /// steady-state (the scheduled-topology hot path).
    pub fn clear_edges(&mut self) {
        for adj in &mut self.adj {
            adj.clear();
        }
    }

    /// Builds a graph from an edge list (duplicates and self-loops are
    /// rejected).
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::empty(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Adds the undirected edge `(a, b)`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "edge endpoint out of range"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        let insert = |adj: &mut Vec<u32>, v: u32| match adj.binary_search(&v) {
            // lint:allow(no_panic, "documented Panics contract: a duplicate edge is a caller bug in graph construction")
            Ok(_) => panic!("duplicate edge ({v})"),
            Err(pos) => adj.insert(pos, v),
        };
        insert(&mut self.adj[a as usize], b);
        insert(&mut self.adj[b as usize], a);
    }

    /// Removes the undirected edge `(a, b)`.
    ///
    /// # Panics
    /// Panics if the edge does not exist.
    pub fn remove_edge(&mut self, a: u32, b: u32) {
        let remove = |adj: &mut Vec<u32>, v: u32| match adj.binary_search(&v) {
            Ok(pos) => {
                adj.remove(pos);
            }
            // lint:allow(no_panic, "documented Panics contract: removing a missing edge is a caller bug")
            Err(_) => panic!("edge ({v}) not present"),
        };
        remove(&mut self.adj[a as usize], b);
        remove(&mut self.adj[b as usize], a);
    }

    /// Ring topology: node `i` connects to `i±1 (mod n)`.
    ///
    /// # Panics
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 nodes");
        let mut g = Self::empty(n);
        for i in 0..n {
            let j = (i + 1) % n;
            g.add_edge(i as u32, j as u32);
        }
        g
    }

    /// Fully-connected topology (the all-reduce communication pattern).
    pub fn complete(n: usize) -> Self {
        let mut g = Self::empty(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i as u32, j as u32);
            }
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sorted neighbors of `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.adj[i]
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// True if edge `(a, b)` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&(b as u32)).is_ok()
    }

    /// True if every node has degree `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        self.adj.iter().all(|a| a.len() == d)
    }

    /// Minimum and maximum degree; `(0, 0)` for the empty graph.
    pub fn degree_range(&self) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for a in &self.adj {
            lo = lo.min(a.len());
            hi = hi.max(a.len());
        }
        if self.n == 0 {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// BFS connectivity check.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(0usize);
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                let v = v as usize;
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.n
    }

    /// Graph diameter via BFS from every node; `None` if disconnected.
    ///
    /// O(n·m) — intended for analysis at simulation scale, not for huge
    /// graphs.
    pub fn diameter(&self) -> Option<usize> {
        if self.n == 0 {
            return Some(0);
        }
        let mut diameter = 0usize;
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.n {
            dist.fill(usize::MAX);
            dist[start] = 0;
            queue.clear();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    let v = v as usize;
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            // lint:allow(no_panic, "provably infallible: dist has one entry per node and n > 0 here")
            let far = *dist.iter().max().unwrap();
            if far == usize::MAX {
                return None;
            }
            diameter = diameter.max(far);
        }
        Some(diameter)
    }

    /// Checks all representation invariants; used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        for (i, neigh) in self.adj.iter().enumerate() {
            if !neigh.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("node {i}: neighbors not strictly sorted"));
            }
            for &j in neigh {
                if j as usize >= self.n {
                    return Err(format!("node {i}: neighbor {j} out of range"));
                }
                if j as usize == i {
                    return Err(format!("node {i}: self-loop"));
                }
                if !self.has_edge(j as usize, i) {
                    return Err(format!("edge ({i}, {j}) not symmetric"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_properties() {
        let g = Graph::ring(6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.is_regular(2));
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(3));
        g.validate().unwrap();
    }

    #[test]
    fn complete_properties() {
        let g = Graph::complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.is_regular(4));
        assert_eq!(g.diameter(), Some(1));
        g.validate().unwrap();
    }

    #[test]
    fn empty_graph_is_disconnected_when_multi_node() {
        let g = Graph::empty(3);
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn single_node_graph_is_connected() {
        let g = Graph::empty(1);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let _ = Graph::from_edges(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        let _ = Graph::from_edges(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn degree_range_reports_extremes() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_range(), (1, 3));
    }
}
