//! Spectral analysis of mixing matrices.
//!
//! For a symmetric doubly stochastic `W`, the speed at which repeated gossip
//! drives all nodes to the average is governed by the second-largest
//! eigenvalue modulus λ₂ (Xiao & Boyd 2004): the disagreement contracts by
//! λ₂ per synchronization round. This predicts the Figure-3 trend that
//! denser topologies (larger spectral gap) need smaller Γ_sync.

use crate::weights::MixingMatrix;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Result of the power-iteration estimate.
#[derive(Debug, Clone, Copy)]
pub struct SpectralEstimate {
    /// Estimated second-largest eigenvalue modulus λ₂ of `W`.
    pub lambda2: f64,
    /// Spectral gap `1 − λ₂`.
    pub gap: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Estimates λ₂ of a symmetric doubly stochastic mixing matrix by power
/// iteration on the space orthogonal to the all-ones vector.
///
/// # Panics
/// Panics for matrices with fewer than 2 nodes.
pub fn second_eigenvalue(w: &MixingMatrix, iterations: usize, seed: u64) -> SpectralEstimate {
    let n = w.len();
    assert!(n >= 2, "spectral estimate needs at least 2 nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    deflate(&mut x);
    normalize(&mut x);

    let mut lambda = 0.0f64;
    let mut done = 0usize;
    for it in 0..iterations {
        let mut y = w.apply_scalar(&x);
        deflate(&mut y);
        let norm = l2(&y);
        done = it + 1;
        if norm < 1e-14 {
            lambda = 0.0;
            break;
        }
        lambda = norm; // ‖Wx‖ / ‖x‖ with ‖x‖ = 1
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    SpectralEstimate {
        lambda2: lambda,
        gap: 1.0 - lambda,
        iterations: done,
    }
}

/// Number of gossip rounds needed to shrink disagreement by `factor`
/// according to the spectral estimate (`λ₂^k ≤ 1/factor`).
pub fn rounds_to_contract(lambda2: f64, factor: f64) -> usize {
    assert!(factor > 1.0, "contraction factor must exceed 1");
    if lambda2 <= 0.0 {
        return 1;
    }
    if lambda2 >= 1.0 {
        return usize::MAX;
    }
    (factor.ln() / -(lambda2.ln())).ceil() as usize
}

fn deflate(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn normalize(x: &mut [f64]) {
    let n = l2(x);
    if n > 0.0 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::regular::random_regular;

    #[test]
    fn complete_mixing_has_zero_lambda2() {
        let w = MixingMatrix::uniform_complete(16);
        let est = second_eigenvalue(&w, 50, 1);
        assert!(est.lambda2 < 1e-6, "λ₂ = {}", est.lambda2);
        assert!(est.gap > 0.999);
    }

    #[test]
    fn identity_has_lambda2_one() {
        let w = MixingMatrix::identity(8);
        let est = second_eigenvalue(&w, 50, 1);
        assert!((est.lambda2 - 1.0).abs() < 1e-9, "λ₂ = {}", est.lambda2);
    }

    #[test]
    fn ring_lambda2_matches_closed_form() {
        // For MH weights on a ring (all weights 1/3), W = (I + P + Pᵀ)/3 and
        // λ₂ = (1 + 2 cos(2π/n)) / 3.
        let n = 24;
        let g = Graph::ring(n);
        let w = MixingMatrix::metropolis_hastings(&g);
        let est = second_eigenvalue(&w, 4000, 3);
        let expected = (1.0 + 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos()) / 3.0;
        assert!(
            (est.lambda2 - expected).abs() < 1e-3,
            "λ₂ = {}, closed form {expected}",
            est.lambda2
        );
    }

    #[test]
    fn denser_regular_graphs_have_larger_gap() {
        let mut gaps = Vec::new();
        for d in [4usize, 8, 16] {
            let g = random_regular(64, d, 5);
            let w = MixingMatrix::metropolis_hastings(&g);
            gaps.push(second_eigenvalue(&w, 500, 7).gap);
        }
        assert!(
            gaps[0] < gaps[1] && gaps[1] < gaps[2],
            "gap should grow with degree: {gaps:?}"
        );
    }

    #[test]
    fn rounds_to_contract_monotone_in_lambda() {
        let fast = rounds_to_contract(0.3, 100.0);
        let slow = rounds_to_contract(0.9, 100.0);
        assert!(fast < slow);
        assert_eq!(rounds_to_contract(0.0, 10.0), 1);
        assert_eq!(rounds_to_contract(1.0, 10.0), usize::MAX);
    }
}
