//! Erdős–Rényi random graphs, used by ablation benches and tests that need
//! irregular degree distributions.

use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Samples `G(n, p)`: every possible edge is present independently with
/// probability `p`.
///
/// # Panics
/// Panics unless `0.0 <= p <= 1.0`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.random::<f64>() < p {
                g.add_edge(i as u32, j as u32);
            }
        }
    }
    g
}

/// Samples connected `G(n, p)` by rejection, patching isolated components
/// is deliberately avoided to keep the distribution clean; returns `None`
/// if no connected sample is found in `attempts` tries.
pub fn gnp_connected(n: usize, p: f64, seed: u64, attempts: usize) -> Option<Graph> {
    for k in 0..attempts {
        // lint:allow(seed_stream, "bit-compatible retry offset pinned by the seeded graph tests; routing through derive_seed would change every sampled topology")
        let g = gnp(n, p, seed.wrapping_add(k as u64));
        if g.is_connected() {
            return Some(g);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extreme_probabilities() {
        let none = gnp(10, 0.0, 1);
        assert_eq!(none.edge_count(), 0);
        let all = gnp(10, 1.0, 1);
        assert_eq!(all.edge_count(), 45);
    }

    #[test]
    fn edge_count_tracks_probability() {
        let g = gnp(60, 0.3, 5);
        let expected = 0.3 * (60.0 * 59.0 / 2.0);
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "edges {got} vs expected {expected}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gnp(20, 0.4, 9), gnp(20, 0.4, 9));
        assert_ne!(gnp(20, 0.4, 9), gnp(20, 0.4, 10));
    }

    #[test]
    fn connected_variant_finds_dense_graph() {
        let g = gnp_connected(30, 0.4, 3, 16).expect("dense gnp should connect");
        assert!(g.is_connected());
    }

    #[test]
    fn connected_variant_gives_up_on_empty() {
        assert!(gnp_connected(10, 0.0, 1, 4).is_none());
    }
}
