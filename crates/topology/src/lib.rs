//! Communication topologies for decentralized learning.
//!
//! The paper runs 256 nodes on random d-regular graphs (d ∈ {6, 8, 10}) and
//! mixes models with Metropolis–Hastings weights (§2.2), which are symmetric
//! and doubly stochastic — the conditions D-PSGD needs for convergence.
//!
//! * [`graph`] — undirected simple graphs with validated invariants,
//! * [`regular`] — random d-regular generation (pairing model with a
//!   connected-circulant fallback),
//! * [`erdos`] — Erdős–Rényi G(n, p) graphs for ablations,
//! * [`weights`] — sparse mixing matrices (Metropolis–Hastings, uniform
//!   all-reduce, and degenerate variants for testing),
//! * [`schedule`] — time-varying topologies: round→graph generators
//!   ([`TopologySchedule`]) with per-round Metropolis–Hastings weights
//!   cached by graph identity ([`ScheduledTopology`]),
//! * [`spectral`] — spectral-gap estimation, which predicts gossip mixing
//!   speed and explains the Γ_sync trends of Figure 3.

pub mod erdos;
pub mod graph;
pub mod matching;
pub mod regular;
pub mod schedule;
pub mod spectral;
pub mod weights;

pub use graph::Graph;
pub use schedule::{GraphGenerator, ScheduledTopology, TopologySchedule};
pub use weights::MixingMatrix;
