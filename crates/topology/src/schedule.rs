//! Time-varying communication topologies.
//!
//! The paper evaluates on a static graph, but its energy argument is
//! strongest on dynamic fleets where links appear and disappear —
//! duty-cycled radios, mobility, energy-harvesting devices (cf.
//! *Decentralized Federated Learning With Energy Harvesting Devices*). A
//! [`TopologySchedule`] maps each round to the graph in effect that round;
//! [`ScheduledTopology`] drives a schedule against a base graph and
//! regenerates Metropolis–Hastings mixing weights per scheduled round, so
//! every effective round's matrix stays symmetric and doubly stochastic —
//! the condition D-PSGD-style analyses need, per round, on time-varying
//! graphs. Matrices are cached by *graph identity* ([`MixingCache`]), so a
//! cycling schedule pays the MH construction once per distinct graph, not
//! once per round.
//!
//! # Seed chaining
//!
//! Per-round generation seeds are derived by chaining
//! [`derive_seed`] over the schedule id and the round index
//! ([`round_seed`]), mirroring the transport drop-stream fix: a linear
//! `seed + round` construction aliases round streams across schedules and
//! collides with unrelated derivation constants at scale (e.g. a matching
//! seed landing on a model-init stream), correlating randomness that must
//! be independent.

use crate::graph::Graph;
use crate::matching::{random_maximal_matching, random_maximal_matching_into, MatchingScratch};
use crate::weights::MixingMatrix;
use skiptrain_linalg::rng::derive_seed;
use std::borrow::Cow;

/// Stream tag separating topology-schedule randomness from every other
/// seed-derivation domain in the workspace.
const SCHEDULE_STREAM_TAG: u64 = 0x70D0_57A6;

/// Derives the independent per-round generation seed for a schedule:
/// chained [`derive_seed`] over `(schedule id, round)` on top of the
/// schedule's own seed. Every `(seed, schedule_id, round)` triple gets an
/// avalanche-mixed stream of its own (collision-tested), unlike the
/// `seed + round` construction this replaces.
pub fn round_seed(seed: u64, schedule_id: u64, round: usize) -> u64 {
    derive_seed(
        derive_seed(seed ^ SCHEDULE_STREAM_TAG, schedule_id),
        round as u64,
    )
}

/// A user-supplied round→graph generator for [`TopologySchedule::Custom`].
///
/// `round_seed` is the chained per-round stream from [`round_seed`]
/// (schedule id 4); generators with their own seeding are free to ignore
/// it, but using it keeps custom schedules independent of every other
/// random stream in the simulation.
pub trait GraphGenerator: std::fmt::Debug + Send + Sync {
    /// The communication graph in effect at `round`. Must return a graph
    /// on exactly `base.len()` nodes.
    fn generate(&self, base: &Graph, round: usize, round_seed: u64) -> Graph;
}

/// A round→graph generator: which communication graph is in effect each
/// round.
#[derive(Debug)]
pub enum TopologySchedule {
    /// The base graph every round (the paper's static setting).
    Static,
    /// Cycle through a fixed list of graphs: round `t` uses
    /// `graphs[t % len]`.
    Cycle(Vec<Graph>),
    /// Each round, drop every base edge independently with probability
    /// `p` (duty-cycled radios). Deterministic in `(seed, round, edge)`.
    EdgeDropout {
        /// Per-edge, per-round drop probability in `[0, 1)`.
        p: f64,
        /// Schedule seed; per-round streams are chained from it.
        seed: u64,
    },
    /// Each round, a random maximal matching of the base graph fires
    /// (pairwise gossip as a *graph* schedule, reusing
    /// [`random_maximal_matching`]).
    PairwiseMatching {
        /// Schedule seed; per-round streams are chained from it.
        seed: u64,
    },
    /// A caller-supplied generator.
    Custom {
        /// Schedule seed; the per-round streams handed to the generator
        /// are chained from it, so two experiments with different seeds
        /// get independent custom-graph sequences.
        seed: u64,
        /// The round→graph generator.
        generator: Box<dyn GraphGenerator>,
    },
}

impl TopologySchedule {
    /// Stable discriminant used in the seed chain (and reports).
    pub fn schedule_id(&self) -> u64 {
        match self {
            TopologySchedule::Static => 0,
            TopologySchedule::Cycle(_) => 1,
            TopologySchedule::EdgeDropout { .. } => 2,
            TopologySchedule::PairwiseMatching { .. } => 3,
            TopologySchedule::Custom { .. } => 4,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TopologySchedule::Static => "static",
            TopologySchedule::Cycle(_) => "cycle",
            TopologySchedule::EdgeDropout { .. } => "edge-dropout",
            TopologySchedule::PairwiseMatching { .. } => "pairwise-matching",
            TopologySchedule::Custom { .. } => "custom",
        }
    }

    /// True for the static schedule (callers keep the engine's fast path).
    pub fn is_static(&self) -> bool {
        matches!(self, TopologySchedule::Static)
    }

    /// True when the schedule draws from a fixed, repeating set of graphs
    /// (the variants the mixing cache can actually hit); randomized
    /// schedules generate an essentially fresh graph every round, so
    /// their mixing is computed directly instead of thrashing the cache.
    pub fn is_periodic(&self) -> bool {
        matches!(self, TopologySchedule::Static | TopologySchedule::Cycle(_))
    }
}

/// The graph `schedule` puts in effect at `round` over `base` — the one
/// generation path shared by [`ScheduledTopology::graph_for_round`] and
/// [`ScheduledTopology::mixing_for_round`] (a free function over the
/// fields, so the latter can split-borrow the cache mutably).
fn generate_round_graph<'a>(
    base: &'a Graph,
    schedule: &'a TopologySchedule,
    round: usize,
) -> Cow<'a, Graph> {
    match schedule {
        TopologySchedule::Static => Cow::Borrowed(base),
        TopologySchedule::Cycle(graphs) => Cow::Borrowed(&graphs[round % graphs.len()]),
        TopologySchedule::EdgeDropout { p, seed } => {
            let rs = round_seed(*seed, schedule.schedule_id(), round);
            Cow::Owned(dropout_graph(base, *p, rs))
        }
        TopologySchedule::PairwiseMatching { seed } => {
            let rs = round_seed(*seed, schedule.schedule_id(), round);
            let pairs = random_maximal_matching(base, rs);
            Cow::Owned(Graph::from_edges(base.len(), &pairs))
        }
        TopologySchedule::Custom { seed, generator } => {
            let rs = round_seed(*seed, schedule.schedule_id(), round);
            Cow::Owned(generator.generate(base, round, rs))
        }
    }
}

/// Bounded cache of Metropolis–Hastings matrices keyed by graph identity.
///
/// A cycling schedule revisits the same handful of graphs every period;
/// caching by [`Graph`] equality makes the steady state allocation-free
/// for periodic schedules. Randomized schedules bypass it entirely
/// ([`TopologySchedule::is_periodic`]) — a fresh graph every round would
/// pay the deep-equality scan for a ~0% hit rate. [`ScheduledTopology`]
/// sizes the capacity to the schedule (cycle length, or 1 for static),
/// so periodic access never evicts; the FIFO cap only bounds memory for
/// callers feeding mixed workloads directly (cyclic access is FIFO's
/// worst case, so an undersized cache would thrash at a 0% hit rate).
#[derive(Debug)]
pub struct MixingCache {
    entries: Vec<(Graph, MixingMatrix)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// Default capacity of a standalone [`MixingCache`].
pub const MIXING_CACHE_CAP: usize = 16;

impl Default for MixingCache {
    fn default() -> Self {
        Self::with_capacity(MIXING_CACHE_CAP)
    }
}

impl MixingCache {
    /// A cache retaining up to `capacity` distinct graphs (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// The MH matrix for `graph`, computed on first sight.
    pub fn get_or_insert(&mut self, graph: Cow<'_, Graph>) -> &MixingMatrix {
        if let Some(i) = self.entries.iter().position(|(g, _)| *g == *graph) {
            self.hits += 1;
            return &self.entries[i].1;
        }
        self.misses += 1;
        let weights = MixingMatrix::metropolis_hastings(&graph);
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((graph.into_owned(), weights));
        // lint:allow(no_panic, "provably infallible: an entry was pushed on the line above")
        &self.entries.last().expect("just pushed").1
    }

    /// `(hits, misses)` counters (cache-effectiveness tests).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached matrices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A [`TopologySchedule`] bound to its base graph, with per-round mixing
/// generation and caching — the object the experiment runner drives.
#[derive(Debug)]
pub struct ScheduledTopology {
    base: Graph,
    schedule: TopologySchedule,
    cache: MixingCache,
    /// Reusable mixing slot for randomized (non-periodic) schedules,
    /// whose graphs essentially never repeat — deep-equality caching
    /// would be pure overhead there.
    scratch: Option<MixingMatrix>,
    /// Reusable graph for randomized schedules: edge-dropout and
    /// matching rounds regenerate edges into this slot instead of
    /// building a fresh adjacency structure every round.
    graph_scratch: Option<Graph>,
    /// Buffers for the per-round maximal-matching sweep.
    matching_scratch: MatchingScratch,
}

impl ScheduledTopology {
    /// Binds `schedule` to `base`.
    ///
    /// # Panics
    /// Panics if a `Cycle` schedule contains a graph whose node count
    /// differs from the base graph's (use
    /// [`ScheduledTopology::try_new`] for the typed-error form).
    pub fn new(base: Graph, schedule: TopologySchedule) -> Self {
        // lint:allow(no_panic, "documented Panics contract; try_new is the typed-error form")
        Self::try_new(base, schedule).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Binds `schedule` to `base`, rejecting cycle graphs of the wrong
    /// size with a description instead of panicking mid-campaign.
    pub fn try_new(base: Graph, schedule: TopologySchedule) -> Result<Self, String> {
        if let TopologySchedule::Cycle(graphs) = &schedule {
            if graphs.is_empty() {
                return Err("cycle schedule needs at least one graph".to_string());
            }
            for (i, g) in graphs.iter().enumerate() {
                if g.len() != base.len() {
                    return Err(format!(
                        "cycle graph #{i} has {} nodes, base graph has {}",
                        g.len(),
                        base.len()
                    ));
                }
            }
        }
        // Size the cache to the schedule: one slot for static, one per
        // cycle graph (cyclic access is FIFO's worst case — a cache
        // smaller than the cycle would evict exactly the graph needed
        // next and thrash at 0% hits). Randomized schedules bypass the
        // cache entirely.
        let capacity = match &schedule {
            TopologySchedule::Cycle(graphs) => graphs.len(),
            _ => 1,
        };
        Ok(Self {
            base,
            schedule,
            cache: MixingCache::with_capacity(capacity),
            scratch: None,
            graph_scratch: None,
            matching_scratch: MatchingScratch::default(),
        })
    }

    /// The base graph.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &TopologySchedule {
        &self.schedule
    }

    /// True when every round uses the base graph unchanged.
    pub fn is_static(&self) -> bool {
        self.schedule.is_static()
    }

    /// Mixing-cache counters (tests assert periodic schedules hit).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// The graph in effect at `round` (borrowed for static/cycling
    /// schedules, generated for randomized ones).
    pub fn graph_for_round(&self, round: usize) -> Cow<'_, Graph> {
        generate_round_graph(&self.base, &self.schedule, round)
    }

    /// The Metropolis–Hastings mixing matrix for `round`'s graph —
    /// symmetric and doubly stochastic for any scheduled graph (on a
    /// matching graph MH degenerates to exact pairwise averaging).
    /// Periodic schedules cache by graph identity; randomized ones
    /// compute into a reusable slot.
    pub fn mixing_for_round(&mut self, round: usize) -> &MixingMatrix {
        // Split borrows: the graph may borrow `base`/`schedule` while the
        // cache or scratch slots are mutated.
        if self.schedule.is_periodic() {
            let graph = generate_round_graph(&self.base, &self.schedule, round);
            return self.cache.get_or_insert(graph);
        }
        self.cache.misses += 1;
        // Randomized schedules regenerate edges into a reusable graph
        // slot (and MH weights into a reusable matrix slot), so the
        // steady-state round loop performs no heap allocation at all.
        let graph: &Graph = match &self.schedule {
            TopologySchedule::EdgeDropout { p, seed } => {
                let rs = round_seed(*seed, self.schedule.schedule_id(), round);
                let g = self
                    .graph_scratch
                    .get_or_insert_with(|| self.base.empty_like());
                dropout_graph_into(&self.base, *p, rs, g);
                g
            }
            TopologySchedule::PairwiseMatching { seed } => {
                let rs = round_seed(*seed, self.schedule.schedule_id(), round);
                random_maximal_matching_into(&self.base, rs, &mut self.matching_scratch);
                let g = self
                    .graph_scratch
                    .get_or_insert_with(|| self.base.empty_like());
                g.clear_edges();
                for &(a, b) in &self.matching_scratch.matching {
                    g.add_edge(a, b);
                }
                g
            }
            TopologySchedule::Custom { seed, generator } => {
                let rs = round_seed(*seed, self.schedule.schedule_id(), round);
                let g = generator.generate(&self.base, round, rs);
                self.graph_scratch.insert(g)
            }
            // is_periodic() returned above for Static and Cycle
            TopologySchedule::Static | TopologySchedule::Cycle(_) => &self.base,
        };
        // Seed the slot from the base graph: base degrees bound every
        // subgraph's, so the rows never grow on a later round that hits
        // a fresh per-node degree maximum.
        let slot = self
            .scratch
            .get_or_insert_with(|| MixingMatrix::metropolis_hastings(&self.base));
        MixingMatrix::metropolis_hastings_into(graph, slot);
        slot
    }
}

/// The per-round edge-dropout graph: every base edge survives
/// independently with probability `1 − p`, decided by a chained
/// per-edge stream (canonical direction `i < j`, so the decision is
/// order-independent and symmetric).
fn dropout_graph(base: &Graph, p: f64, rs: u64) -> Graph {
    let mut g = Graph::empty(base.len());
    dropout_graph_into(base, p, rs, &mut g);
    g
}

/// [`dropout_graph`] into a caller-owned graph (cleared first, adjacency
/// capacity retained) — the allocation-free per-round path. Bit-identical
/// to the allocating form for any `(base, p, rs)`.
fn dropout_graph_into(base: &Graph, p: f64, rs: u64, g: &mut Graph) {
    debug_assert_eq!(g.len(), base.len(), "scratch graph sized to base");
    g.clear_edges();
    for i in 0..base.len() {
        for &j in base.neighbors(i) {
            if (j as usize) <= i {
                continue;
            }
            let h = derive_seed(derive_seed(rs, i as u64), j as u64);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u >= p {
                g.add_edge(i as u32, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::random_regular;
    use proptest::prelude::*;

    fn check_mixing(w: &MixingMatrix) {
        assert!(w.symmetry_error() < 1e-5, "symmetry {}", w.symmetry_error());
        assert!(
            w.stochasticity_error() < 1e-4,
            "stochasticity {}",
            w.stochasticity_error()
        );
        assert!(w.is_nonnegative());
    }

    #[test]
    fn static_schedule_returns_base_every_round() {
        let base = random_regular(16, 4, 1);
        let mut sched = ScheduledTopology::new(base.clone(), TopologySchedule::Static);
        for r in 0..5 {
            assert_eq!(*sched.graph_for_round(r), base);
        }
        let w0 = sched.mixing_for_round(0).clone();
        assert_eq!(sched.mixing_for_round(3), &w0);
        let (hits, misses) = sched.cache_stats();
        assert_eq!((hits, misses), (1, 1), "static schedule caches one matrix");
    }

    #[test]
    fn cycle_schedule_alternates_and_caches() {
        let a = random_regular(12, 4, 1);
        let b = Graph::ring(12);
        let mut sched = ScheduledTopology::new(
            a.clone(),
            TopologySchedule::Cycle(vec![a.clone(), b.clone()]),
        );
        assert_eq!(*sched.graph_for_round(0), a);
        assert_eq!(*sched.graph_for_round(1), b);
        assert_eq!(*sched.graph_for_round(2), a);
        for r in 0..10 {
            check_mixing(sched.mixing_for_round(r));
        }
        let (hits, misses) = sched.cache_stats();
        assert_eq!(misses, 2, "two distinct graphs, two MH constructions");
        assert_eq!(hits, 8);
    }

    #[test]
    fn cycle_size_mismatch_is_a_typed_failure() {
        let base = Graph::ring(8);
        let err = ScheduledTopology::try_new(
            base,
            TopologySchedule::Cycle(vec![Graph::ring(8), Graph::ring(6)]),
        )
        .unwrap_err();
        assert!(err.contains("#1"), "error should name the graph: {err}");
        assert!(
            ScheduledTopology::try_new(Graph::ring(8), TopologySchedule::Cycle(vec![])).is_err()
        );
    }

    #[test]
    fn edge_dropout_is_a_deterministic_subgraph() {
        let base = random_regular(24, 6, 3);
        let sched = ScheduledTopology::new(
            base.clone(),
            TopologySchedule::EdgeDropout { p: 0.4, seed: 9 },
        );
        let g1 = sched.graph_for_round(7).into_owned();
        let g2 = sched.graph_for_round(7).into_owned();
        assert_eq!(g1, g2, "per-round graphs are deterministic");
        let other = sched.graph_for_round(8).into_owned();
        assert_ne!(g1, other, "different rounds draw different graphs");
        g1.validate().unwrap();
        assert!(g1.edge_count() < base.edge_count());
        for i in 0..base.len() {
            for &j in g1.neighbors(i) {
                assert!(base.has_edge(i, j as usize), "dropout invented an edge");
            }
        }
    }

    #[test]
    fn edge_dropout_rate_tracks_probability() {
        let base = Graph::complete(32); // 496 edges
        let sched = ScheduledTopology::new(
            base.clone(),
            TopologySchedule::EdgeDropout { p: 0.3, seed: 5 },
        );
        let mut kept = 0usize;
        let rounds = 40;
        for r in 0..rounds {
            kept += sched.graph_for_round(r).edge_count();
        }
        let rate = kept as f64 / (rounds * base.edge_count()) as f64;
        assert!((rate - 0.7).abs() < 0.03, "keep rate {rate} far from 0.7");
    }

    #[test]
    fn pairwise_matching_schedule_yields_disjoint_degree_one_graphs() {
        let base = random_regular(20, 4, 2);
        let sched = ScheduledTopology::new(
            base.clone(),
            TopologySchedule::PairwiseMatching { seed: 11 },
        );
        for r in 0..6 {
            let g = sched.graph_for_round(r);
            let (_, hi) = g.degree_range();
            assert!(hi <= 1, "a matching graph has max degree 1");
            for i in 0..g.len() {
                for &j in g.neighbors(i) {
                    assert!(base.has_edge(i, j as usize));
                }
            }
        }
    }

    #[test]
    fn scratch_mixing_matches_fresh_construction() {
        // mixing_for_round's reusable graph/matrix slots must reproduce
        // exactly what a fresh per-round construction yields, round after
        // round, for every randomized schedule kind
        for schedule in [
            TopologySchedule::EdgeDropout { p: 0.4, seed: 9 },
            TopologySchedule::PairwiseMatching { seed: 11 },
        ] {
            let base = random_regular(24, 6, 3);
            let mut sched = ScheduledTopology::new(base.clone(), schedule);
            for r in 0..8 {
                let expect = MixingMatrix::metropolis_hastings(&sched.graph_for_round(r));
                let got = sched.mixing_for_round(r);
                for i in 0..24 {
                    for j in 0..24 {
                        assert_eq!(
                            got.get(i, j),
                            expect.get(i, j),
                            "round {r}: W[{i}][{j}] diverged from fresh construction"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pairwise_matching_mixing_is_exact_pairwise_averaging() {
        // MH on a degree-≤1 graph is the ½/½ pairwise matrix — the same
        // operator async gossip applies.
        let base = random_regular(16, 4, 8);
        let rs = round_seed(11, 3, 2);
        let pairs = random_maximal_matching(&base, rs);
        let mut sched = ScheduledTopology::new(
            base.clone(),
            TopologySchedule::PairwiseMatching { seed: 11 },
        );
        let mh = sched.mixing_for_round(2);
        let pw = MixingMatrix::pairwise(16, &pairs);
        for i in 0..16 {
            for j in 0..16 {
                assert!(
                    (mh.get(i, j) - pw.get(i, j)).abs() < 1e-6,
                    "W[{i}][{j}]: MH {} vs pairwise {}",
                    mh.get(i, j),
                    pw.get(i, j)
                );
            }
        }
    }

    #[derive(Debug)]
    struct EveryOtherRoundEmpty;

    impl GraphGenerator for EveryOtherRoundEmpty {
        fn generate(&self, base: &Graph, round: usize, _round_seed: u64) -> Graph {
            if round.is_multiple_of(2) {
                base.clone()
            } else {
                Graph::empty(base.len())
            }
        }
    }

    #[test]
    fn custom_generator_drives_the_schedule() {
        let base = Graph::ring(10);
        let mut sched = ScheduledTopology::new(
            base.clone(),
            TopologySchedule::Custom {
                seed: 5,
                generator: Box::new(EveryOtherRoundEmpty),
            },
        );
        assert_eq!(sched.graph_for_round(0).edge_count(), 10);
        assert_eq!(sched.graph_for_round(1).edge_count(), 0);
        // an edgeless graph mixes as the identity — still doubly stochastic
        check_mixing(sched.mixing_for_round(1));
    }

    #[test]
    fn round_seeds_have_no_collisions_and_separate_schedules() {
        // Mirror of the PR 2 drop-stream fix: the chained construction
        // must give every (schedule id, round) pair its own stream. The
        // legacy `seed + round` form aliases (id, round) and (id, round')
        // whenever the offsets collide.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for schedule_id in 0..8u64 {
            for round in 0..4096usize {
                assert!(
                    seen.insert(round_seed(42, schedule_id, round)),
                    "collision at ({schedule_id}, {round})"
                );
            }
        }
        // chained streams must also be independent of the raw seed arithmetic:
        // seed+1 at round r must not reproduce seed at round r+1
        assert_ne!(round_seed(42, 2, 1), round_seed(43, 2, 0));
        assert_ne!(round_seed(42, 2, 1), round_seed(42, 3, 0));
    }

    #[test]
    fn long_cycles_cache_every_graph_without_thrashing() {
        // A cycle longer than the default cache capacity must still pay
        // MH construction exactly once per distinct graph — the driver
        // sizes the cache to the cycle length.
        let n = 10;
        let graphs: Vec<Graph> = (0..MIXING_CACHE_CAP + 8)
            .map(|i| crate::erdos::gnp(n, 0.5, i as u64))
            .collect();
        let count = graphs.len();
        let mut sched = ScheduledTopology::new(Graph::ring(n), TopologySchedule::Cycle(graphs));
        for r in 0..count * 3 {
            let _ = sched.mixing_for_round(r);
        }
        let (hits, misses) = sched.cache_stats();
        assert_eq!(misses as usize, count, "one MH construction per graph");
        assert_eq!(hits as usize, count * 2, "every revisit must hit");
    }

    #[test]
    fn randomized_schedules_bypass_the_cache() {
        // EdgeDropout draws an essentially fresh graph per round; caching
        // by deep graph equality would be a ~0% hit rate, so the driver
        // computes mixing into the reusable scratch slot instead.
        let base = Graph::complete(10);
        let mut sched =
            ScheduledTopology::new(base, TopologySchedule::EdgeDropout { p: 0.5, seed: 3 });
        for r in 0..MIXING_CACHE_CAP * 4 {
            let w = sched.mixing_for_round(r);
            assert!(w.stochasticity_error() < 1e-4);
        }
        let (hits, misses) = sched.cache_stats();
        assert_eq!(hits, 0);
        assert_eq!(
            misses as usize,
            MIXING_CACHE_CAP * 4,
            "every round computes"
        );
        assert!(
            sched.cache.is_empty(),
            "randomized schedules must not populate the cache"
        );
    }

    #[test]
    fn custom_schedules_derive_independent_streams_per_seed() {
        // Two experiments with different schedule seeds must hand their
        // generators different round streams (the round_seed argument),
        // even at the same round index.
        #[derive(Debug)]
        struct SeedEcho;
        impl GraphGenerator for SeedEcho {
            fn generate(&self, base: &Graph, _round: usize, round_seed: u64) -> Graph {
                // encode the stream into the graph: edge parity of seed
                let mut g = Graph::empty(base.len());
                if round_seed.is_multiple_of(2) {
                    g.add_edge(0, 1);
                } else {
                    g.add_edge(1, 2);
                }
                g
            }
        }
        let gen_for = |seed: u64| {
            ScheduledTopology::new(
                Graph::ring(6),
                TopologySchedule::Custom {
                    seed,
                    generator: Box::new(SeedEcho),
                },
            )
        };
        let streams: Vec<u64> = (0..16)
            .map(|seed| {
                let sched = gen_for(seed);
                (0..8)
                    .map(|r| sched.graph_for_round(r).has_edge(0, 1) as u64)
                    .fold(0, |acc, bit| (acc << 1) | bit)
            })
            .collect();
        let distinct: std::collections::HashSet<u64> = streams.iter().copied().collect();
        assert!(
            distinct.len() > 8,
            "custom schedules with different seeds should see different \
             round streams, got {distinct:?}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_every_scheduled_mixing_is_symmetric_doubly_stochastic(
            n in 6usize..28, d in 2usize..5, seed in 0u64..100, p in 0.1f64..0.9
        ) {
            let d = d * 2;
            prop_assume!(d < n);
            let base = random_regular(n, d, seed);
            let cycle = vec![
                base.clone(),
                crate::erdos::gnp(n, 0.4, seed ^ 0x11),
                Graph::ring(n.max(3)),
            ];
            let schedules = [
                TopologySchedule::Static,
                TopologySchedule::Cycle(cycle),
                TopologySchedule::EdgeDropout { p, seed },
                TopologySchedule::PairwiseMatching { seed },
            ];
            for schedule in schedules {
                let mut sched = ScheduledTopology::new(base.clone(), schedule);
                for round in 0..6 {
                    let w = sched.mixing_for_round(round);
                    prop_assert!(w.symmetry_error() < 1e-5);
                    prop_assert!(w.stochasticity_error() < 1e-4);
                    prop_assert!(w.is_nonnegative());
                    // doubly stochastic ⇒ scalar mean preserved
                    let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 17) as f64).collect();
                    let before: f64 = x.iter().sum();
                    let after: f64 = w.apply_scalar(&x).iter().sum();
                    prop_assert!((before - after).abs() < 1e-3 * before.max(1.0));
                }
            }
        }
    }
}
