//! Heterogeneity statistics over partitioned data (Figure 7 and §4.7).
//!
//! Every function is generic over `Borrow<Dataset>` so callers can pass
//! either owned datasets (`&[Dataset]`) or the `Arc`-shared per-node
//! datasets a `DataBundle` holds (`&[Arc<Dataset>]`) without copying.

use crate::dataset::Dataset;
use std::borrow::Borrow;

/// Per-node class histogram: `result[node][class]` = sample count.
pub fn class_distribution<D: Borrow<Dataset>>(node_datasets: &[D]) -> Vec<Vec<usize>> {
    node_datasets
        .iter()
        .map(|d| d.borrow().class_histogram())
        .collect()
}

/// Average number of distinct classes held per node.
pub fn mean_distinct_classes<D: Borrow<Dataset>>(node_datasets: &[D]) -> f64 {
    if node_datasets.is_empty() {
        return 0.0;
    }
    node_datasets
        .iter()
        .map(|d| d.borrow().distinct_classes() as f64)
        .sum::<f64>()
        / node_datasets.len() as f64
}

/// Mean total-variation distance between each node's label distribution and
/// the global label distribution. 0 = perfectly IID, →1 as skew grows.
pub fn label_skew<D: Borrow<Dataset>>(node_datasets: &[D]) -> f64 {
    if node_datasets.is_empty() {
        return 0.0;
    }
    let classes = node_datasets[0].borrow().num_classes();
    let mut global = vec![0.0f64; classes];
    let mut total = 0.0f64;
    for d in node_datasets {
        let d = d.borrow();
        for (g, c) in global.iter_mut().zip(d.class_histogram()) {
            *g += c as f64;
        }
        total += d.len() as f64;
    }
    for g in &mut global {
        *g /= total.max(1.0);
    }
    let mut acc = 0.0f64;
    for d in node_datasets {
        let d = d.borrow();
        let n = d.len().max(1) as f64;
        let tv: f64 = d
            .class_histogram()
            .iter()
            .zip(&global)
            .map(|(&c, &g)| (c as f64 / n - g).abs())
            .sum::<f64>()
            / 2.0;
        acc += tv;
    }
    acc / node_datasets.len() as f64
}

/// Rows for a Figure-7-style dot plot: `(node, class, count)` triples for
/// the first `max_nodes` nodes, skipping zero counts.
pub fn dot_plot_rows<D: Borrow<Dataset>>(
    node_datasets: &[D],
    max_nodes: usize,
) -> Vec<(usize, usize, usize)> {
    let mut rows = Vec::new();
    for (node, d) in node_datasets.iter().take(max_nodes).enumerate() {
        for (class, count) in d.borrow().class_histogram().into_iter().enumerate() {
            if count > 0 {
                rows.push((node, class, count));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_linalg::Matrix;

    fn single_class_node(class: u32, n: usize, classes: usize) -> Dataset {
        Dataset::new(Matrix::zeros(n, 2), vec![class; n], classes)
    }

    fn uniform_node(n_per_class: usize, classes: usize) -> Dataset {
        let n = n_per_class * classes;
        let labels = (0..n).map(|i| (i % classes) as u32).collect();
        Dataset::new(Matrix::zeros(n, 2), labels, classes)
    }

    #[test]
    fn skew_is_zero_for_identical_uniform_nodes() {
        let nodes = vec![uniform_node(5, 4), uniform_node(5, 4)];
        assert!(label_skew(&nodes) < 1e-9);
    }

    #[test]
    fn skew_is_high_for_single_class_nodes() {
        let nodes: Vec<Dataset> = (0..4).map(|c| single_class_node(c, 10, 4)).collect();
        let s = label_skew(&nodes);
        assert!(
            s > 0.7,
            "single-class nodes should be highly skewed, got {s}"
        );
    }

    #[test]
    fn distinct_class_means() {
        let nodes = vec![single_class_node(0, 5, 4), uniform_node(2, 4)];
        assert!((mean_distinct_classes(&nodes) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn dot_plot_skips_zeros_and_limits_nodes() {
        let nodes = vec![
            single_class_node(1, 3, 4),
            uniform_node(1, 4),
            uniform_node(1, 4),
        ];
        let rows = dot_plot_rows(&nodes, 2);
        assert!(rows.iter().all(|&(n, _, _)| n < 2));
        assert_eq!(rows.iter().filter(|&&(n, _, _)| n == 0).count(), 1);
        assert_eq!(rows.iter().filter(|&&(n, _, _)| n == 1).count(), 4);
    }

    #[test]
    fn class_distribution_shape() {
        let nodes = vec![uniform_node(2, 3)];
        let dist = class_distribution(&nodes);
        assert_eq!(dist, vec![vec![2, 2, 2]]);
    }
}
