//! Dataset container and minibatch sampling.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use skiptrain_linalg::Matrix;

/// An in-memory labelled dataset: `n × d` features and one class id per row.
#[derive(Clone, Debug)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<u32>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if row/label counts differ or any label is out of range.
    pub fn new(features: Matrix, labels: Vec<u32>, num_classes: usize) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature/label count mismatch"
        );
        assert!(num_classes >= 1, "need at least one class");
        assert!(
            labels.iter().all(|&l| (l as usize) < num_classes),
            "label out of range for {num_classes} classes"
        );
        Self {
            features,
            labels,
            num_classes,
        }
    }

    /// An empty dataset with the given feature dimension and class count.
    pub fn empty(feature_dim: usize, num_classes: usize) -> Self {
        Self::new(Matrix::zeros(0, feature_dim), Vec::new(), num_classes)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes in the task (not necessarily all present locally).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature matrix (`len × feature_dim`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Labels, one per row.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Copies the selected rows into a new dataset.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut features = Matrix::zeros(indices.len(), self.feature_dim());
        let mut labels = Vec::with_capacity(indices.len());
        for (r, &i) in indices.iter().enumerate() {
            assert!(
                i < self.len(),
                "subset index {i} out of bounds ({})",
                self.len()
            );
            features.copy_row_from(r, &self.features, i);
            labels.push(self.labels[i]);
        }
        Dataset::new(features, labels, self.num_classes)
    }

    /// Gathers a minibatch into caller-provided buffers (no allocation when
    /// shapes already match).
    pub fn gather_batch(&self, indices: &[usize], x: &mut Matrix, y: &mut Vec<u32>) {
        if x.shape() != (indices.len(), self.feature_dim()) {
            *x = Matrix::zeros(indices.len(), self.feature_dim());
        }
        y.clear();
        for (r, &i) in indices.iter().enumerate() {
            x.copy_row_from(r, &self.features, i);
            y.push(self.labels[i]);
        }
    }

    /// Splits into two disjoint datasets of `frac` / `1 - frac` of the rows,
    /// shuffled deterministically by `seed`.
    ///
    /// # Panics
    /// Panics unless `0.0 < frac < 1.0`.
    pub fn split(&self, frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(frac > 0.0 && frac < 1.0, "split fraction must be in (0, 1)");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let cut = ((self.len() as f64) * frac).round() as usize;
        let cut = cut.clamp(
            usize::from(self.len() >= 2),
            self.len().saturating_sub(1).max(1),
        );
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }

    /// Number of classes with at least one sample.
    pub fn distinct_classes(&self) -> usize {
        self.class_histogram().iter().filter(|&&c| c > 0).count()
    }

    /// Concatenates datasets with identical shape metadata.
    ///
    /// # Panics
    /// Panics if `parts` is empty or shapes disagree.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat of zero datasets");
        let dim = parts[0].feature_dim();
        let classes = parts[0].num_classes;
        let total: usize = parts.iter().map(|d| d.len()).sum();
        let mut features = Matrix::zeros(total, dim);
        let mut labels = Vec::with_capacity(total);
        let mut r = 0usize;
        for part in parts {
            assert_eq!(part.feature_dim(), dim, "concat feature dim mismatch");
            assert_eq!(part.num_classes, classes, "concat class count mismatch");
            for i in 0..part.len() {
                features.copy_row_from(r, &part.features, i);
                labels.push(part.labels[i]);
                r += 1;
            }
        }
        Dataset::new(features, labels, classes)
    }
}

/// Uniform with-replacement minibatch sampler (Line 5 of D-PSGD: "ξ ← mini-
/// batch of samples from D_i").
pub struct MinibatchSampler {
    rng: SmallRng,
    n: usize,
    batch_size: usize,
}

impl MinibatchSampler {
    /// Creates a sampler over a dataset of `n` samples.
    ///
    /// # Panics
    /// Panics if `n == 0` or `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, seed: u64) -> Self {
        assert!(n > 0, "cannot sample from an empty dataset");
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            n,
            batch_size,
        }
    }

    /// Batch size (capped at the dataset size when gathering).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Fills `out` with `batch_size` sampled indices.
    pub fn sample_into(&mut self, out: &mut Vec<usize>) {
        out.clear();
        let effective = self.batch_size.min(self.n);
        for _ in 0..effective {
            out.push(self.rng.random_range(0..self.n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        Dataset::new(features, vec![0, 1, 2, 0, 1, 2], 3)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 6);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.distinct_classes(), 3);
    }

    #[test]
    fn subset_copies_rows_and_labels() {
        let d = toy();
        let s = d.subset(&[5, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[2, 0]);
        assert_eq!(s.features().row(0), d.features().row(5));
        assert_eq!(s.features().row(1), d.features().row(0));
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = toy();
        let (a, b) = d.split(0.5, 42);
        assert_eq!(a.len() + b.len(), d.len());
        let mut all: Vec<f32> = a
            .features()
            .rows_iter()
            .chain(b.features().rows_iter())
            .map(|r| r[0])
            .collect();
        all.sort_by(f32::total_cmp);
        let mut expected: Vec<f32> = d.features().rows_iter().map(|r| r[0]).collect();
        expected.sort_by(f32::total_cmp);
        assert_eq!(all, expected);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy();
        let (a1, _) = d.split(0.5, 9);
        let (a2, _) = d.split(0.5, 9);
        assert_eq!(a1.labels(), a2.labels());
    }

    #[test]
    fn histogram_counts_labels() {
        let d = toy();
        assert_eq!(d.class_histogram(), vec![2, 2, 2]);
    }

    #[test]
    fn gather_batch_reuses_buffers() {
        let d = toy();
        let mut x = Matrix::zeros(2, 2);
        let mut y = Vec::new();
        d.gather_batch(&[1, 3], &mut x, &mut y);
        assert_eq!(y, vec![1, 0]);
        assert_eq!(x.row(0), d.features().row(1));
    }

    #[test]
    fn concat_preserves_all_samples() {
        let d = toy();
        let (a, b) = d.split(0.5, 1);
        let merged = Dataset::concat(&[&a, &b]);
        assert_eq!(merged.len(), d.len());
        assert_eq!(merged.class_histogram(), d.class_histogram());
    }

    #[test]
    fn sampler_respects_bounds_and_determinism() {
        let mut s1 = MinibatchSampler::new(10, 4, 5);
        let mut s2 = MinibatchSampler::new(10, 4, 5);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..10 {
            s1.sample_into(&mut a);
            s2.sample_into(&mut b);
            assert_eq!(a, b);
            assert_eq!(a.len(), 4);
            assert!(a.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sampler_caps_batch_at_dataset_size() {
        let mut s = MinibatchSampler::new(3, 16, 1);
        let mut out = Vec::new();
        s.sample_into(&mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new(Matrix::zeros(1, 2), vec![5], 3);
    }
}
