//! Non-IID data partitioners.
//!
//! The paper's CIFAR-10 setting uses the 2-shard partition of McMahan et
//! al.: sort samples by label, slice into `shards_per_node · n` contiguous
//! shards, deal `shards_per_node` shards to each node. With 2 shards per
//! node and 10 classes, most nodes end up with only two distinct labels —
//! the extreme label skew visible in Figure 7 (left).

use crate::dataset::Dataset;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Partitioning strategy for a shared sample pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Sort-by-label sharding (`shards_per_node = 2` is the paper's CIFAR-10
    /// setting).
    Shards {
        /// Shards dealt to each node.
        shards_per_node: usize,
    },
    /// Uniform shuffle split (the IID control).
    Iid,
    /// Dirichlet(α) label skew: for each class, node shares are drawn from
    /// a Dirichlet distribution. Small α → high skew; large α → IID-like.
    Dirichlet {
        /// Concentration parameter.
        alpha: f32,
    },
}

/// Computes per-node sample index lists for `dataset` under `partition`.
///
/// All strategies are deterministic in `seed` and cover every sample exactly
/// once.
///
/// # Panics
/// Panics if `n_nodes == 0` or the dataset has fewer samples than nodes.
pub fn partition_indices(
    dataset: &Dataset,
    n_nodes: usize,
    partition: &Partition,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(n_nodes > 0, "need at least one node");
    assert!(
        dataset.len() >= n_nodes,
        "dataset has {} samples for {} nodes",
        dataset.len(),
        n_nodes
    );
    match partition {
        Partition::Shards { shards_per_node } => {
            shard_partition(dataset, n_nodes, *shards_per_node, seed)
        }
        Partition::Iid => iid_partition(dataset.len(), n_nodes, seed),
        Partition::Dirichlet { alpha } => dirichlet_partition(dataset, n_nodes, *alpha, seed),
    }
}

/// Materializes per-node datasets from index lists.
pub fn materialize(dataset: &Dataset, indices: &[Vec<usize>]) -> Vec<Dataset> {
    indices.iter().map(|idx| dataset.subset(idx)).collect()
}

fn iid_partition(n: usize, n_nodes: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    deal_round_robin(&idx, n_nodes)
}

fn deal_round_robin(idx: &[usize], n_nodes: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::with_capacity(idx.len() / n_nodes + 1); n_nodes];
    for (k, &i) in idx.iter().enumerate() {
        out[k % n_nodes].push(i);
    }
    out
}

fn shard_partition(
    dataset: &Dataset,
    n_nodes: usize,
    shards_per_node: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(shards_per_node >= 1, "need at least one shard per node");
    // Sort indices by label (stable: ties keep original order).
    let mut by_label: Vec<usize> = (0..dataset.len()).collect();
    by_label.sort_by_key(|&i| dataset.labels()[i]);

    let n_shards = n_nodes * shards_per_node;
    assert!(
        dataset.len() >= n_shards,
        "dataset has {} samples for {} shards",
        dataset.len(),
        n_shards
    );

    // Slice into contiguous shards of (almost) equal size.
    let base = dataset.len() / n_shards;
    let extra = dataset.len() % n_shards;
    let mut shards: Vec<&[usize]> = Vec::with_capacity(n_shards);
    let mut start = 0usize;
    for s in 0..n_shards {
        let len = base + usize::from(s < extra);
        shards.push(&by_label[start..start + len]);
        start += len;
    }

    // Deal shards_per_node shuffled shards to each node.
    let mut order: Vec<usize> = (0..n_shards).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut out = vec![Vec::new(); n_nodes];
    for (k, &shard_id) in order.iter().enumerate() {
        out[k / shards_per_node].extend_from_slice(shards[shard_id]);
    }
    out
}

/// Samples from Gamma(α, 1) via the Marsaglia–Tsang method (with the
/// boosting trick for α < 1), enough for Dirichlet draws.
fn gamma_sample(rng: &mut SmallRng, alpha: f32) -> f32 {
    if alpha < 1.0 {
        // boost: Gamma(α) = Gamma(α+1) · U^{1/α}
        let u: f32 = rng.random::<f32>().max(1e-7);
        return gamma_sample(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // standard normal via Box–Muller on the fly
        let u1: f32 = (1.0 - rng.random::<f32>()).max(1e-7);
        let u2: f32 = rng.random::<f32>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f32 = rng.random::<f32>().max(1e-7);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn dirichlet_partition(
    dataset: &Dataset,
    n_nodes: usize,
    alpha: f32,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(alpha > 0.0, "dirichlet alpha must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Group indices per class, shuffled.
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
    for (i, &l) in dataset.labels().iter().enumerate() {
        per_class[l as usize].push(i);
    }
    let mut out = vec![Vec::new(); n_nodes];
    for class_idx in per_class.iter_mut() {
        class_idx.shuffle(&mut rng);
        // Node shares ~ Dirichlet(alpha).
        let mut shares: Vec<f32> = (0..n_nodes)
            .map(|_| gamma_sample(&mut rng, alpha))
            .collect();
        let total: f32 = shares.iter().sum::<f32>().max(1e-9);
        for s in &mut shares {
            *s /= total;
        }
        // Convert shares to contiguous cut points over the class samples.
        let n = class_idx.len();
        let mut start = 0usize;
        let mut acc = 0.0f32;
        for (node, &share) in shares.iter().enumerate() {
            acc += share;
            let end = if node + 1 == n_nodes {
                n
            } else {
                ((n as f32) * acc).round() as usize
            };
            let end = end.clamp(start, n);
            out[node].extend_from_slice(&class_idx[start..end]);
            start = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_linalg::Matrix;

    fn labelled_pool(per_class: usize, classes: usize) -> Dataset {
        let n = per_class * classes;
        let features = Matrix::zeros(n, 2);
        let labels: Vec<u32> = (0..n).map(|i| (i % classes) as u32).collect();
        Dataset::new(features, labels, classes)
    }

    fn assert_exact_cover(parts: &[Vec<usize>], n: usize) {
        let mut seen = vec![false; n];
        for part in parts {
            for &i in part {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "not all samples assigned");
    }

    #[test]
    fn iid_covers_all_samples_evenly() {
        let d = labelled_pool(10, 10);
        let parts = partition_indices(&d, 4, &Partition::Iid, 1);
        assert_exact_cover(&parts, d.len());
        for p in &parts {
            assert_eq!(p.len(), 25);
        }
    }

    #[test]
    fn two_shard_limits_distinct_labels() {
        // 10 classes, 2 shards/node, 20 nodes: most nodes see ≤ 3 labels
        // (a shard can straddle one class boundary).
        let d = labelled_pool(100, 10);
        let parts = partition_indices(&d, 20, &Partition::Shards { shards_per_node: 2 }, 7);
        assert_exact_cover(&parts, d.len());
        let sets = materialize(&d, &parts);
        let avg_distinct: f32 = sets
            .iter()
            .map(|s| s.distinct_classes() as f32)
            .sum::<f32>()
            / sets.len() as f32;
        assert!(
            avg_distinct <= 4.0,
            "2-shard should induce strong label skew, got avg {avg_distinct} classes"
        );
    }

    #[test]
    fn shard_partition_is_deterministic() {
        let d = labelled_pool(50, 10);
        let a = partition_indices(&d, 10, &Partition::Shards { shards_per_node: 2 }, 3);
        let b = partition_indices(&d, 10, &Partition::Shards { shards_per_node: 2 }, 3);
        assert_eq!(a, b);
        let c = partition_indices(&d, 10, &Partition::Shards { shards_per_node: 2 }, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn dirichlet_covers_everything() {
        let d = labelled_pool(40, 5);
        let parts = partition_indices(&d, 8, &Partition::Dirichlet { alpha: 0.3 }, 5);
        assert_exact_cover(&parts, d.len());
    }

    #[test]
    fn dirichlet_small_alpha_skews_more_than_large() {
        let d = labelled_pool(200, 5);
        let skewed = partition_indices(&d, 10, &Partition::Dirichlet { alpha: 0.05 }, 9);
        let smooth = partition_indices(&d, 10, &Partition::Dirichlet { alpha: 100.0 }, 9);
        let distinct = |parts: &[Vec<usize>]| -> f32 {
            materialize(&d, parts)
                .iter()
                .map(|s| s.distinct_classes() as f32)
                .sum::<f32>()
                / parts.len() as f32
        };
        assert!(
            distinct(&skewed) < distinct(&smooth),
            "alpha=0.05 ({}) should be more skewed than alpha=100 ({})",
            distinct(&skewed),
            distinct(&smooth)
        );
    }

    #[test]
    fn iid_keeps_label_balance_per_node() {
        let d = labelled_pool(100, 4);
        let parts = partition_indices(&d, 4, &Partition::Iid, 11);
        for set in materialize(&d, &parts) {
            // each node has 100 samples over 4 classes; expect ~25/class
            for c in set.class_histogram() {
                assert!(
                    (c as f32 - 25.0).abs() < 15.0,
                    "IID class count {c} too skewed"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "samples for")]
    fn rejects_more_shards_than_samples() {
        let d = labelled_pool(1, 4); // 4 samples
        let _ = partition_indices(&d, 4, &Partition::Shards { shards_per_node: 2 }, 1);
    }
}
