//! Validation/test splitting, following §4.2 of the paper.
//!
//! The paper tunes hyperparameters on a validation set "obtained by
//! extracting 50 % of the samples from the test set", keeping validation and
//! test disjoint.

use crate::dataset::Dataset;

/// Evaluation splits as used by the paper.
#[derive(Clone, Debug)]
pub struct EvalSplits {
    /// Validation set (hyperparameter tuning, Figure 3).
    pub validation: Dataset,
    /// Test set (all other reported accuracies).
    pub test: Dataset,
}

/// Splits a test pool into disjoint validation/test halves (§4.2).
pub fn split_eval(test_pool: &Dataset, seed: u64) -> EvalSplits {
    let (validation, test) = test_pool.split(0.5, seed);
    EvalSplits { validation, test }
}

/// Splits with an arbitrary validation fraction.
pub fn split_eval_frac(test_pool: &Dataset, validation_frac: f64, seed: u64) -> EvalSplits {
    let (validation, test) = test_pool.split(validation_frac, seed);
    EvalSplits { validation, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_linalg::Matrix;

    fn pool(n: usize) -> Dataset {
        let features = Matrix::from_fn(n, 3, |r, c| (r * 3 + c) as f32);
        let labels = (0..n).map(|i| (i % 4) as u32).collect();
        Dataset::new(features, labels, 4)
    }

    #[test]
    fn halves_are_disjoint_and_cover() {
        let p = pool(100);
        let s = split_eval(&p, 1);
        assert_eq!(s.validation.len(), 50);
        assert_eq!(s.test.len(), 50);
        // disjoint by construction: every feature row is unique in `pool`
        let val_ids: std::collections::HashSet<u32> = s
            .validation
            .features()
            .rows_iter()
            .map(|r| r[0] as u32)
            .collect();
        for row in s.test.features().rows_iter() {
            assert!(!val_ids.contains(&(row[0] as u32)), "split leaked a sample");
        }
    }

    #[test]
    fn custom_fraction_respected() {
        let p = pool(100);
        let s = split_eval_frac(&p, 0.2, 2);
        assert_eq!(s.validation.len(), 20);
        assert_eq!(s.test.len(), 80);
    }
}
