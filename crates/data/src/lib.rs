//! Dataset substrate for the SkipTrain reproduction.
//!
//! The paper evaluates on CIFAR-10 (under a pathological 2-shard label
//! partition) and FEMNIST (naturally partitioned by writer). Neither dataset
//! is redistributable inside this repository, so this crate generates
//! *synthetic* datasets that preserve the statistical mechanisms the paper
//! studies:
//!
//! * [`synth::cifar_like`] — a Gaussian-mixture classification task whose
//!   difficulty is tunable; combined with [`partition::Partition::Shards`]
//!   it reproduces the extreme label skew of §4.2 (most nodes hold 2 of 10
//!   classes).
//! * [`synth::femnist_like`] — a per-writer task where every node draws the
//!   same label distribution but through a private affine "handwriting
//!   style", reproducing FEMNIST's feature-skew/label-homogeneous regime
//!   (Figure 7's contrast).
//!
//! The [`dataset::Dataset`] container and [`dataset::MinibatchSampler`] are
//! shared by the training engine; [`stats`] computes the per-node class
//! histograms behind Figure 7.

pub mod dataset;
pub mod partition;
pub mod split;
pub mod stats;
pub mod synth;

pub use dataset::{Dataset, MinibatchSampler};
pub use partition::Partition;
