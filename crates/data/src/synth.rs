//! Synthetic dataset generators.
//!
//! Two generators mirror the paper's datasets (see the crate docs for the
//! substitution rationale):
//!
//! * [`cifar_like`] — a shared Gaussian-mixture task. All nodes sample from
//!   the *same* distribution; heterogeneity is injected afterwards by the
//!   [`crate::partition`] module (2-shard label skew, as in §4.2).
//! * [`femnist_like`] — per-writer data: one global mixture pushed through a
//!   per-writer affine "style" transform, so label distributions are close
//!   to homogeneous while feature distributions differ per node.

use crate::dataset::Dataset;
use rand::RngExt;
use skiptrain_linalg::{GaussianSampler, Matrix};

/// Configuration for a Gaussian-mixture classification task.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MixtureSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Sub-clusters per class; more modes make the task less linearly
    /// separable.
    pub modes_per_class: usize,
    /// Distance scale between class centers.
    pub separation: f32,
    /// Within-cluster noise standard deviation. The ratio
    /// `separation / noise` controls the Bayes accuracy of the task.
    pub noise: f32,
}

impl MixtureSpec {
    /// The CIFAR-10-like default: 10 classes, moderate overlap so accuracy
    /// plateaus well below 100 % (as CIFAR-10 does for small CNNs).
    pub fn cifar_like(feature_dim: usize) -> Self {
        Self {
            num_classes: 10,
            feature_dim,
            modes_per_class: 3,
            separation: 1.0,
            noise: 0.85,
        }
    }

    /// The FEMNIST-like default: 47 classes (digits + letters in the
    /// balanced split), somewhat easier per-class structure.
    pub fn femnist_like(feature_dim: usize) -> Self {
        Self {
            num_classes: 47,
            feature_dim,
            modes_per_class: 2,
            separation: 1.3,
            noise: 0.75,
        }
    }
}

/// The frozen ground-truth structure of a mixture task: per-class,
/// per-mode cluster centers.
///
/// Keeping the generator around lets callers draw any number of additional
/// i.i.d. datasets (train pools, test sets, per-writer sets) from the same
/// task.
pub struct MixtureTask {
    spec: MixtureSpec,
    /// `num_classes × modes_per_class` centers, each of `feature_dim`.
    centers: Vec<Vec<f32>>,
    seed: u64,
}

impl MixtureTask {
    /// Samples the task structure (cluster centers) for `spec`.
    pub fn new(spec: MixtureSpec, seed: u64) -> Self {
        assert!(spec.num_classes >= 2, "need at least two classes");
        assert!(spec.feature_dim >= 1, "need at least one feature");
        assert!(
            spec.modes_per_class >= 1,
            "need at least one mode per class"
        );
        let mut g = GaussianSampler::for_stream(seed, 0xC0FFEE);
        let mut centers = Vec::with_capacity(spec.num_classes * spec.modes_per_class);
        for _ in 0..spec.num_classes * spec.modes_per_class {
            let mut c = vec![0.0f32; spec.feature_dim];
            g.fill(&mut c);
            // Scale to `separation` so class distances are controlled
            // independently of dimension.
            let norm = skiptrain_linalg::ops::norm(&c).max(1e-6);
            for v in &mut c {
                *v *= spec.separation / norm * (spec.feature_dim as f32).sqrt();
            }
            centers.push(c);
        }
        Self {
            spec,
            centers,
            seed,
        }
    }

    /// The task spec.
    pub fn spec(&self) -> &MixtureSpec {
        &self.spec
    }

    /// Draws `n` labelled samples with uniform class priors on stream
    /// `stream` (distinct streams are independent).
    pub fn sample(&self, n: usize, stream: u64) -> Dataset {
        self.sample_with_style(n, stream, None)
    }

    /// Draws `n` samples, optionally pushing features through an affine
    /// style transform (used for per-writer data).
    pub fn sample_with_style(&self, n: usize, stream: u64, style: Option<&WriterStyle>) -> Dataset {
        let d = self.spec.feature_dim;
        let mut g = GaussianSampler::for_stream(self.seed, stream.wrapping_add(1));
        let mut features = Matrix::zeros(n, d);
        let mut labels = Vec::with_capacity(n);
        let mut buf = vec![0.0f32; d];
        for r in 0..n {
            let class = g.rng_mut().random_range(0..self.spec.num_classes);
            let mode = g.rng_mut().random_range(0..self.spec.modes_per_class);
            let center = &self.centers[class * self.spec.modes_per_class + mode];
            g.fill(&mut buf);
            let row = features.row_mut(r);
            for ((x, &c), &z) in row.iter_mut().zip(center).zip(&buf) {
                *x = c + self.spec.noise * z;
            }
            if let Some(style) = style {
                style.apply(row);
            }
            labels.push(class as u32);
        }
        Dataset::new(features, labels, self.spec.num_classes)
    }
}

/// A per-writer affine feature transform: a sparse random rotation (sequence
/// of Givens rotations) plus a bias, modelling a writer's "handwriting
/// style" in feature space.
pub struct WriterStyle {
    /// Givens rotations as `(i, j, cos, sin)` tuples.
    rotations: Vec<(usize, usize, f32, f32)>,
    bias: Vec<f32>,
}

impl WriterStyle {
    /// Samples a style of the given strength for feature dimension `d`.
    ///
    /// `strength` ∈ [0, 1]: 0 is the identity; 1 applies `d` rotations of up
    /// to ~0.5 rad and a bias of ~0.5 σ.
    pub fn sample(d: usize, strength: f32, seed: u64, stream: u64) -> Self {
        let mut g = GaussianSampler::for_stream(seed, stream.wrapping_add(0x57717E));
        let n_rot = ((d as f32) * strength).round() as usize;
        let mut rotations = Vec::with_capacity(n_rot);
        for _ in 0..n_rot {
            let i = g.rng_mut().random_range(0..d);
            let mut j = g.rng_mut().random_range(0..d);
            if i == j {
                j = (j + 1) % d;
            }
            let angle = g.sample() * 0.5 * strength;
            rotations.push((i, j, angle.cos(), angle.sin()));
        }
        let mut bias = vec![0.0f32; d];
        g.fill(&mut bias);
        for b in &mut bias {
            *b *= 0.5 * strength;
        }
        Self { rotations, bias }
    }

    /// Applies the style in place to one feature row.
    pub fn apply(&self, row: &mut [f32]) {
        for &(i, j, c, s) in &self.rotations {
            let (xi, xj) = (row[i], row[j]);
            row[i] = c * xi - s * xj;
            row[j] = s * xi + c * xj;
        }
        for (x, &b) in row.iter_mut().zip(&self.bias) {
            *x += b;
        }
    }
}

/// Generates the CIFAR-10-like global pools: `(train, test)`.
///
/// Heterogeneity is *not* applied here — partition the train pool with
/// [`crate::partition::partition_indices`] (2-shard for the paper setting).
pub fn cifar_like(
    spec: &MixtureSpec,
    train_n: usize,
    test_n: usize,
    seed: u64,
) -> (Dataset, Dataset) {
    let task = MixtureTask::new(spec.clone(), seed);
    (task.sample(train_n, 1), task.sample(test_n, 2))
}

/// Generates FEMNIST-like per-writer data: one train dataset per node (each
/// through its own style) and a global style-free test pool.
///
/// `samples_per_writer` may vary per node in reality; the paper selects the
/// top-256 writers by sample count, which we model as a uniform count.
pub fn femnist_like(
    spec: &MixtureSpec,
    n_writers: usize,
    samples_per_writer: usize,
    test_n: usize,
    style_strength: f32,
    seed: u64,
) -> (Vec<Dataset>, Dataset) {
    let task = MixtureTask::new(spec.clone(), seed);
    let mut writers = Vec::with_capacity(n_writers);
    for w in 0..n_writers {
        let style = WriterStyle::sample(spec.feature_dim, style_strength, seed, w as u64);
        writers.push(task.sample_with_style(samples_per_writer, 100 + w as u64, Some(&style)));
    }
    let test = task.sample(test_n, 3);
    (writers, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_is_deterministic_per_seed() {
        let spec = MixtureSpec::cifar_like(8);
        let a = MixtureTask::new(spec.clone(), 7).sample(20, 1);
        let b = MixtureTask::new(spec, 7).sample(20, 1);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn different_streams_are_different() {
        let spec = MixtureSpec::cifar_like(8);
        let task = MixtureTask::new(spec, 7);
        let a = task.sample(20, 1);
        let b = task.sample(20, 2);
        assert_ne!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn class_priors_are_roughly_uniform() {
        let spec = MixtureSpec::cifar_like(4);
        let task = MixtureTask::new(spec, 3);
        let d = task.sample(5000, 1);
        for count in d.class_histogram() {
            assert!(
                (count as f64 - 500.0).abs() < 150.0,
                "class count {count} far from 500"
            );
        }
    }

    #[test]
    fn task_is_learnable_by_nearest_center() {
        // Sanity: with separation >> noise a nearest-center classifier must
        // beat random guessing by a wide margin.
        let spec = MixtureSpec {
            num_classes: 4,
            feature_dim: 16,
            modes_per_class: 1,
            separation: 2.0,
            noise: 0.5,
        };
        let task = MixtureTask::new(spec.clone(), 11);
        let d = task.sample(400, 5);
        let mut correct = 0usize;
        for r in 0..d.len() {
            let row = d.features().row(r);
            let mut best = (f32::INFINITY, 0usize);
            for class in 0..spec.num_classes {
                let c = &task.centers[class]; // modes_per_class == 1
                let dist = skiptrain_linalg::ops::squared_distance(row, c);
                if dist < best.0 {
                    best = (dist, class);
                }
            }
            if best.1 == d.labels()[r] as usize {
                correct += 1;
            }
        }
        let acc = correct as f32 / d.len() as f32;
        assert!(acc > 0.9, "nearest-center accuracy {acc} too low");
    }

    #[test]
    fn writer_style_changes_features_but_not_labels() {
        let spec = MixtureSpec::femnist_like(12);
        let task = MixtureTask::new(spec.clone(), 5);
        let plain = task.sample(50, 9);
        let style = WriterStyle::sample(12, 0.8, 5, 1);
        let styled = task.sample_with_style(50, 9, Some(&style));
        assert_eq!(plain.labels(), styled.labels());
        assert_ne!(plain.features().as_slice(), styled.features().as_slice());
    }

    #[test]
    fn zero_strength_style_is_identity() {
        let style = WriterStyle::sample(6, 0.0, 1, 1);
        let mut row = vec![1.0, -2.0, 3.0, 0.5, 0.0, -1.0];
        let orig = row.clone();
        style.apply(&mut row);
        assert_eq!(row, orig);
    }

    #[test]
    fn femnist_like_produces_writers_and_test() {
        let spec = MixtureSpec::femnist_like(8);
        let (writers, test) = femnist_like(&spec, 5, 30, 100, 0.5, 2);
        assert_eq!(writers.len(), 5);
        assert!(writers.iter().all(|w| w.len() == 30));
        assert_eq!(test.len(), 100);
        // writer label distributions are near-homogeneous (all writers see
        // every class with the same prior), unlike 2-shard CIFAR
        for w in &writers {
            assert!(w.distinct_classes() > spec.num_classes / 3);
        }
    }

    #[test]
    fn styles_differ_across_writers() {
        let spec = MixtureSpec::femnist_like(8);
        let (writers, _) = femnist_like(&spec, 2, 40, 10, 0.8, 4);
        assert_ne!(
            writers[0].features().as_slice(),
            writers[1].features().as_slice()
        );
    }
}
