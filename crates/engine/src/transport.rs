//! Model exchange between neighbors: transports, compression codecs, and
//! the per-link compression policy layer.
//!
//! # Transports
//!
//! * [`TransportKind::Memory`] — neighbors read each other's half-step
//!   models directly (zero copies when the codec is lossless). This is the
//!   fast path used for large experiments; message sizes are still
//!   accounted per effective edge so energy numbers are
//!   transport-independent.
//! * [`TransportKind::Serialized`] — every message is actually encoded to a
//!   length-prefixed, checksummed byte frame (via the `bytes` crate),
//!   optionally dropped with a seeded probability, and decoded at the
//!   receiver. This path exists to (a) validate that the fidelity of the
//!   in-memory shortcut is exact, (b) exercise lossy-network behavior, and
//!   (c) measure serialization overhead in the benches.
//!
//! # Codecs and the wire format
//!
//! A [`ModelCodec`] decides how a flat `f32` model is represented in a
//! message. All codecs share one frame layout (all integers big-endian
//! except the payload words, which are little-endian):
//!
//! ```text
//! [magic  u32]  0x5354524E ("STRN")
//! [codec  u32]  0 = DenseF32, 1 = QuantizedU8, 2 = QuantizedU16, 3 = TopK
//! [sender u32]
//! [round  u32]
//! [count  u32]  original (dense) parameter count
//! --- codec-specific payload -------------------------------------------
//! DenseF32:     count × f32 LE
//! QuantizedU8:  min f32 LE, scale f32 LE, count × u8
//! QuantizedU16: min f32 LE, scale f32 LE, count × u16 LE
//! TopK:         k u32, k × (index u32 LE), k × (value f32 LE)
//! ----------------------------------------------------------------------
//! [checksum u32]  rotate-xor over the payload bytes
//! ```
//!
//! The fixed overhead (magic + codec + sender + round + count + checksum)
//! is 24 bytes and matches
//! [`skiptrain_energy::comm::FRAME_OVERHEAD_BYTES`]; per-codec message
//! sizes come from [`ModelCodec::message_bytes`] and feed the per-edge
//! energy ledger.
//!
//! Quantized payloads dequantize at decode, so the values entering the
//! receiver's aggregation carry genuine quantization error. Top-k payloads
//! stay sparse: the aggregation substitutes the receiver's own parameters
//! for untransmitted coordinates (see the executor), so sparsification
//! error propagates through training too.
//!
//! # Compression policies: which codec does a link use?
//!
//! Codec *selection* is a policy, not a scalar: a [`CompressionPolicy`]
//! is resolved **per directed link per round** by the executor, and the
//! codec id already travels in every frame header, so heterogeneous
//! links need no wire-format change. Four policies exist:
//!
//! * [`CompressionPolicy::Uniform`] — one codec for every link, the
//!   legacy global-codec behavior. This is the bit-exact fast path: the
//!   executor keeps its per-sender share phase (one payload per sender)
//!   and its single per-round byte quote, so `Uniform(c)` runs are
//!   bit-identical to the pre-policy global `codec = c` configuration.
//! * [`CompressionPolicy::PerLink`] — an explicit `(src, dst) → codec`
//!   table over a default, for heterogeneous radios.
//! * [`CompressionPolicy::RarityAdaptive`] — top-k with `k` scaled by
//!   how rarely the topology schedule fires a link: a link that fired in
//!   every round so far sends `base_k` coordinates, a link that fires a
//!   fraction `1/m` of rounds sends `min(m · base_k, max_k)` — rare
//!   links carry proportionally richer payloads so their total traffic
//!   stays level (see [`rarity_k`]).
//! * [`CompressionPolicy::EnergyAdaptive`] — DEAL-style decremental
//!   tiers: the codec is a monotone step function of the *sender's*
//!   battery charge fraction (dense when charged, progressively
//!   cheaper codecs as charge falls; see [`EnergyTier`] and
//!   [`tier_codec`]). Senders without a battery resolve at charge 1.0.
//!
//! Per-link policies compose with a consensus stepsize `γ ≤ 1` (the
//! executor's `consensus_gamma`): after aggregation the committed model
//! is `x^t = x^{t−½} + γ (Σ_j W_ji x_j^{t−½} − x^{t−½})`, the damped
//! mixing CHOCO-SGD uses to keep extreme sparsification stable. `γ = 1`
//! is plain gossip and keeps the legacy path bit-exact.
//!
//! Because the codec of a link may change *between firings* (charge
//! recovers, rarity statistics evolve), every per-link consumer —
//! error-feedback replicas, encode/decode scratch, the energy ledger's
//! per-message byte quotes — keys off the codec resolved for that
//! message rather than any global constant. The ledger charges each
//! directed edge the wire bytes of the codec that edge actually used
//! ([`ModelCodec::charged_message_bytes`]).
//!
//! # Error feedback
//!
//! [`ErrorFeedbackState`] holds the per-directed-link accumulators of
//! CHOCO-SGD-style error-feedback compression (see
//! `skiptrain_linalg::compress`): when feedback is enabled, each directed
//! link `j → i` carries a *replica* `x̂_{j→i}` — the receiver's
//! last-delivered estimate of the sender's model — and each firing
//! compresses the accumulated residual `x_j^{t−½} − x̂_{j→i}` instead of
//! the raw model, folding the delivered part back into the replica.
//! Whatever the codec failed to deliver stays in the next residual, so
//! aggressive sparsification no longer starves low-magnitude
//! coordinates. Replicas are codec-agnostic — a replica is just the
//! receiver's dense estimate of the sender's model, advanced by whatever
//! payload the round's resolved codec delivered — so a link's codec may
//! change freely between firings under a per-link policy (a dense
//! firing simply lands the replica on the sender's model exactly).
//! The state is **link-local** — it never travels on the
//! wire, so the frame layout above and every per-message byte count are
//! unchanged by feedback (a top-k frame simply carries delta values
//! instead of absolute ones).

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use skiptrain_linalg::compress::{
    dequantize_one, dequantize_u16, dequantize_u8, gather, quantize_u16, quantize_u16_into,
    quantize_u8, quantize_u8_into, top_k_indices, top_k_indices_into, AffineParams,
};
use skiptrain_linalg::rng::derive_seed;

/// Frame magic marker ("STRN").
const MAGIC: u32 = 0x5354524E;

/// Fixed per-frame overhead in bytes: magic, codec, sender, round, count,
/// checksum (4 bytes each). Defined by the energy crate's analytic helper
/// so the wire layout and energy accounting cannot drift apart.
pub const FRAME_OVERHEAD: u64 = skiptrain_energy::comm::FRAME_OVERHEAD_BYTES;

/// Byte offset where the checksummed payload begins: five big-endian `u32`
/// header words (magic, codec, sender, round, count).
const PAYLOAD_START: usize = 20;

/// Transport selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TransportKind {
    /// Zero-copy shared-memory exchange (default).
    #[default]
    Memory,
    /// Serialize/decode every message; drop each directed message
    /// independently with probability `drop_prob`, and corrupt each
    /// surviving message independently with probability `corrupt_prob`
    /// (a deterministic bit-flip in the payload, rejected by the frame
    /// checksum on the receive side and accounted exactly like a drop).
    Serialized {
        /// Per-message drop probability in `[0, 1)`.
        drop_prob: f64,
        /// Per-message corruption probability in `[0, 1)`. A corrupted
        /// frame fails checksum verification at the receiver and degrades
        /// exactly like a drop: tx is charged, rx is not, and the mixing
        /// weight folds back to self. `drop_prob + corrupt_prob` must be
        /// `< 1`.
        #[serde(default)]
        corrupt_prob: f64,
    },
}

/// The seeded outcome of one directed message on a lossy transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Frame arrives intact and is decoded.
    Delivered,
    /// Frame is lost in transit: tx charged, nothing arrives.
    Dropped,
    /// Frame arrives with flipped bits, fails the checksum verify, and is
    /// discarded by the receiver — observationally identical to a drop.
    Corrupted,
}

impl TransportKind {
    /// The fate of the directed message `src → dst` in `round`.
    /// Deterministic in `(seed, round, src, dst)`.
    ///
    /// The decision stream is derived by chaining [`derive_seed`] over the
    /// round, source, and destination, so every `(round, src, dst)` triple
    /// gets an independent avalanche-mixed stream. (An earlier linear
    /// combination `round·c + (src << 20) + dst` aliased distinct triples
    /// onto one stream at scale, correlating drop decisions across node
    /// pairs.)
    ///
    /// A **single** uniform draw is partitioned over both loss modes:
    /// `u < drop_prob` → dropped, `u < drop_prob + corrupt_prob` →
    /// corrupted, otherwise delivered. Partitioning one draw (rather than
    /// drawing twice) means a `{drop_prob: 0, corrupt_prob: p}` transport
    /// loses *exactly* the same message set as `{drop_prob: p,
    /// corrupt_prob: 0}` — the pinned corruption-equals-drop ledger
    /// equivalence tests rely on this.
    pub fn fate(&self, seed: u64, round: usize, src: usize, dst: usize) -> MessageFate {
        match self {
            TransportKind::Memory => MessageFate::Delivered,
            TransportKind::Serialized {
                drop_prob,
                corrupt_prob,
            } => {
                if *drop_prob <= 0.0 && *corrupt_prob <= 0.0 {
                    return MessageFate::Delivered;
                }
                let h = derive_seed(
                    derive_seed(derive_seed(seed ^ 0xD50F, round as u64), src as u64),
                    dst as u64,
                );
                // map to [0, 1)
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < *drop_prob {
                    MessageFate::Dropped
                } else if u < *drop_prob + *corrupt_prob {
                    MessageFate::Corrupted
                } else {
                    MessageFate::Delivered
                }
            }
        }
    }

    /// Whether the directed message `src → dst` in `round` arrives intact.
    /// Equivalent to `self.fate(..) == MessageFate::Delivered`; kept for
    /// call sites that do not distinguish drops from corruption.
    pub fn delivered(&self, seed: u64, round: usize, src: usize, dst: usize) -> bool {
        self.fate(seed, round, src, dst) == MessageFate::Delivered
    }
}

/// Flip one deterministically chosen payload bit of an encoded frame in
/// place, simulating wire corruption. The bit is selected from a further
/// [`derive_seed`] link of the per-message decision stream, constrained to
/// the payload region `[PAYLOAD_START, len)` so the header stays parseable
/// and the trailing checksum (computed over the payload at encode time) is
/// guaranteed to mismatch — [`decode_frame`] must return
/// [`DecodeError::BadChecksum`]. Frames too short to carry a payload are
/// left untouched.
///
/// Allocation-free: mutates the frame buffer in place.
pub fn corrupt_frame_in_place(frame: &mut [u8], seed: u64, round: usize, src: usize, dst: usize) {
    let payload_start = PAYLOAD_START;
    if frame.len() <= payload_start {
        return;
    }
    let h = derive_seed(
        derive_seed(derive_seed(seed ^ 0xC0F7, round as u64), src as u64),
        dst as u64,
    );
    let payload_bits = ((frame.len() - payload_start) * 8) as u64;
    let bit = h % payload_bits;
    frame[payload_start + (bit / 8) as usize] ^= 1u8 << (bit % 8);
}

/// How a model is represented inside a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ModelCodec {
    /// Bit-exact dense `f32` payload (lossless, 4 bytes/param).
    #[default]
    DenseF32,
    /// Per-tensor affine quantization to 8-bit codes (1 byte/param).
    QuantizedU8,
    /// Per-tensor affine quantization to 16-bit codes (2 bytes/param).
    QuantizedU16,
    /// Magnitude sparsification: only the `k` largest-|value| parameters
    /// travel, as (index, value) pairs (8 bytes each).
    TopK {
        /// Number of parameters to keep (clamped to the model size).
        k: usize,
    },
}

impl ModelCodec {
    /// Wire discriminant.
    fn id(&self) -> u32 {
        match self {
            ModelCodec::DenseF32 => 0,
            ModelCodec::QuantizedU8 => 1,
            ModelCodec::QuantizedU16 => 2,
            ModelCodec::TopK { .. } => 3,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelCodec::DenseF32 => "dense-f32",
            ModelCodec::QuantizedU8 => "quantized-u8",
            ModelCodec::QuantizedU16 => "quantized-u16",
            ModelCodec::TopK { .. } => "top-k",
        }
    }

    /// True when decode reproduces the encoded model bit-for-bit.
    pub fn is_lossless(&self) -> bool {
        matches!(self, ModelCodec::DenseF32)
    }

    /// Exact wire bytes of one message carrying a model of `params`
    /// parameters under this codec (frame overhead included). This is the
    /// quantity the energy ledger charges per effective edge.
    pub fn message_bytes(&self, params: usize) -> u64 {
        let p = params as u64;
        FRAME_OVERHEAD
            + match self {
                ModelCodec::DenseF32 => 4 * p,
                ModelCodec::QuantizedU8 => 8 + p,
                ModelCodec::QuantizedU16 => 8 + 2 * p,
                ModelCodec::TopK { k } => 4 + 8 * (*k as u64).min(p),
            }
    }

    /// Wire bytes to charge when the energy model accounts at a *nominal*
    /// parameter count different from the simulated model's (the engine's
    /// `nominal_params` decoupling). Fixed-rate codecs scale per parameter
    /// automatically; top-k keeps its *fraction* `k / sim_params` so the
    /// charged bytes stay consistent with the sparsification level the
    /// simulation actually applied (charging an absolute `k` sized for a
    /// small simulated model against a large nominal model would wildly
    /// understate top-k communication energy).
    pub fn charged_message_bytes(&self, sim_params: usize, charged_params: usize) -> u64 {
        match self {
            ModelCodec::TopK { k } if sim_params > 0 && charged_params != sim_params => {
                let kept = (*k).min(sim_params) as u128;
                let scaled = (kept * charged_params as u128 / sim_params as u128) as usize;
                ModelCodec::TopK { k: scaled.max(1) }.message_bytes(charged_params)
            }
            _ => self.message_bytes(charged_params),
        }
    }

    /// Applies the codec's lossy transform in memory, without framing —
    /// the `Memory`-transport equivalent of an encode/decode round trip.
    /// Returns exactly what [`decode_message`] would produce for a frame
    /// encoded from `params` (asserted by tests).
    pub fn transform(&self, params: &[f32]) -> Payload {
        match self {
            ModelCodec::DenseF32 => Payload::Dense(params.to_vec()),
            ModelCodec::QuantizedU8 => {
                let (p, codes) = quantize_u8(params);
                let mut back = Vec::new();
                dequantize_u8(p, &codes, &mut back);
                Payload::Dense(back)
            }
            ModelCodec::QuantizedU16 => {
                let (p, codes) = quantize_u16(params);
                let mut back = Vec::new();
                dequantize_u16(p, &codes, &mut back);
                Payload::Dense(back)
            }
            ModelCodec::TopK { k } => {
                let indices = top_k_indices(params, *k);
                let values = gather(params, &indices);
                Payload::Sparse { indices, values }
            }
        }
    }
}

/// One explicit entry of a [`CompressionPolicy::PerLink`] table: the codec
/// used on the directed link `src → dst`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCodec {
    /// Sender node id.
    pub src: u32,
    /// Receiver node id.
    pub dst: u32,
    /// Codec applied to every message on this directed link.
    pub codec: ModelCodec,
}

/// One rung of an [`CompressionPolicy::EnergyAdaptive`] tier table: the
/// codec a sender uses while its battery charge fraction is at least
/// `min_charge_fraction`. Tables are evaluated top-down by
/// [`tier_codec`], so entries must be sorted by *descending*
/// `min_charge_fraction`; the last entry is the floor codec used at any
/// charge below every threshold (set its threshold to `0.0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTier {
    /// Inclusive lower bound on the sender's charge fraction (0.0–1.0).
    pub min_charge_fraction: f64,
    /// Codec used while charge is at or above the bound.
    pub codec: ModelCodec,
}

/// Picks the codec for a sender at `charge_fraction` from a tier table
/// sorted by descending [`EnergyTier::min_charge_fraction`]: the first
/// tier whose threshold the charge meets wins, falling back to the last
/// (lowest) tier. A sender with no battery reports charge `1.0` and
/// always resolves the top tier.
pub fn tier_codec(tiers: &[EnergyTier], charge_fraction: f64) -> ModelCodec {
    for tier in tiers {
        if charge_fraction >= tier.min_charge_fraction {
            return tier.codec;
        }
    }
    tiers
        .last()
        .map(|t| t.codec)
        .unwrap_or(ModelCodec::DenseF32)
}

/// Top-k budget for a link that has fired `fires` times in
/// `elapsed_rounds` scheduled rounds under
/// [`CompressionPolicy::RarityAdaptive`]: a link live in roughly `1/m`
/// of rounds gets `m`× the base budget, clamped to `max_k`. Both counts
/// include the current round (the resolver bumps `fires` *before*
/// asking), so a link that fires every round always resolves `base_k`
/// and a never-before-seen link on round `r` gets the full `r`× boost.
pub fn rarity_k(base_k: usize, max_k: usize, elapsed_rounds: u64, fires: u64) -> usize {
    let boost = (elapsed_rounds / fires.max(1)).max(1) as usize;
    base_k.saturating_mul(boost).min(max_k.max(base_k))
}

/// How the codec for each directed link is chosen, resolved by the
/// executor once per round per effective edge. See the module docs for
/// the policy layer's contract; [`CompressionPolicy::Uniform`] is the
/// bit-exact legacy path equivalent to the old global
/// `SimulationConfig::codec` scalar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompressionPolicy {
    /// Every link uses the same codec every round (legacy behaviour).
    Uniform(ModelCodec),
    /// Explicit per-directed-link table; links absent from the table use
    /// `default`.
    PerLink {
        /// Codec for links not listed in `links`.
        default: ModelCodec,
        /// Explicit directed-link overrides.
        links: Vec<LinkCodec>,
    },
    /// Top-k with a budget that grows on rarely-fired links: a link live
    /// in `1/m` of scheduled rounds sends `min(m · base_k, max_k)`
    /// coordinates (see [`rarity_k`]).
    RarityAdaptive {
        /// Budget for a link that fires every round.
        base_k: usize,
        /// Hard ceiling on any link's budget.
        max_k: usize,
    },
    /// DEAL-style decremental tiers: the sender's battery charge
    /// fraction picks the codec from a descending tier table (see
    /// [`tier_codec`] and [`EnergyTier`]).
    EnergyAdaptive {
        /// Tier table, sorted by descending `min_charge_fraction`.
        tiers: Vec<EnergyTier>,
    },
}

impl Default for CompressionPolicy {
    fn default() -> Self {
        CompressionPolicy::Uniform(ModelCodec::DenseF32)
    }
}

impl CompressionPolicy {
    /// The single codec shared by every link, when the policy is
    /// [`Uniform`](CompressionPolicy::Uniform) — the executor's bit-exact
    /// legacy fast path. `None` for every adaptive policy.
    pub fn uniform(&self) -> Option<ModelCodec> {
        match self {
            CompressionPolicy::Uniform(codec) => Some(*codec),
            _ => None,
        }
    }

    /// True when [`uniform`](Self::uniform) returns `Some`.
    pub fn is_uniform(&self) -> bool {
        matches!(self, CompressionPolicy::Uniform(_))
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CompressionPolicy::Uniform(_) => "uniform",
            CompressionPolicy::PerLink { .. } => "per-link",
            CompressionPolicy::RarityAdaptive { .. } => "rarity-adaptive",
            CompressionPolicy::EnergyAdaptive { .. } => "energy-adaptive",
        }
    }

    /// The paper-default DEAL-style decremental tier table: dense while
    /// comfortably charged, then u16 → u8 → top-`k` as the battery
    /// drains past 75% / 50% / 25% of capacity.
    pub fn deal_tiers(k: usize) -> Self {
        CompressionPolicy::EnergyAdaptive {
            tiers: vec![
                EnergyTier {
                    min_charge_fraction: 0.75,
                    codec: ModelCodec::DenseF32,
                },
                EnergyTier {
                    min_charge_fraction: 0.5,
                    codec: ModelCodec::QuantizedU16,
                },
                EnergyTier {
                    min_charge_fraction: 0.25,
                    codec: ModelCodec::QuantizedU8,
                },
                EnergyTier {
                    min_charge_fraction: 0.0,
                    codec: ModelCodec::TopK { k },
                },
            ],
        }
    }
}

/// Default per-receiver replica cap for [`ErrorFeedbackState`]: how many
/// distinct in-links a receiver keeps replicas for before the
/// stalest one is evicted. Static topologies at the paper's degrees
/// (6–10) and per-round subsets of them never touch the cap; schedules
/// that cycle through many distinct graphs are bounded by it at
/// `nodes × cap` replica vectors total.
pub const DEFAULT_REPLICA_CAP: usize = 16;

/// One receiver's replica links, sorted by sender id.
///
/// The map is bounded: inserting beyond the cap evicts the link with the
/// oldest delivery round (ties broken by smallest sender id — fully
/// deterministic, independent of insertion order) and *recycles its
/// buffer* for the incoming link, so a schedule cycling through many
/// graphs neither grows replica memory without bound (the pre-cap bug)
/// nor re-allocates a model-sized vector per eviction.
#[derive(Debug, Clone, Default)]
pub struct LinkMap {
    /// Sorted by `sender`.
    entries: Vec<LinkEntry>,
    /// Evicted-link counter (staleness telemetry).
    evictions: u64,
}

#[derive(Debug, Clone)]
struct LinkEntry {
    sender: u32,
    /// Round of the most recent delivery over this link.
    last_delivery: u64,
    replica: Vec<f32>,
}

impl LinkMap {
    /// Number of live links.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no link has delivered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The replica for `sender`, if that link is live.
    pub fn get(&self, sender: u32) -> Option<&[f32]> {
        self.entries
            .binary_search_by_key(&sender, |e| e.sender)
            .ok()
            .map(|i| self.entries[i].replica.as_slice())
    }

    /// Round of the most recent delivery for `sender`'s link.
    pub fn last_delivery(&self, sender: u32) -> Option<u64> {
        self.entries
            .binary_search_by_key(&sender, |e| e.sender)
            .ok()
            .map(|i| self.entries[i].last_delivery)
    }

    /// Links evicted from this receiver so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Get-or-insert the replica for `sender`, stamping `round` as its
    /// latest delivery. A cold link (fresh, or re-established after
    /// eviction) is initialized by `init` before being returned; when the
    /// map is at `cap`, the entry with the oldest delivery round is
    /// evicted first and its allocation reused.
    pub fn replica_mut(
        &mut self,
        sender: u32,
        round: u64,
        cap: usize,
        init: impl FnOnce(&mut Vec<f32>),
    ) -> &mut Vec<f32> {
        debug_assert!(cap > 0, "replica cap must be positive");
        match self.entries.binary_search_by_key(&sender, |e| e.sender) {
            Ok(i) => {
                self.entries[i].last_delivery = round;
                &mut self.entries[i].replica
            }
            Err(_) => {
                let mut replica = if self.entries.len() >= cap {
                    // Evict the stalest link: oldest delivery round,
                    // smallest sender on ties. The sorted scan makes the
                    // choice deterministic for any history.
                    let stalest = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| (e.last_delivery, e.sender))
                        .map(|(i, _)| i)
                        // lint:allow(no_panic, "provably infallible: this branch requires entries.len() >= cap with cap > 0")
                        .expect("cap > 0 so the map is non-empty");
                    self.evictions += 1;
                    self.entries.remove(stalest).replica
                } else {
                    Vec::new()
                };
                init(&mut replica);
                // the eviction above may have shifted positions; re-derive
                let pos = self
                    .entries
                    .binary_search_by_key(&sender, |e| e.sender)
                    .expect_err("sender was absent");
                self.entries.insert(
                    pos,
                    LinkEntry {
                        sender,
                        last_delivery: round,
                        replica,
                    },
                );
                &mut self.entries[pos].replica
            }
        }
    }
}

/// Per-directed-link error-feedback accumulators (CHOCO-SGD style; see
/// the module docs).
///
/// Each active link `src → dst` owns one replica vector `x̂_{src→dst}`;
/// the accumulated residual the link will compress next is
/// `x_src − x̂_{src→dst}`. The state is stored receiver-indexed
/// (`incoming[dst]` is a [`LinkMap`] over senders) so the
/// receiver-parallel aggregation loop mutates disjoint link sets without
/// locks. Links are allocated lazily the first round their directed edge
/// delivers — static topology rows, per-round pairwise matchings,
/// scheduled time-varying graphs, and async-gossip activations alike —
/// and persist unchanged across rounds in which the link stays silent, so
/// deferred discrepancies are merged correctly under time-varying mixing.
///
/// Replica memory is **bounded**: each receiver keeps at most
/// [`cap`](ErrorFeedbackState::cap) links ([`DEFAULT_REPLICA_CAP`] unless
/// configured), evicting the stalest (oldest last delivery) when a new
/// link would exceed it. An evicted link restarts cold on its next
/// delivery — its replica re-seeds from the receiver's own pre-mixing
/// model, exactly like a first contact — which preserves the
/// masked-substitution aggregation semantics; only the link's deferred
/// residual is forgotten. (Before the cap existed, a schedule cycling
/// through many graphs grew one model-sized replica per distinct directed
/// link, without bound, and long-dormant links compressed against
/// arbitrarily stale replicas.)
#[derive(Debug, Clone)]
pub struct ErrorFeedbackState {
    beta: f32,
    cap: usize,
    incoming: Vec<LinkMap>,
}

impl ErrorFeedbackState {
    /// Creates empty feedback state for `n` nodes with replica step
    /// `beta ∈ (0, 1]` (`1.0` = full CHOCO-SGD error feedback; smaller
    /// values damp the replica tracking) and the default per-receiver
    /// replica cap ([`DEFAULT_REPLICA_CAP`]).
    ///
    /// # Panics
    /// Panics if `beta` is not a finite value in `(0, 1]`.
    pub fn new(n: usize, beta: f32) -> Self {
        Self::with_cap(n, beta, DEFAULT_REPLICA_CAP)
    }

    /// Creates empty feedback state with an explicit per-receiver replica
    /// cap (total replica memory is bounded by `n × cap` model vectors).
    ///
    /// # Panics
    /// Panics if `beta` is not a finite value in `(0, 1]` or `cap == 0`.
    pub fn with_cap(n: usize, beta: f32, cap: usize) -> Self {
        assert!(
            beta.is_finite() && beta > 0.0 && beta <= 1.0,
            "feedback beta must lie in (0, 1], got {beta}"
        );
        assert!(cap > 0, "replica cap must be positive");
        Self {
            beta,
            cap,
            incoming: vec![LinkMap::default(); n],
        }
    }

    /// The replica step / residual retention factor β.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// The per-receiver replica cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of directed links currently holding a replica (bounded by
    /// `nodes × cap`).
    pub fn active_links(&self) -> usize {
        self.incoming.iter().map(LinkMap::len).sum()
    }

    /// Total links evicted so far across all receivers.
    pub fn total_evictions(&self) -> u64 {
        self.incoming.iter().map(LinkMap::evictions).sum()
    }

    /// The replica of directed link `src → dst` (the receiver's current
    /// estimate of the sender's model), if the link is live.
    pub fn replica(&self, src: usize, dst: usize) -> Option<&[f32]> {
        self.incoming.get(dst).and_then(|m| m.get(src as u32))
    }

    /// Mutable receiver-indexed link maps (the aggregation loop zips over
    /// these in parallel with the per-receiver output buffers).
    pub(crate) fn incoming_mut(&mut self) -> &mut [LinkMap] {
        &mut self.incoming
    }
}

/// Decoded model payload, after dequantization.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A full (possibly lossily reconstructed) parameter vector.
    Dense(Vec<f32>),
    /// Top-k sparsified parameters: ascending indices with their values.
    /// Coordinates not listed were never transmitted.
    Sparse {
        /// Ascending parameter indices present in the message.
        indices: Vec<u32>,
        /// Parameter values at `indices`.
        values: Vec<f32>,
    },
}

/// Decode error taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than the fixed header.
    Truncated,
    /// Magic marker mismatch.
    BadMagic,
    /// Unknown codec discriminant.
    UnknownCodec,
    /// Payload length disagrees with the header.
    LengthMismatch,
    /// A top-k index points outside the declared parameter count, or the
    /// index list is not strictly ascending (duplicates would double-apply
    /// in the aggregation scatter).
    IndexOutOfRange,
    /// Checksum mismatch (corrupted payload).
    BadChecksum,
}

/// Decoded message header + payload.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedMessage {
    /// Sender node id.
    pub sender: u32,
    /// Round the model was produced in.
    pub round: u32,
    /// Dense parameter count of the original model.
    pub param_count: usize,
    /// The (lossily) reconstructed model.
    pub payload: Payload,
}

fn checksum_of(payload: &[u8]) -> u32 {
    let mut c = 0u32;
    for &b in payload {
        c = c.rotate_left(5) ^ b as u32;
    }
    c
}

/// Reusable intermediate buffers for [`encode_message_with`]: quantization
/// codes and top-k index scratch. Capacity is retained across calls, so a
/// long-lived scratch makes lossy-codec encoding allocation-free at
/// steady state (the dense codec never needs intermediates).
#[derive(Debug, Clone, Default)]
pub struct EncodeScratch {
    codes8: Vec<u8>,
    codes16: Vec<u16>,
    indices: Vec<u32>,
}

/// Encodes a flat model into a framed message under `codec`, writing into
/// a reusable buffer (cleared first; capacity is retained across calls).
/// Lossy codecs materialize their quantization codes / top-k indices in
/// a fresh allocation per call; [`encode_message_with`] is the fully
/// allocation-free form over a caller-held [`EncodeScratch`].
pub fn encode_message_into(
    codec: ModelCodec,
    sender: u32,
    round: u32,
    params: &[f32],
    buf: &mut Vec<u8>,
) {
    let mut scratch = EncodeScratch::default();
    encode_message_with(codec, sender, round, params, buf, &mut scratch);
}

/// Encodes a flat model into a framed message under `codec`, writing the
/// frame into `buf` and routing every codec intermediate (quantization
/// codes, top-k indices) through `scratch`. With both buffers reused
/// across calls, encoding is allocation-free at steady state for every
/// codec — the path the perf gate's codec roundtrip scenarios pin.
pub fn encode_message_with(
    codec: ModelCodec,
    sender: u32,
    round: u32,
    params: &[f32],
    buf: &mut Vec<u8>,
    scratch: &mut EncodeScratch,
) {
    #[inline]
    fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_be_bytes());
    }
    #[inline]
    fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    buf.clear();
    buf.reserve(codec.message_bytes(params.len()) as usize);
    put_u32(buf, MAGIC);
    put_u32(buf, codec.id());
    put_u32(buf, sender);
    put_u32(buf, round);
    put_u32(buf, params.len() as u32);
    let payload_start = buf.len();
    match codec {
        ModelCodec::DenseF32 => {
            for &p in params {
                put_u32_le(buf, p.to_bits());
            }
        }
        ModelCodec::QuantizedU8 => {
            let p = quantize_u8_into(params, &mut scratch.codes8);
            put_u32_le(buf, p.min.to_bits());
            put_u32_le(buf, p.scale.to_bits());
            buf.extend_from_slice(&scratch.codes8);
        }
        ModelCodec::QuantizedU16 => {
            let p = quantize_u16_into(params, &mut scratch.codes16);
            put_u32_le(buf, p.min.to_bits());
            put_u32_le(buf, p.scale.to_bits());
            for &c in &scratch.codes16 {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        ModelCodec::TopK { k } => {
            top_k_indices_into(params, k, &mut scratch.indices);
            put_u32(buf, scratch.indices.len() as u32);
            for &i in &scratch.indices {
                put_u32_le(buf, i);
            }
            for &i in &scratch.indices {
                put_u32_le(buf, params[i as usize].to_bits());
            }
        }
    }
    let checksum = checksum_of(&buf[payload_start..]);
    put_u32(buf, checksum);
    debug_assert_eq!(buf.len() as u64, codec.message_bytes(params.len()));
}

/// Encodes a flat model into a framed message under `codec` (see the
/// module docs for the wire layout).
pub fn encode_message(codec: ModelCodec, sender: u32, round: u32, params: &[f32]) -> Bytes {
    let mut buf = Vec::new();
    encode_message_into(codec, sender, round, params, &mut buf);
    Bytes::from(buf)
}

/// Byte-slice cursor used by [`decode_frame`]; bounds were validated
/// against the header before parsing starts.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> &'a [u8] {
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        out
    }

    fn get_u32(&mut self) -> u32 {
        // lint:allow(no_panic, "take(4) returns exactly 4 bytes, so the array conversion cannot fail")
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        // lint:allow(no_panic, "take(4) returns exactly 4 bytes, so the array conversion cannot fail")
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u16_le(&mut self) -> u16 {
        // lint:allow(no_panic, "take(2) returns exactly 2 bytes, so the array conversion cannot fail")
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
}

/// Reusable decode-side payload buffers for [`decode_frame_into`].
/// Capacity is retained across calls, so a long-lived scratch makes
/// frame decoding allocation-free at steady state.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    dense: Vec<f32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

/// A decoded payload borrowing a [`DecodeScratch`]'s buffers.
#[derive(Debug, PartialEq)]
pub enum PayloadRef<'a> {
    /// A full (possibly lossily reconstructed) parameter vector.
    Dense(&'a [f32]),
    /// Top-k sparsified parameters: ascending indices with their values.
    Sparse {
        /// Ascending parameter indices present in the message.
        indices: &'a [u32],
        /// Parameter values at `indices`.
        values: &'a [f32],
    },
}

/// Decoded message header + borrowed payload (the allocation-free
/// counterpart of [`DecodedMessage`]).
#[derive(Debug, PartialEq)]
pub struct DecodedMessageRef<'a> {
    /// Sender node id.
    pub sender: u32,
    /// Round the model was produced in.
    pub round: u32,
    /// Dense parameter count of the original model.
    pub param_count: usize,
    /// The (lossily) reconstructed model, borrowing `scratch`.
    pub payload: PayloadRef<'a>,
}

/// Decodes a frame produced by [`encode_message`] from a borrowed byte
/// slice, dequantizing lossy payloads into the values the receiver will
/// aggregate. [`decode_message`] is the owned-`Bytes` wrapper; for
/// steady-state allocation-free decoding, use [`decode_frame_into`] with
/// a reused [`DecodeScratch`] — this function is its fresh-buffer
/// wrapper.
pub fn decode_frame(frame: &[u8]) -> Result<DecodedMessage, DecodeError> {
    let mut scratch = DecodeScratch::default();
    let msg = decode_frame_into(frame, &mut scratch)?;
    let (sender, round, param_count) = (msg.sender, msg.round, msg.param_count);
    let sparse = matches!(msg.payload, PayloadRef::Sparse { .. });
    let payload = if sparse {
        Payload::Sparse {
            indices: scratch.indices,
            values: scratch.values,
        }
    } else {
        Payload::Dense(scratch.dense)
    };
    Ok(DecodedMessage {
        sender,
        round,
        param_count,
        payload,
    })
}

/// Decodes a frame into reusable caller buffers: the payload lands in
/// `scratch` (cleared first, capacity retained) and the returned message
/// borrows it. With a long-lived scratch this path performs no heap
/// allocation, which is what keeps the perf gate's codec roundtrip
/// scenarios at a zero alloc proxy.
pub fn decode_frame_into<'a>(
    frame: &[u8],
    scratch: &'a mut DecodeScratch,
) -> Result<DecodedMessageRef<'a>, DecodeError> {
    if frame.len() < FRAME_OVERHEAD as usize {
        return Err(DecodeError::Truncated);
    }
    let mut r = Reader { buf: frame, pos: 0 };
    if r.get_u32() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let codec_id = r.get_u32();
    let sender = r.get_u32();
    let round = r.get_u32();
    let count = r.get_u32() as usize;
    // All that remains is payload + 4-byte checksum. Verify the checksum
    // *before* parsing: corruption then deterministically reports
    // `BadChecksum`, and corrupt payloads are never allocated or
    // dequantized.
    let body = &frame[r.pos..];
    if body.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let payload_len = body.len() - 4;
    // lint:allow(no_panic, "payload_len = body.len() - 4, so the trailing slice is exactly 4 bytes")
    let expected = u32::from_be_bytes(body[payload_len..].try_into().expect("4 trailing bytes"));
    if checksum_of(&body[..payload_len]) != expected {
        return Err(DecodeError::BadChecksum);
    }
    let payload = match codec_id {
        0 => {
            if payload_len != count * 4 {
                return Err(DecodeError::LengthMismatch);
            }
            scratch.dense.clear();
            scratch.dense.reserve(count);
            for _ in 0..count {
                scratch.dense.push(f32::from_bits(r.get_u32_le()));
            }
            PayloadRef::Dense(&scratch.dense)
        }
        1 | 2 => {
            let width = if codec_id == 1 { 1 } else { 2 };
            if payload_len != 8 + count * width {
                return Err(DecodeError::LengthMismatch);
            }
            let p = AffineParams {
                min: f32::from_bits(r.get_u32_le()),
                scale: f32::from_bits(r.get_u32_le()),
            };
            scratch.dense.clear();
            scratch.dense.reserve(count);
            if codec_id == 1 {
                for _ in 0..count {
                    scratch.dense.push(dequantize_one(p, r.get_u8() as u32));
                }
            } else {
                for _ in 0..count {
                    scratch.dense.push(dequantize_one(p, r.get_u16_le() as u32));
                }
            }
            PayloadRef::Dense(&scratch.dense)
        }
        3 => {
            if payload_len < 4 {
                return Err(DecodeError::LengthMismatch);
            }
            let k = r.get_u32() as usize;
            if payload_len != 4 + 8 * k {
                return Err(DecodeError::LengthMismatch);
            }
            scratch.indices.clear();
            scratch.indices.reserve(k);
            for _ in 0..k {
                let idx = r.get_u32_le();
                // strictly ascending: rejects out-of-range *and* duplicate
                // indices, which would double-apply in the scatter kernels
                if idx as usize >= count || scratch.indices.last().is_some_and(|&prev| prev >= idx)
                {
                    return Err(DecodeError::IndexOutOfRange);
                }
                scratch.indices.push(idx);
            }
            scratch.values.clear();
            scratch.values.reserve(k);
            for _ in 0..k {
                scratch.values.push(f32::from_bits(r.get_u32_le()));
            }
            PayloadRef::Sparse {
                indices: &scratch.indices,
                values: &scratch.values,
            }
        }
        _ => return Err(DecodeError::UnknownCodec),
    };
    Ok(DecodedMessageRef {
        sender,
        round,
        param_count: count,
        payload,
    })
}

/// Decodes a frame produced by [`encode_message`], dequantizing lossy
/// payloads into the values the receiver will aggregate.
pub fn decode_message(frame: Bytes) -> Result<DecodedMessage, DecodeError> {
    decode_frame(frame.as_slice())
}

/// Decoded dense message (legacy shape kept for tests and benches).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedModel {
    /// Sender node id.
    pub sender: u32,
    /// Round the model was produced in.
    pub round: u32,
    /// Flat model parameters.
    pub params: Vec<f32>,
}

/// Encodes a flat model with the lossless [`ModelCodec::DenseF32`] codec.
pub fn encode_model(sender: u32, round: u32, params: &[f32]) -> Bytes {
    encode_message(ModelCodec::DenseF32, sender, round, params)
}

/// Decodes a dense frame produced by [`encode_model`]. Sparse (top-k)
/// frames are reconstructed with zeros at untransmitted coordinates; use
/// [`decode_message`] when the sparse structure matters.
pub fn decode_model(frame: Bytes) -> Result<DecodedModel, DecodeError> {
    let msg = decode_message(frame)?;
    let params = match msg.payload {
        Payload::Dense(params) => params,
        Payload::Sparse { indices, values } => {
            let mut params = vec![0.0f32; msg.param_count];
            for (&i, &v) in indices.iter().zip(&values) {
                params[i as usize] = v;
            }
            params
        }
    };
    Ok(DecodedModel {
        sender: msg.sender,
        round: msg.round,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_CODECS: [ModelCodec; 4] = [
        ModelCodec::DenseF32,
        ModelCodec::QuantizedU8,
        ModelCodec::QuantizedU16,
        ModelCodec::TopK { k: 3 },
    ];

    #[test]
    fn tier_codec_walks_the_table_top_down() {
        let CompressionPolicy::EnergyAdaptive { tiers } = CompressionPolicy::deal_tiers(32) else {
            panic!("deal_tiers is energy-adaptive");
        };
        assert_eq!(tier_codec(&tiers, 1.0), ModelCodec::DenseF32);
        assert_eq!(tier_codec(&tiers, 0.75), ModelCodec::DenseF32);
        assert_eq!(tier_codec(&tiers, 0.74), ModelCodec::QuantizedU16);
        assert_eq!(tier_codec(&tiers, 0.5), ModelCodec::QuantizedU16);
        assert_eq!(tier_codec(&tiers, 0.3), ModelCodec::QuantizedU8);
        assert_eq!(tier_codec(&tiers, 0.1), ModelCodec::TopK { k: 32 });
        assert_eq!(tier_codec(&tiers, 0.0), ModelCodec::TopK { k: 32 });
        // A table whose lowest threshold is above the charge still
        // resolves its last entry (the floor codec).
        let no_floor = [EnergyTier {
            min_charge_fraction: 0.9,
            codec: ModelCodec::QuantizedU8,
        }];
        assert_eq!(tier_codec(&no_floor, 0.2), ModelCodec::QuantizedU8);
        assert_eq!(tier_codec(&[], 0.5), ModelCodec::DenseF32);
    }

    #[test]
    fn rarity_k_boosts_rare_links_and_clamps() {
        // Fires every round: no boost.
        assert_eq!(rarity_k(16, 256, 10, 10), 16);
        // Fires every 4th round: 4x.
        assert_eq!(rarity_k(16, 256, 40, 10), 64);
        // Very rare link clamps at max_k.
        assert_eq!(rarity_k(16, 256, 1000, 1), 256);
        // Zero fires is treated as one (current round counts).
        assert_eq!(rarity_k(16, 256, 8, 0), 128);
        // max_k below base_k never shrinks the base budget.
        assert_eq!(rarity_k(16, 8, 100, 1), 16);
    }

    #[test]
    fn uniform_policy_exposes_its_codec() {
        let p = CompressionPolicy::Uniform(ModelCodec::TopK { k: 5 });
        assert!(p.is_uniform());
        assert_eq!(p.uniform(), Some(ModelCodec::TopK { k: 5 }));
        assert_eq!(p.name(), "uniform");
        for adaptive in [
            CompressionPolicy::PerLink {
                default: ModelCodec::DenseF32,
                links: vec![],
            },
            CompressionPolicy::RarityAdaptive {
                base_k: 8,
                max_k: 64,
            },
            CompressionPolicy::deal_tiers(8),
        ] {
            assert!(!adaptive.is_uniform());
            assert_eq!(adaptive.uniform(), None);
        }
        assert_eq!(
            CompressionPolicy::default(),
            CompressionPolicy::Uniform(ModelCodec::DenseF32)
        );
    }

    #[test]
    fn compression_policy_serde_roundtrips() {
        let policies = [
            CompressionPolicy::Uniform(ModelCodec::QuantizedU16),
            CompressionPolicy::PerLink {
                default: ModelCodec::DenseF32,
                links: vec![LinkCodec {
                    src: 0,
                    dst: 3,
                    codec: ModelCodec::TopK { k: 7 },
                }],
            },
            CompressionPolicy::RarityAdaptive {
                base_k: 16,
                max_k: 128,
            },
            CompressionPolicy::deal_tiers(64),
        ];
        for p in policies {
            let json = serde_json::to_string(&p).unwrap();
            let back: CompressionPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let params = vec![1.5f32, -0.25, f32::MIN_POSITIVE, 0.0, 1e30];
        let frame = encode_model(7, 42, &params);
        let decoded = decode_model(frame).unwrap();
        assert_eq!(decoded.sender, 7);
        assert_eq!(decoded.round, 42);
        assert_eq!(decoded.params, params);
    }

    #[test]
    fn empty_model_roundtrips() {
        let decoded = decode_model(encode_model(0, 0, &[])).unwrap();
        assert!(decoded.params.is_empty());
    }

    #[test]
    fn frame_lengths_match_message_bytes() {
        let params: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        for codec in ALL_CODECS {
            let frame = encode_message(codec, 1, 2, &params);
            assert_eq!(
                frame.len() as u64,
                codec.message_bytes(params.len()),
                "{codec:?}"
            );
        }
        assert_eq!(
            ModelCodec::DenseF32.message_bytes(100),
            skiptrain_energy::comm::model_message_bytes(100),
            "dense wire size must match the energy crate's analytic helper"
        );
        assert_eq!(FRAME_OVERHEAD, skiptrain_energy::comm::FRAME_OVERHEAD_BYTES);
    }

    #[test]
    fn top_k_message_bytes_clamps_k() {
        assert_eq!(
            ModelCodec::TopK { k: 1000 }.message_bytes(10),
            ModelCodec::TopK { k: 10 }.message_bytes(10)
        );
    }

    #[test]
    fn charged_bytes_scale_top_k_fraction_to_nominal_model() {
        // keeping 50% of a 1,000-param simulated model must charge 50% of
        // the nominal model, not an absolute 500 params
        let codec = ModelCodec::TopK { k: 500 };
        assert_eq!(
            codec.charged_message_bytes(1000, 90_000),
            ModelCodec::TopK { k: 45_000 }.message_bytes(90_000)
        );
        // same scale → identity
        assert_eq!(
            codec.charged_message_bytes(1000, 1000),
            codec.message_bytes(1000)
        );
        // fixed-rate codecs are ratio-preserving already
        assert_eq!(
            ModelCodec::QuantizedU8.charged_message_bytes(1000, 90_000),
            ModelCodec::QuantizedU8.message_bytes(90_000)
        );
        // a tiny fraction never rounds to zero kept parameters
        assert_eq!(
            ModelCodec::TopK { k: 1 }.charged_message_bytes(1_000_000, 10),
            ModelCodec::TopK { k: 1 }.message_bytes(10)
        );
    }

    #[test]
    fn transform_matches_wire_roundtrip_for_all_codecs() {
        let params: Vec<f32> = (0..200)
            .map(|i| ((i * 13 % 29) as f32 - 14.0) / 3.0)
            .collect();
        for codec in ALL_CODECS {
            let wire = decode_message(encode_message(codec, 0, 0, &params))
                .unwrap()
                .payload;
            assert_eq!(wire, codec.transform(&params), "{codec:?}");
        }
    }

    #[test]
    fn quantized_decode_error_is_bounded() {
        let params: Vec<f32> = (0..512).map(|i| (i as f32 * 0.11).sin() * 2.0).collect();
        let decoded = decode_model(encode_message(ModelCodec::QuantizedU8, 0, 0, &params)).unwrap();
        let step = (4.0f32) / 255.0; // range [-2, 2] over 255 steps
        for (a, b) in params.iter().zip(&decoded.params) {
            assert!(
                (a - b).abs() <= step,
                "error {} > step {step}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn top_k_payload_is_sorted_and_maximal() {
        let params = [0.1f32, -9.0, 0.2, 5.0, -0.3];
        let msg = decode_message(encode_message(ModelCodec::TopK { k: 2 }, 0, 0, &params)).unwrap();
        assert_eq!(msg.param_count, 5);
        match msg.payload {
            Payload::Sparse { indices, values } => {
                assert_eq!(indices, vec![1, 3]);
                assert_eq!(values, vec![-9.0, 5.0]);
            }
            other => panic!("expected sparse payload, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        // checksum is verified before parsing, so a flipped payload byte
        // reports BadChecksum deterministically for every codec
        for codec in ALL_CODECS {
            let frame = encode_message(codec, 1, 2, &[1.0, 2.0, 3.0, -4.0]);
            let mut bytes = frame.to_vec();
            let mid = FRAME_OVERHEAD as usize / 2 + 12; // inside the payload
            bytes[mid] ^= 0xFF;
            let err = decode_message(Bytes::from(bytes)).unwrap_err();
            assert_eq!(err, DecodeError::BadChecksum, "{codec:?}");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let frame = encode_model(1, 2, &[1.0]);
        let short = frame.slice(0..10);
        assert_eq!(decode_message(short).unwrap_err(), DecodeError::Truncated);
        // clipping shifts payload bytes into the checksum slot, which the
        // up-front checksum verification catches before any length logic
        let clipped = frame.slice(0..frame.len() - 4);
        assert_eq!(
            decode_message(clipped).unwrap_err(),
            DecodeError::BadChecksum
        );
        // a length lie with a *valid* checksum is what LengthMismatch is for
        let lied = retamper(frame, |bytes| bytes[19] = 2); // count 1 -> 2
        assert_eq!(
            decode_message(lied).unwrap_err(),
            DecodeError::LengthMismatch
        );
    }

    #[test]
    fn bad_magic_and_unknown_codec_are_detected() {
        let frame = encode_model(1, 2, &[1.0]);
        let mut bytes = frame.to_vec();
        bytes[0] = 0;
        assert_eq!(
            decode_message(Bytes::from(bytes)).unwrap_err(),
            DecodeError::BadMagic
        );
        let mut bytes = frame.to_vec();
        bytes[7] = 99; // codec discriminant (big-endian u32 at offset 4)
        assert_eq!(
            decode_message(Bytes::from(bytes)).unwrap_err(),
            DecodeError::UnknownCodec
        );
    }

    /// Tampers with a frame's payload and rewrites a valid trailing
    /// checksum, so decode exercises the semantic checks behind it.
    fn retamper(frame: Bytes, patch: impl FnOnce(&mut [u8])) -> Bytes {
        let mut bytes = frame.to_vec();
        let payload_end = bytes.len() - 4;
        patch(&mut bytes);
        let checksum = checksum_of(&bytes[20..payload_end]);
        bytes[payload_end..].copy_from_slice(&checksum.to_be_bytes());
        Bytes::from(bytes)
    }

    #[test]
    fn out_of_range_sparse_index_is_rejected() {
        let params = [1.0f32, 2.0, 3.0];
        let frame = encode_message(ModelCodec::TopK { k: 2 }, 0, 0, &params);
        // first index is at header 20 + k field 4 = offset 24, LE
        let bad = retamper(frame, |bytes| bytes[24] = 200);
        assert_eq!(
            decode_message(bad).unwrap_err(),
            DecodeError::IndexOutOfRange
        );
    }

    #[test]
    fn duplicate_sparse_indices_are_rejected() {
        let params = [5.0f32, 4.0, 3.0];
        let frame = encode_message(ModelCodec::TopK { k: 2 }, 0, 0, &params);
        // encoded indices are [0, 1]; duplicate the first (offsets 24, 28)
        let dup = retamper(frame, |bytes| bytes[28] = bytes[24]);
        assert_eq!(
            decode_message(dup).unwrap_err(),
            DecodeError::IndexOutOfRange
        );
    }

    #[test]
    fn feedback_state_allocates_links_lazily() {
        let mut fb = ErrorFeedbackState::new(4, 1.0);
        assert_eq!(fb.active_links(), 0);
        assert!(fb.replica(0, 1).is_none());
        fb.incoming_mut()[1].replica_mut(0, 0, DEFAULT_REPLICA_CAP, |r| {
            r.extend_from_slice(&[0.5, -0.5]);
        });
        assert_eq!(fb.active_links(), 1);
        assert_eq!(fb.replica(0, 1), Some(&[0.5, -0.5][..]));
        assert!(fb.replica(1, 0).is_none(), "links are directed");
        assert_eq!(fb.beta(), 1.0);
        assert_eq!(fb.cap(), DEFAULT_REPLICA_CAP);
    }

    #[test]
    #[should_panic(expected = "feedback beta")]
    fn feedback_state_rejects_out_of_range_beta() {
        let _ = ErrorFeedbackState::new(2, 1.5);
    }

    #[test]
    #[should_panic(expected = "replica cap")]
    fn feedback_state_rejects_zero_cap() {
        let _ = ErrorFeedbackState::with_cap(2, 1.0, 0);
    }

    #[test]
    fn link_map_caps_and_evicts_the_stalest_link() {
        let mut m = LinkMap::default();
        // deliveries: sender 5 @ round 0, sender 2 @ round 1, sender 9 @ round 2
        for (round, sender) in [(0u64, 5u32), (1, 2), (2, 9)] {
            m.replica_mut(sender, round, 3, |r| {
                r.clear();
                r.push(sender as f32);
            });
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.evictions(), 0);
        // refresh sender 5 at round 3: it is no longer the stalest
        m.replica_mut(5, 3, 3, |_| panic!("live link must not re-init"));
        // a fourth sender evicts sender 2 (oldest delivery, round 1)
        m.replica_mut(7, 4, 3, |r| {
            r.clear();
            r.push(7.0);
        });
        assert_eq!(m.len(), 3, "cap holds");
        assert_eq!(m.evictions(), 1);
        assert!(m.get(2).is_none(), "stalest link evicted");
        assert_eq!(m.get(5), Some(&[5.0f32][..]), "refreshed link survives");
        assert_eq!(m.get(7), Some(&[7.0f32][..]));
        assert_eq!(m.last_delivery(7), Some(4));
        // the evicted link restarts cold: re-delivery runs init again
        let mut re_inited = false;
        m.replica_mut(2, 5, 3, |r| {
            re_inited = true;
            r.clear();
            r.push(-2.0);
        });
        assert!(re_inited, "evicted link must re-seed on return");
        assert_eq!(m.evictions(), 2, "returning link evicts the next stalest");
    }

    #[test]
    fn link_map_eviction_recycles_buffers() {
        // Steady-state churn must not allocate: the evicted replica's
        // buffer is handed to the incoming link.
        let mut m = LinkMap::default();
        for sender in 0..4u32 {
            m.replica_mut(sender, sender as u64, 4, |r| {
                r.clear();
                r.resize(64, sender as f32);
            });
        }
        for round in 4..40u64 {
            let sender = 4 + (round % 8) as u32;
            let mut saw_capacity = 0;
            m.replica_mut(sender, round, 4, |r| {
                saw_capacity = r.capacity();
                r.clear();
                r.resize(64, 1.0);
            });
            assert!(
                saw_capacity >= 64,
                "round {round}: recycled buffer lost its capacity"
            );
        }
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn feedback_state_active_links_stay_under_node_cap_product() {
        let n = 6;
        let cap = 2;
        let mut fb = ErrorFeedbackState::with_cap(n, 1.0, cap);
        for round in 0..50u64 {
            for dst in 0..n {
                let src = ((round as usize + dst) % (n - 1)) as u32;
                fb.incoming_mut()[dst].replica_mut(src, round, cap, |r| {
                    r.clear();
                    r.resize(8, 0.0);
                });
            }
        }
        assert!(fb.active_links() <= n * cap);
        assert!(fb.total_evictions() > 0, "churn must have evicted");
    }

    #[test]
    fn memory_transport_never_drops() {
        let t = TransportKind::Memory;
        for r in 0..100 {
            assert!(t.delivered(1, r, 0, 1));
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let t = TransportKind::Serialized {
            drop_prob: 0.3,
            corrupt_prob: 0.0,
        };
        let mut dropped = 0usize;
        let total = 20_000;
        for r in 0..total {
            if !t.delivered(9, r, 3, 5) {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate} far from 0.3");
    }

    #[test]
    fn drop_decisions_are_deterministic() {
        let t = TransportKind::Serialized {
            drop_prob: 0.5,
            corrupt_prob: 0.0,
        };
        for r in 0..50 {
            assert_eq!(t.delivered(4, r, 1, 2), t.delivered(4, r, 1, 2));
        }
    }

    #[test]
    fn zero_drop_prob_delivers_everything() {
        let t = TransportKind::Serialized {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
        };
        assert!((0..1000).all(|r| t.delivered(1, r, 0, 1)));
    }

    #[test]
    fn drop_streams_have_no_pairwise_collisions() {
        // The legacy stream `round·0x1_0000_0001 + (src << 20) + dst`
        // aliased distinct (round, src, dst) triples; the chained
        // derive_seed construction must give every triple its own stream.
        use std::collections::HashSet;
        let mut streams = HashSet::new();
        for round in 0..64usize {
            for src in 0..32usize {
                for dst in 0..32usize {
                    if src == dst {
                        continue;
                    }
                    let h = derive_seed(
                        derive_seed(derive_seed(7 ^ 0xD50F, round as u64), src as u64),
                        dst as u64,
                    );
                    assert!(
                        streams.insert(h),
                        "stream collision at ({round}, {src}, {dst})"
                    );
                }
            }
        }
    }

    #[test]
    fn opposite_directions_decide_independently() {
        // src→dst and dst→src must look like independent coins: for
        // p = 0.5 they agree about half the time, never always.
        let t = TransportKind::Serialized {
            drop_prob: 0.5,
            corrupt_prob: 0.0,
        };
        let total = 20_000;
        let agree = (0..total)
            .filter(|&r| t.delivered(3, r, 1, 2) == t.delivered(3, r, 2, 1))
            .count();
        let rate = agree as f64 / total as f64;
        assert!(
            (rate - 0.5).abs() < 0.03,
            "directional agreement {rate} far from independent 0.5"
        );
    }

    #[test]
    fn corruption_rate_tracks_probability() {
        let t = TransportKind::Serialized {
            drop_prob: 0.1,
            corrupt_prob: 0.2,
        };
        let total = 20_000;
        let (mut dropped, mut corrupted) = (0usize, 0usize);
        for r in 0..total {
            match t.fate(11, r, 2, 7) {
                MessageFate::Dropped => dropped += 1,
                MessageFate::Corrupted => corrupted += 1,
                MessageFate::Delivered => {}
            }
        }
        let drop_rate = dropped as f64 / total as f64;
        let corrupt_rate = corrupted as f64 / total as f64;
        assert!(
            (drop_rate - 0.1).abs() < 0.03,
            "drop rate {drop_rate} far from 0.1"
        );
        assert!(
            (corrupt_rate - 0.2).abs() < 0.03,
            "corruption rate {corrupt_rate} far from 0.2"
        );
    }

    #[test]
    fn corruption_loses_the_same_messages_as_an_equivalent_drop() {
        // One partitioned draw: {drop: 0, corrupt: p} must lose exactly
        // the message set {drop: p, corrupt: 0} loses — the pinned
        // corruption-equals-drop ledger equivalence rides on this.
        let corrupting = TransportKind::Serialized {
            drop_prob: 0.0,
            corrupt_prob: 0.35,
        };
        let dropping = TransportKind::Serialized {
            drop_prob: 0.35,
            corrupt_prob: 0.0,
        };
        for r in 0..500 {
            for (src, dst) in [(0, 1), (1, 0), (2, 5)] {
                assert_eq!(
                    corrupting.delivered(21, r, src, dst),
                    dropping.delivered(21, r, src, dst),
                );
                let f = corrupting.fate(21, r, src, dst);
                let d = dropping.fate(21, r, src, dst);
                assert_eq!(
                    f == MessageFate::Corrupted,
                    d == MessageFate::Dropped,
                    "loss sets diverged at ({r}, {src}, {dst})"
                );
            }
        }
    }

    #[test]
    fn pure_drop_fate_matches_legacy_delivered_stream() {
        // With corrupt_prob = 0 the partitioned draw reduces to the
        // original `u >= drop_prob` decision — every seeded run pinned
        // before corruption existed keeps its exact loss pattern.
        let t = TransportKind::Serialized {
            drop_prob: 0.3,
            corrupt_prob: 0.0,
        };
        for r in 0..1000 {
            let h = derive_seed(derive_seed(derive_seed(9 ^ 0xD50F, r as u64), 3), 5);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            assert_eq!(t.delivered(9, r, 3, 5), u >= 0.3);
            assert_eq!(
                t.fate(9, r, 3, 5),
                if u < 0.3 {
                    MessageFate::Dropped
                } else {
                    MessageFate::Delivered
                }
            );
        }
    }

    #[test]
    fn corrupted_frame_fails_checksum_for_every_codec() {
        let params: Vec<f32> = (0..257).map(|i| (i as f32 * 0.37).sin()).collect();
        for codec in [
            ModelCodec::DenseF32,
            ModelCodec::QuantizedU8,
            ModelCodec::QuantizedU16,
            ModelCodec::TopK { k: 32 },
        ] {
            for r in 0..16usize {
                let mut frame = encode_message(codec, 3, r as u32, &params).to_vec();
                corrupt_frame_in_place(&mut frame, 77, r, 3, 5);
                assert!(
                    matches!(decode_frame(&frame), Err(DecodeError::BadChecksum)),
                    "corrupted {codec:?} frame round {r} must fail checksum"
                );
            }
        }
    }

    #[test]
    fn corruption_bit_flip_is_deterministic_and_self_inverse() {
        let params: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let clean = encode_message(ModelCodec::DenseF32, 1, 4, &params).to_vec();
        let mut a = clean.clone();
        let mut b = clean.clone();
        corrupt_frame_in_place(&mut a, 5, 4, 1, 2);
        corrupt_frame_in_place(&mut b, 5, 4, 1, 2);
        assert_eq!(a, b, "same stream must flip the same bit");
        assert_ne!(a, clean);
        // XOR is self-inverse: flipping again restores the frame bit-exactly.
        corrupt_frame_in_place(&mut a, 5, 4, 1, 2);
        assert_eq!(a, clean);
        // Header stays parseable: only payload bytes may change.
        assert_eq!(&b[..PAYLOAD_START], &clean[..PAYLOAD_START]);
        assert_eq!(&b[b.len() - 4..], &clean[clean.len() - 4..]);
    }

    #[test]
    fn corrupting_a_headerless_stub_is_a_no_op() {
        let mut short = vec![0u8; PAYLOAD_START];
        let before = short.clone();
        corrupt_frame_in_place(&mut short, 1, 2, 3, 4);
        assert_eq!(short, before);
    }
}
