//! Model exchange between neighbors.
//!
//! The simulator supports two transports:
//!
//! * [`TransportKind::Memory`] — neighbors read each other's half-step
//!   models directly (zero copies). This is the fast path used for large
//!   experiments; message sizes are still accounted analytically so energy
//!   numbers are transport-independent.
//! * [`TransportKind::Serialized`] — every message is actually encoded to a
//!   length-prefixed, checksummed byte frame (via the `bytes` crate),
//!   optionally dropped with a seeded probability, and decoded at the
//!   receiver. This path exists to (a) validate that the fidelity of the
//!   in-memory shortcut is exact, (b) exercise lossy-network behavior, and
//!   (c) measure serialization overhead in the benches.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use skiptrain_linalg::rng::derive_seed;

/// Frame magic marker ("STRN").
const MAGIC: u32 = 0x5354524E;

/// Transport selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TransportKind {
    /// Zero-copy shared-memory exchange (default).
    #[default]
    Memory,
    /// Serialize/decode every message; drop each directed message
    /// independently with probability `drop_prob`.
    Serialized {
        /// Per-message drop probability in `[0, 1)`.
        drop_prob: f64,
    },
}

impl TransportKind {
    /// Whether the directed message `src → dst` in `round` is delivered.
    /// Deterministic in `(seed, round, src, dst)`.
    pub fn delivered(&self, seed: u64, round: usize, src: usize, dst: usize) -> bool {
        match self {
            TransportKind::Memory => true,
            TransportKind::Serialized { drop_prob } => {
                if *drop_prob <= 0.0 {
                    return true;
                }
                let stream = (round as u64)
                    .wrapping_mul(0x1_0000_0001)
                    .wrapping_add((src as u64) << 20)
                    .wrapping_add(dst as u64);
                let h = derive_seed(seed ^ 0xD50F, stream);
                // map to [0, 1)
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                u >= *drop_prob
            }
        }
    }
}

/// Encodes a flat model into a framed message:
/// `[magic | sender | round | len | payload… | checksum]`.
pub fn encode_model(sender: u32, round: u32, params: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + params.len() * 4 + 4);
    buf.put_u32(MAGIC);
    buf.put_u32(sender);
    buf.put_u32(round);
    buf.put_u32(params.len() as u32);
    let mut checksum = 0u32;
    for &p in params {
        let bits = p.to_bits();
        checksum = checksum.rotate_left(1) ^ bits;
        buf.put_u32_le(bits);
    }
    buf.put_u32(checksum);
    buf.freeze()
}

/// Decode error taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than the fixed header.
    Truncated,
    /// Magic marker mismatch.
    BadMagic,
    /// Payload length disagrees with the header.
    LengthMismatch,
    /// Checksum mismatch (corrupted payload).
    BadChecksum,
}

/// Decoded message header + payload.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedModel {
    /// Sender node id.
    pub sender: u32,
    /// Round the model was produced in.
    pub round: u32,
    /// Flat model parameters.
    pub params: Vec<f32>,
}

/// Decodes a frame produced by [`encode_model`].
pub fn decode_model(mut frame: Bytes) -> Result<DecodedModel, DecodeError> {
    if frame.len() < 20 {
        return Err(DecodeError::Truncated);
    }
    let magic = frame.get_u32();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let sender = frame.get_u32();
    let round = frame.get_u32();
    let len = frame.get_u32() as usize;
    if frame.len() != len * 4 + 4 {
        return Err(DecodeError::LengthMismatch);
    }
    let mut params = Vec::with_capacity(len);
    let mut checksum = 0u32;
    for _ in 0..len {
        let bits = frame.get_u32_le();
        checksum = checksum.rotate_left(1) ^ bits;
        params.push(f32::from_bits(bits));
    }
    let expected = frame.get_u32();
    if checksum != expected {
        return Err(DecodeError::BadChecksum);
    }
    Ok(DecodedModel {
        sender,
        round,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_bits() {
        let params = vec![1.5f32, -0.25, f32::MIN_POSITIVE, 0.0, 1e30];
        let frame = encode_model(7, 42, &params);
        let decoded = decode_model(frame).unwrap();
        assert_eq!(decoded.sender, 7);
        assert_eq!(decoded.round, 42);
        assert_eq!(decoded.params, params);
    }

    #[test]
    fn empty_model_roundtrips() {
        let decoded = decode_model(encode_model(0, 0, &[])).unwrap();
        assert!(decoded.params.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let frame = encode_model(1, 2, &[1.0, 2.0, 3.0]);
        let mut bytes = frame.to_vec();
        bytes[18] ^= 0xFF; // flip a payload byte
        let err = decode_model(Bytes::from(bytes)).unwrap_err();
        assert_eq!(err, DecodeError::BadChecksum);
    }

    #[test]
    fn truncation_is_detected() {
        let frame = encode_model(1, 2, &[1.0]);
        let short = frame.slice(0..10);
        assert_eq!(decode_model(short).unwrap_err(), DecodeError::Truncated);
        let clipped = frame.slice(0..frame.len() - 4);
        assert_eq!(
            decode_model(clipped).unwrap_err(),
            DecodeError::LengthMismatch
        );
    }

    #[test]
    fn bad_magic_is_detected() {
        let frame = encode_model(1, 2, &[1.0]);
        let mut bytes = frame.to_vec();
        bytes[0] = 0;
        assert_eq!(
            decode_model(Bytes::from(bytes)).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn memory_transport_never_drops() {
        let t = TransportKind::Memory;
        for r in 0..100 {
            assert!(t.delivered(1, r, 0, 1));
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let t = TransportKind::Serialized { drop_prob: 0.3 };
        let mut dropped = 0usize;
        let total = 20_000;
        for r in 0..total {
            if !t.delivered(9, r, 3, 5) {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate} far from 0.3");
    }

    #[test]
    fn drop_decisions_are_deterministic() {
        let t = TransportKind::Serialized { drop_prob: 0.5 };
        for r in 0..50 {
            assert_eq!(t.delivered(4, r, 1, 2), t.delivered(4, r, 1, 2));
        }
    }

    #[test]
    fn zero_drop_prob_delivers_everything() {
        let t = TransportKind::Serialized { drop_prob: 0.0 };
        assert!((0..1000).all(|r| t.delivered(1, r, 0, 1)));
    }
}
