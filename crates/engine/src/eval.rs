//! Model evaluation helpers.
//!
//! Evaluation runs in bounded-size chunks so CNN activation buffers stay
//! small even when the test set is large, and supports evaluating on a
//! fixed subsample for cheap periodic accuracy tracking.

use rand::seq::SliceRandom;
use skiptrain_data::Dataset;
use skiptrain_linalg::rng::stream_rng;
use skiptrain_linalg::Matrix;
use skiptrain_nn::{Sequential, SoftmaxCrossEntropy};

/// Maximum rows evaluated in one forward pass.
pub const EVAL_CHUNK: usize = 512;

/// Evaluates `model` (already loaded with the parameters of interest) on
/// `dataset`, restricted to `indices` when given. Returns `(top-1 accuracy,
/// mean loss)`.
pub fn evaluate_model(
    model: &mut Sequential,
    loss: &SoftmaxCrossEntropy,
    dataset: &Dataset,
    indices: Option<&[usize]>,
) -> (f32, f32) {
    let owned: Vec<usize>;
    let idx: &[usize] = match indices {
        Some(idx) => idx,
        None => {
            owned = (0..dataset.len()).collect();
            &owned
        }
    };
    if idx.is_empty() {
        return (0.0, 0.0);
    }

    let mut x = Matrix::zeros(0, 0);
    let mut y: Vec<u32> = Vec::new();
    let mut correct = 0usize;
    let mut loss_sum = 0.0f64;
    for chunk in idx.chunks(EVAL_CHUNK) {
        dataset.gather_batch(chunk, &mut x, &mut y);
        let logits = model.forward(&x, false);
        correct += (skiptrain_nn::loss::accuracy(logits, &y) * chunk.len() as f32).round() as usize;
        loss_sum += loss.loss(logits, &y) as f64 * chunk.len() as f64;
    }
    (
        correct as f32 / idx.len() as f32,
        (loss_sum / idx.len() as f64) as f32,
    )
}

/// A fixed, seed-deterministic subsample of `0..n` of size `max` (or all of
/// `0..n` when `max >= n`). Using the *same* subset at every evaluation
/// round keeps accuracy curves smooth and comparable.
pub fn fixed_subsample(n: usize, max: usize, seed: u64) -> Vec<usize> {
    if max >= n {
        return (0..n).collect();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = stream_rng(seed, 0xE7A1);
    idx.shuffle(&mut rng);
    idx.truncate(max);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_data::synth::{MixtureSpec, MixtureTask};

    #[test]
    fn perfect_model_scores_one() {
        // Logistic model with huge weights pointing at the right class for a
        // trivially separable 2-class task.
        let task = MixtureTask::new(
            MixtureSpec {
                num_classes: 2,
                feature_dim: 2,
                modes_per_class: 1,
                separation: 10.0,
                noise: 0.01,
            },
            3,
        );
        let data = task.sample(100, 1);
        let mut model = skiptrain_nn::zoo::logistic_regression(2, 2, 1);
        let loss = SoftmaxCrossEntropy::new(2);
        // train briefly — separable task should reach 100%
        let mut node = crate::node::Node::new(
            0,
            skiptrain_nn::zoo::logistic_regression(2, 2, 1),
            data.clone(),
            16,
            skiptrain_nn::sgd::SgdConfig::plain(0.5),
            1,
        );
        let mut trained = Vec::new();
        node.train_local(&model.flat_params(), 80, &mut trained);
        model.load_params(&trained);
        let (acc, _) = evaluate_model(&mut model, &loss, &data, None);
        assert!(acc > 0.97, "separable task should be ~perfect, got {acc}");
    }

    #[test]
    fn chunking_does_not_change_result() {
        let task = MixtureTask::new(MixtureSpec::cifar_like(6), 5);
        let data = task.sample(EVAL_CHUNK + 37, 1); // forces 2 chunks
        let mut model = skiptrain_nn::zoo::mlp(&[6, 8, 10], 2);
        let loss = SoftmaxCrossEntropy::new(10);
        let (acc_all, loss_all) = evaluate_model(&mut model, &loss, &data, None);
        // manual single pass
        let logits = model.forward(data.features(), false);
        let acc_ref = skiptrain_nn::loss::accuracy(logits, data.labels());
        assert!((acc_all - acc_ref).abs() < 1e-3, "{acc_all} vs {acc_ref}");
        assert!(loss_all > 0.0);
    }

    #[test]
    fn subsample_is_fixed_and_bounded() {
        let a = fixed_subsample(100, 10, 5);
        let b = fixed_subsample(100, 10, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&i| i < 100));
        let all = fixed_subsample(5, 10, 5);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_indices_yield_zero() {
        let task = MixtureTask::new(MixtureSpec::cifar_like(4), 1);
        let data = task.sample(10, 1);
        let mut model = skiptrain_nn::zoo::mlp(&[4, 10], 1);
        let loss = SoftmaxCrossEntropy::new(10);
        assert_eq!(
            evaluate_model(&mut model, &loss, &data, Some(&[])),
            (0.0, 0.0)
        );
    }
}
