//! Evaluation statistics and time-series recording.

use serde::{Deserialize, Serialize};
use skiptrain_linalg::reduce::mean_std;

/// Cross-node accuracy statistics at one evaluation point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalStats {
    /// Round at which the evaluation ran.
    pub round: usize,
    /// Mean top-1 accuracy across nodes.
    pub mean_accuracy: f32,
    /// Standard deviation of accuracy across nodes (the Figure-4 shadow).
    pub std_accuracy: f32,
    /// Minimum node accuracy.
    pub min_accuracy: f32,
    /// Maximum node accuracy.
    pub max_accuracy: f32,
    /// Mean evaluation loss across nodes.
    pub mean_loss: f32,
    /// Per-node accuracies.
    pub per_node_accuracy: Vec<f32>,
}

impl EvalStats {
    /// Builds stats from per-node `(accuracy, loss)` pairs.
    pub fn from_node_results(round: usize, results: &[(f32, f32)]) -> Self {
        let accs: Vec<f32> = results.iter().map(|r| r.0).collect();
        let losses: Vec<f32> = results.iter().map(|r| r.1).collect();
        let (mean_accuracy, std_accuracy) = mean_std(&accs);
        let (mean_loss, _) = mean_std(&losses);
        Self {
            round,
            mean_accuracy,
            std_accuracy,
            min_accuracy: skiptrain_linalg::reduce::min(&accs).unwrap_or(0.0),
            max_accuracy: skiptrain_linalg::reduce::max(&accs).unwrap_or(0.0),
            mean_loss,
            per_node_accuracy: accs,
        }
    }
}

/// One point of an accuracy/energy learning curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// Round index.
    pub round: usize,
    /// Mean test accuracy across nodes.
    pub mean_accuracy: f32,
    /// Std of test accuracy across nodes.
    pub std_accuracy: f32,
    /// Mean evaluation loss.
    pub mean_loss: f32,
    /// Cumulative total energy (training + comm) up to this round, Wh.
    pub cumulative_energy_wh: f64,
    /// Cumulative *training* energy up to this round, Wh.
    pub training_energy_wh: f64,
}

/// Records a learning curve over a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsRecorder {
    points: Vec<AccuracyPoint>,
}

impl MetricsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an evaluation point.
    pub fn record(&mut self, stats: &EvalStats, total_energy_wh: f64, training_energy_wh: f64) {
        self.points.push(AccuracyPoint {
            round: stats.round,
            mean_accuracy: stats.mean_accuracy,
            std_accuracy: stats.std_accuracy,
            mean_loss: stats.mean_loss,
            cumulative_energy_wh: total_energy_wh,
            training_energy_wh,
        });
    }

    /// The recorded curve.
    pub fn points(&self) -> &[AccuracyPoint] {
        &self.points
    }

    /// Final (latest) point, if any.
    pub fn last(&self) -> Option<&AccuracyPoint> {
        self.points.last()
    }

    /// Best mean accuracy over the curve.
    pub fn best_accuracy(&self) -> Option<f32> {
        self.points
            .iter()
            .map(|p| p.mean_accuracy)
            .max_by(f32::total_cmp)
    }

    /// Renders the curve as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,mean_accuracy,std_accuracy,mean_loss,cumulative_energy_wh,training_energy_wh\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                p.round,
                p.mean_accuracy,
                p.std_accuracy,
                p.mean_loss,
                p.cumulative_energy_wh,
                p.training_energy_wh
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_results() {
        let s = EvalStats::from_node_results(5, &[(0.5, 1.0), (0.7, 2.0), (0.6, 3.0)]);
        assert_eq!(s.round, 5);
        assert!((s.mean_accuracy - 0.6).abs() < 1e-6);
        assert!((s.mean_loss - 2.0).abs() < 1e-6);
        assert_eq!(s.min_accuracy, 0.5);
        assert_eq!(s.max_accuracy, 0.7);
        assert_eq!(s.per_node_accuracy.len(), 3);
    }

    #[test]
    fn recorder_tracks_best_and_last() {
        let mut r = MetricsRecorder::new();
        for (round, acc) in [(0usize, 0.3f32), (10, 0.8), (20, 0.6)] {
            let s = EvalStats::from_node_results(round, &[(acc, 1.0)]);
            r.record(&s, round as f64, round as f64 * 0.9);
        }
        assert_eq!(r.points().len(), 3);
        assert_eq!(r.last().unwrap().round, 20);
        assert!((r.best_accuracy().unwrap() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = MetricsRecorder::new();
        let s = EvalStats::from_node_results(1, &[(0.5, 1.0)]);
        r.record(&s, 2.0, 1.5);
        let csv = r.to_csv();
        assert!(csv.starts_with("round,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("1,"));
    }

    #[test]
    fn empty_recorder_is_sane() {
        let r = MetricsRecorder::new();
        assert!(r.last().is_none());
        assert!(r.best_accuracy().is_none());
        assert_eq!(r.to_csv().lines().count(), 1);
    }

    #[test]
    fn stats_serde_roundtrip() {
        let s = EvalStats::from_node_results(2, &[(0.4, 0.9)]);
        let json = serde_json::to_string(&s).unwrap();
        let back: EvalStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.round, 2);
        assert_eq!(back.mean_accuracy, s.mean_accuracy);
    }
}
