//! The synchronous round executor.

use crate::eval::{evaluate_model, fixed_subsample};
use crate::metrics::EvalStats;
use crate::node::Node;
use crate::transport::{decode_model, encode_model, TransportKind};
use rayon::prelude::*;
use skiptrain_data::Dataset;
use skiptrain_energy::comm::{model_message_bytes, CommEnergyModel};
use skiptrain_energy::EnergyLedger;
use skiptrain_nn::sgd::SgdConfig;
use skiptrain_nn::{Sequential, SoftmaxCrossEntropy};
use skiptrain_topology::{Graph, MixingMatrix};
use std::sync::Arc;

/// What a node does in the local-compute phase of a round.
///
/// Every round ends with share + aggregate regardless of the action
/// (Lines 12–13 of Algorithm 2); the action only controls Lines 5–11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundAction {
    /// Run `E` local SGD steps (a training round for this node).
    Train,
    /// Skip training; share the current model as-is (synchronization).
    SyncOnly,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Master seed; all node/round randomness derives from it.
    pub seed: u64,
    /// Mini-batch size `|ξ|`.
    pub batch_size: usize,
    /// Local SGD steps per training round `E`.
    pub local_steps: usize,
    /// Optimizer settings (the paper uses plain SGD).
    pub sgd: SgdConfig,
    /// Message transport.
    pub transport: TransportKind,
    /// Per-node training energy per round (Wh); empty disables training
    /// energy accounting.
    pub training_energy_wh: Vec<f64>,
    /// Radio energy model for the share/aggregate phase.
    pub comm_energy: CommEnergyModel,
    /// Nominal parameter count for message-size accounting; `None` uses the
    /// actual simulated model size. (The paper's energy traces are defined
    /// for Table 1's |x|, which may exceed the reduced simulation models.)
    pub nominal_params: Option<usize>,
}

impl SimulationConfig {
    /// A minimal config for tests: no energy accounting, in-memory
    /// transport.
    pub fn minimal(seed: u64, batch_size: usize, local_steps: usize, lr: f32) -> Self {
        Self {
            seed,
            batch_size,
            local_steps,
            sgd: SgdConfig::plain(lr),
            transport: TransportKind::Memory,
            training_energy_wh: Vec::new(),
            comm_energy: CommEnergyModel::paper_fit(),
            nominal_params: None,
        }
    }
}

/// The synchronous decentralized simulation: nodes, their model replicas as
/// flat parameter vectors, the mixing topology, and the energy ledger.
pub struct Simulation {
    config: SimulationConfig,
    nodes: Vec<Node>,
    graph: Graph,
    mixing: MixingMatrix,
    /// Committed models `x^t`, one flat vector per node.
    params: Vec<Vec<f32>>,
    /// Half-step models `x^{t−½}` produced by the local-compute phase.
    half: Vec<Vec<f32>>,
    /// Aggregation output buffers (swapped into `params` at round end).
    next: Vec<Vec<f32>>,
    ledger: EnergyLedger,
    round: usize,
    param_count: usize,
    loss_fn: SoftmaxCrossEntropy,
    /// Mean training loss over the training nodes of the last round.
    last_train_loss: Option<f32>,
}

impl Simulation {
    /// Builds a simulation from owned per-node datasets.
    ///
    /// `models` and `datasets` must have one entry per topology node, and
    /// all models must share one architecture (identical parameter counts).
    ///
    /// # Panics
    /// Panics on any arity or shape mismatch.
    pub fn new(
        models: Vec<Sequential>,
        datasets: Vec<Dataset>,
        graph: Graph,
        mixing: MixingMatrix,
        config: SimulationConfig,
    ) -> Self {
        Self::with_shared_data(
            models,
            datasets.into_iter().map(Arc::new).collect(),
            graph,
            mixing,
            config,
        )
    }

    /// Builds a simulation over `Arc`-shared per-node datasets — the
    /// zero-copy path campaigns use to run many experiments against one
    /// materialized data bundle.
    ///
    /// # Panics
    /// Panics on any arity or shape mismatch (see [`Simulation::new`]).
    pub fn with_shared_data(
        models: Vec<Sequential>,
        datasets: Vec<Arc<Dataset>>,
        graph: Graph,
        mixing: MixingMatrix,
        config: SimulationConfig,
    ) -> Self {
        let n = graph.len();
        assert!(n > 0, "empty topology");
        assert_eq!(models.len(), n, "one model per node required");
        assert_eq!(datasets.len(), n, "one dataset per node required");
        assert_eq!(mixing.len(), n, "mixing matrix size mismatch");
        if !config.training_energy_wh.is_empty() {
            assert_eq!(
                config.training_energy_wh.len(),
                n,
                "per-node energy size mismatch"
            );
        }
        let param_count = models[0].param_count();
        assert!(
            models.iter().all(|m| m.param_count() == param_count),
            "all nodes must share one architecture"
        );
        let num_classes = models[0].output_dim();

        let params: Vec<Vec<f32>> = models.iter().map(|m| m.flat_params()).collect();
        let half = params.clone();
        let next = params.clone();
        let nodes: Vec<Node> = models
            .into_iter()
            .zip(datasets)
            .enumerate()
            .map(|(i, (model, data))| {
                Node::new(i, model, data, config.batch_size, config.sgd, config.seed)
            })
            .collect();

        Self {
            nodes,
            graph,
            mixing,
            params,
            half,
            next,
            ledger: EnergyLedger::new(n),
            round: 0,
            param_count,
            loss_fn: SoftmaxCrossEntropy::new(num_classes),
            last_train_loss: None,
            config,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a zero-node simulation (not constructible).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Flat parameter count of the shared architecture.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The communication topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable configuration access (crate-internal: tests tweak energy
    /// accounting mid-run).
    #[cfg(test)]
    pub(crate) fn config_mut(&mut self) -> &mut SimulationConfig {
        &mut self.config
    }

    /// The energy ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Current committed model of `node`.
    pub fn node_params(&self, node: usize) -> &[f32] {
        &self.params[node]
    }

    /// Overwrites the committed model of `node` (tests, warm starts).
    pub fn set_node_params(&mut self, node: usize, params: &[f32]) {
        assert_eq!(params.len(), self.param_count, "parameter length mismatch");
        self.params[node].copy_from_slice(params);
    }

    /// Mean training loss over training nodes in the last round.
    pub fn last_train_loss(&self) -> Option<f32> {
        self.last_train_loss
    }

    /// Element-wise mean of all node models.
    pub fn mean_params(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.param_count];
        let scale = 1.0 / self.len() as f32;
        for p in &self.params {
            skiptrain_linalg::ops::axpy(scale, p, &mut mean);
        }
        mean
    }

    /// Mean squared distance of node models to the mean model, normalized by
    /// the parameter count — the consensus-disagreement metric.
    pub fn disagreement(&self) -> f64 {
        let mean = self.mean_params();
        let mut acc = 0.0f64;
        for p in &self.params {
            acc += skiptrain_linalg::ops::squared_distance(p, &mean) as f64;
        }
        acc / (self.len() as f64 * self.param_count as f64)
    }

    /// Executes one synchronous round: local compute per `actions`, then
    /// share + aggregate, then energy accounting.
    ///
    /// # Panics
    /// Panics if `actions.len() != self.len()`.
    pub fn run_round(&mut self, actions: &[RoundAction]) {
        self.run_round_inner(actions, None);
    }

    /// Executes one round aggregating with an externally supplied mixing
    /// matrix instead of the topology's — the hook for time-varying
    /// topologies and asynchronous pairwise gossip (§5.3 of the paper).
    ///
    /// # Panics
    /// Panics if `actions.len() != self.len()` or the matrix size differs.
    pub fn run_round_with_mixing(&mut self, actions: &[RoundAction], mixing: &MixingMatrix) {
        assert_eq!(mixing.len(), self.len(), "mixing matrix size mismatch");
        self.run_round_inner(actions, Some(mixing));
    }

    fn run_round_inner(&mut self, actions: &[RoundAction], mixing_override: Option<&MixingMatrix>) {
        assert_eq!(actions.len(), self.len(), "one action per node required");
        let local_steps = self.config.local_steps;

        // Phase 1: local compute (parallel over nodes).
        let params = &self.params;
        let losses: Vec<Option<f32>> = self
            .nodes
            .par_iter_mut()
            .zip(self.half.par_iter_mut())
            .zip(params.par_iter())
            .zip(actions.par_iter())
            .map(|(((node, half_i), params_i), action)| match action {
                RoundAction::Train => Some(node.train_local(params_i, local_steps, half_i)),
                RoundAction::SyncOnly => {
                    half_i.clear();
                    half_i.extend_from_slice(params_i);
                    None
                }
            })
            .collect();
        let train_losses: Vec<f32> = losses.into_iter().flatten().collect();
        self.last_train_loss = if train_losses.is_empty() {
            None
        } else {
            Some(train_losses.iter().sum::<f32>() / train_losses.len() as f32)
        };

        // Phase 2: share. The serialized transport actually encodes/decodes
        // every model and may drop messages; the in-memory transport reads
        // half-step models directly.
        let decoded: Option<Vec<Vec<f32>>> = match self.config.transport {
            TransportKind::Memory => None,
            TransportKind::Serialized { .. } => {
                let round = self.round as u32;
                Some(
                    self.half
                        .par_iter()
                        .enumerate()
                        .map(|(i, model)| {
                            let frame = encode_model(i as u32, round, model);
                            decode_model(frame)
                                .expect("in-process frame must decode")
                                .params
                        })
                        .collect(),
                )
            }
        };

        // Phase 3: aggregate x^t = Σ_j W_ji x_j^{t−½} (parallel over nodes),
        // renormalizing dropped neighbors into the self weight.
        let half = &self.half;
        let mixing = mixing_override.unwrap_or(&self.mixing);
        let transport = self.config.transport;
        let seed = self.config.seed;
        let round = self.round;
        let sources: &[Vec<f32>] = decoded.as_deref().unwrap_or(half);
        self.next.par_iter_mut().enumerate().for_each(|(i, out)| {
            let row = mixing.row(i);
            let mut inputs: Vec<&[f32]> = Vec::with_capacity(row.len());
            let mut weights: Vec<f32> = Vec::with_capacity(row.len());
            let mut dropped_weight = 0.0f32;
            let mut self_pos = usize::MAX;
            for &(j, w) in row {
                let j = j as usize;
                if j == i {
                    self_pos = inputs.len();
                    inputs.push(&half[i]);
                    weights.push(w);
                } else if transport.delivered(seed, round, j, i) {
                    inputs.push(&sources[j]);
                    weights.push(w);
                } else {
                    dropped_weight += w;
                }
            }
            debug_assert!(self_pos != usize::MAX, "mixing row missing self weight");
            weights[self_pos] += dropped_weight;
            skiptrain_linalg::ops::weighted_sum_into(out, &inputs, &weights);
        });
        std::mem::swap(&mut self.params, &mut self.next);

        // Phase 4: energy accounting.
        self.account_energy(actions);
        self.round += 1;
    }

    fn account_energy(&mut self, actions: &[RoundAction]) {
        let msg_bytes = model_message_bytes(self.config.nominal_params.unwrap_or(self.param_count));
        let comm = self.config.comm_energy;
        for (i, action) in actions.iter().enumerate() {
            if *action == RoundAction::Train {
                if let Some(&e) = self.config.training_energy_wh.get(i) {
                    self.ledger.record_training(i, e);
                }
            }
            let degree = self.graph.degree(i);
            let mut delivered_in = 0usize;
            for &j in self.graph.neighbors(i) {
                if self
                    .config
                    .transport
                    .delivered(self.config.seed, self.round, j as usize, i)
                {
                    delivered_in += 1;
                }
            }
            let wh = comm.tx_energy_wh(msg_bytes) * degree as f64
                + comm.rx_energy_wh(msg_bytes) * delivered_in as f64;
            self.ledger.record_comm(i, wh);
        }
        self.ledger.end_round();
    }

    /// Evaluates every node's model on (a fixed subsample of) `dataset`,
    /// in parallel. `max_samples = usize::MAX` evaluates the full set.
    pub fn evaluate(&mut self, dataset: &Dataset, max_samples: usize) -> EvalStats {
        let indices = fixed_subsample(dataset.len(), max_samples, self.config.seed);
        let loss_fn = &self.loss_fn;
        let params = &self.params;
        let results: Vec<(f32, f32)> = self
            .nodes
            .par_iter_mut()
            .zip(params.par_iter())
            .map(|(node, p)| {
                node.model_mut().load_params(p);
                evaluate_model(node.model_mut(), loss_fn, dataset, Some(&indices))
            })
            .collect();
        EvalStats::from_node_results(self.round, &results)
    }

    /// Evaluates the *average* of all node models (the Figure-1 all-reduce
    /// curve evaluates this quantity).
    pub fn evaluate_mean_model(&mut self, dataset: &Dataset, max_samples: usize) -> (f32, f32) {
        let indices = fixed_subsample(dataset.len(), max_samples, self.config.seed);
        let mean = self.mean_params();
        let node = &mut self.nodes[0];
        node.model_mut().load_params(&mean);
        evaluate_model(node.model_mut(), &self.loss_fn, dataset, Some(&indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_data::synth::{MixtureSpec, MixtureTask};
    use skiptrain_topology::regular::random_regular;

    fn tiny_sim(n: usize, seed: u64, transport: TransportKind) -> (Simulation, Dataset) {
        let spec = MixtureSpec {
            num_classes: 4,
            feature_dim: 6,
            modes_per_class: 1,
            separation: 1.6,
            noise: 0.5,
        };
        let task = MixtureTask::new(spec, 99);
        let datasets: Vec<Dataset> = (0..n).map(|i| task.sample(60, 10 + i as u64)).collect();
        let test = task.sample(200, 5000);
        let models: Vec<Sequential> = (0..n)
            .map(|i| skiptrain_nn::zoo::mlp(&[6, 12, 4], seed + i as u64))
            .collect();
        let d = if n > 4 { 4 } else { n - 1 };
        let graph = random_regular(n, d, seed);
        let mixing = MixingMatrix::metropolis_hastings(&graph);
        let mut config = SimulationConfig::minimal(seed, 8, 2, 0.1);
        config.transport = transport;
        (
            Simulation::new(models, datasets, graph, mixing, config),
            test,
        )
    }

    #[test]
    fn training_rounds_improve_accuracy() {
        let (mut sim, test) = tiny_sim(8, 1, TransportKind::Memory);
        let before = sim.evaluate(&test, usize::MAX);
        let actions = vec![RoundAction::Train; 8];
        for _ in 0..25 {
            sim.run_round(&actions);
        }
        let after = sim.evaluate(&test, usize::MAX);
        assert!(
            after.mean_accuracy > before.mean_accuracy + 0.2,
            "accuracy {} -> {} did not improve enough",
            before.mean_accuracy,
            after.mean_accuracy
        );
    }

    #[test]
    fn sync_rounds_reduce_disagreement_without_changing_mean() {
        let (mut sim, _) = tiny_sim(8, 2, TransportKind::Memory);
        // diversify models with a few training rounds
        for _ in 0..3 {
            sim.run_round(&[RoundAction::Train; 8]);
        }
        let mean_before = sim.mean_params();
        let d_before = sim.disagreement();
        for _ in 0..10 {
            sim.run_round(&[RoundAction::SyncOnly; 8]);
        }
        let d_after = sim.disagreement();
        let mean_after = sim.mean_params();
        assert!(
            d_after < d_before * 0.5,
            "disagreement {d_before} -> {d_after}"
        );
        // doubly stochastic mixing preserves the average model
        let drift: f32 = mean_before
            .iter()
            .zip(&mean_after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(
            drift < 1e-4,
            "sync rounds drifted the mean model by {drift}"
        );
    }

    #[test]
    fn serialized_transport_matches_memory_exactly() {
        let (mut mem, test) = tiny_sim(6, 3, TransportKind::Memory);
        let (mut ser, _) = tiny_sim(6, 3, TransportKind::Serialized { drop_prob: 0.0 });
        let actions = vec![RoundAction::Train; 6];
        for _ in 0..5 {
            mem.run_round(&actions);
            ser.run_round(&actions);
        }
        for i in 0..6 {
            assert_eq!(
                mem.node_params(i),
                ser.node_params(i),
                "node {i} diverged between transports"
            );
        }
        let (am, _) = mem.evaluate_mean_model(&test, usize::MAX);
        let (as_, _) = ser.evaluate_mean_model(&test, usize::MAX);
        assert_eq!(am, as_);
    }

    #[test]
    fn lossy_transport_still_converges_models() {
        let (mut sim, _) = tiny_sim(8, 4, TransportKind::Serialized { drop_prob: 0.3 });
        for _ in 0..3 {
            sim.run_round(&[RoundAction::Train; 8]);
        }
        let d_before = sim.disagreement();
        for _ in 0..15 {
            sim.run_round(&[RoundAction::SyncOnly; 8]);
        }
        assert!(
            sim.disagreement() < d_before * 0.5,
            "lossy sync should still contract disagreement"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let (mut sim, test) = tiny_sim(6, 7, TransportKind::Memory);
            for r in 0..6 {
                let actions: Vec<RoundAction> = (0..6)
                    .map(|i| {
                        if (r + i) % 2 == 0 {
                            RoundAction::Train
                        } else {
                            RoundAction::SyncOnly
                        }
                    })
                    .collect();
                sim.run_round(&actions);
            }
            (
                sim.node_params(3).to_vec(),
                sim.evaluate(&test, 100).mean_accuracy,
            )
        };
        let (p1, a1) = run();
        let (p2, a2) = run();
        assert_eq!(p1, p2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn energy_accounting_matches_hand_computation() {
        let (mut sim, _) = tiny_sim(4, 8, TransportKind::Memory);
        sim.config.training_energy_wh = vec![2.0, 3.0, 5.0, 7.0];
        let mut actions = vec![RoundAction::Train; 4];
        actions[3] = RoundAction::SyncOnly;
        sim.run_round(&actions);
        // nodes 0..3 trained: 2 + 3 + 5 Wh
        assert!((sim.ledger().total_training_wh() - 10.0).abs() < 1e-9);
        // comm energy: every node tx+rx over its degree
        let msg = model_message_bytes(sim.param_count());
        let expected_comm: f64 = (0..4)
            .map(|i| {
                let d = sim.graph().degree(i) as f64;
                sim.config.comm_energy.tx_energy_wh(msg) * d
                    + sim.config.comm_energy.rx_energy_wh(msg) * d
            })
            .sum();
        assert!((sim.ledger().total_comm_wh() - expected_comm).abs() < 1e-12);
        assert_eq!(sim.ledger().rounds(), 1);
    }

    #[test]
    fn mean_model_eval_uses_average() {
        let (mut sim, test) = tiny_sim(4, 9, TransportKind::Memory);
        let mean = sim.mean_params();
        let (acc_direct, _) = sim.evaluate_mean_model(&test, usize::MAX);
        // setting every node to the mean and evaluating gives the same
        for i in 0..4 {
            sim.set_node_params(i, &mean);
        }
        let stats = sim.evaluate(&test, usize::MAX);
        assert!((stats.mean_accuracy - acc_direct).abs() < 1e-6);
        assert!(stats.std_accuracy < 1e-9);
    }
}
